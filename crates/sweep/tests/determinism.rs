//! The engine's core guarantee: a campaign's JSONL output is a pure
//! function of the spec — byte-identical at 1 and 8 worker threads, and
//! across repeated runs.

use sa_sweep::parse_jsonl;
use sa_sweep::prelude::*;
use set_agreement::Algorithm;

fn campaign() -> CampaignSpec {
    CampaignSpec {
        name: "determinism".into(),
        params: ParamsSpec::Grid {
            n: vec![4, 5, 6],
            m: vec![1, 2],
            k: vec![2, 3],
        },
        algorithms: Algorithm::catalog(2),
        adversaries: vec![
            AdversarySpec::Obstruction {
                contention_factor: 20,
                survivors: Survivors::M,
            },
            AdversarySpec::Random,
        ],
        seeds: vec![0, 1],
        workload: WorkloadSpec::Random { universe: 6 },
        max_steps: 300_000,
        campaign_seed: 42,
        ..CampaignSpec::default()
    }
}

fn run_bytes(threads: usize) -> Vec<u8> {
    let mut bytes = Vec::new();
    run_campaign(
        &campaign(),
        EngineConfig {
            threads,
            ..EngineConfig::default()
        },
        &mut bytes,
    )
    .expect("in-memory sink cannot fail");
    bytes
}

#[test]
fn one_thread_and_eight_threads_emit_identical_bytes() {
    let single = run_bytes(1);
    let parallel = run_bytes(8);
    assert!(!single.is_empty(), "campaign produced no records");
    // Compare line counts first for a readable failure, then the raw bytes.
    let single_lines = single.split(|b| *b == b'\n').count();
    let parallel_lines = parallel.split(|b| *b == b'\n').count();
    assert_eq!(single_lines, parallel_lines, "different record counts");
    assert_eq!(single, parallel, "thread count changed campaign output");
}

#[test]
fn repeated_runs_are_reproducible() {
    assert_eq!(run_bytes(4), run_bytes(4));
}

#[test]
fn sorted_records_also_match_across_thread_counts() {
    // The stream itself is ordered, but make the spec's weaker guarantee
    // explicit too: the record *sets* are equal, independent of order.
    let mut single = parse_jsonl(&String::from_utf8(run_bytes(1)).unwrap()).unwrap();
    let mut parallel = parse_jsonl(&String::from_utf8(run_bytes(8)).unwrap()).unwrap();
    single.sort_by_key(|r| r.scenario);
    parallel.sort_by_key(|r| r.scenario);
    assert_eq!(single, parallel);
}

#[test]
fn campaign_seed_changes_derived_streams_but_not_shape() {
    let base = campaign();
    let mut reseeded = campaign();
    reseeded.campaign_seed = 43;
    let (records_a, outcome_a) = run_campaign_collect(&base, EngineConfig::default());
    let (records_b, outcome_b) = run_campaign_collect(&reseeded, EngineConfig::default());
    assert_eq!(outcome_a.records, outcome_b.records);
    assert_eq!(records_a.len(), records_b.len());
    // Identical scenario identities, different measured executions
    // somewhere (the random adversary consumes a different stream).
    for (a, b) in records_a.iter().zip(&records_b) {
        assert_eq!(a.key(), b.key());
    }
    assert!(
        records_a
            .iter()
            .zip(&records_b)
            .any(|(a, b)| a.steps != b.steps || a.total_ops != b.total_ops),
        "reseeding the campaign changed nothing measurable"
    );
}
