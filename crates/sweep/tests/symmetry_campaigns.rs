//! Campaign-level behavior of the `symmetry` knob: record shape, byte
//! determinism, verdict equality with full exploration, and the honest
//! fallback for cells that cannot establish the symmetry.

use sa_sweep::{
    parse_jsonl, run_campaign, run_campaign_collect, CampaignMode, CampaignSpec, EngineConfig,
    ParamsSpec,
};
use set_agreement::runtime::SymmetryMode;
use set_agreement::Algorithm;

fn explore_spec(algorithms: Vec<Algorithm>, symmetry: SymmetryMode) -> CampaignSpec {
    CampaignSpec {
        name: "symmetry".into(),
        params: ParamsSpec::Explicit(vec![sa_model::Params::new(2, 1, 1).unwrap()]),
        algorithms,
        mode: CampaignMode::Explore,
        max_steps: 100_000,
        max_states: 500_000,
        symmetry,
        ..CampaignSpec::default()
    }
}

#[test]
fn symmetry_campaigns_reduce_anonymous_cells_with_identical_verdicts() {
    let algorithms = vec![Algorithm::OneShot, Algorithm::AnonymousOneShot];
    let (off, off_outcome) =
        run_campaign_collect(&explore_spec(algorithms.clone(), SymmetryMode::Off), {
            EngineConfig::default()
        });
    let (sym, sym_outcome) = run_campaign_collect(
        &explore_spec(algorithms, SymmetryMode::ProcessIds),
        EngineConfig::default(),
    );
    assert!(off_outcome.clean() && sym_outcome.clean());
    assert_eq!(off_outcome.exhaustively_verified, 2);
    assert_eq!(sym_outcome.exhaustively_verified, 2);
    for (o, s) in off.iter().zip(&sym) {
        assert_eq!(o.key(), s.key(), "symmetry must not change identity");
        assert_eq!(o.verified, s.verified);
        assert_eq!(o.stop, s.stop);
        assert_eq!(o.locations_written, s.locations_written);
        // Off-records must not even mention symmetry (byte-compat).
        assert_eq!(o.symmetry, "off");
        for absent in ["symmetry", "orbit_states", "full_states_lower_bound"] {
            assert!(
                !o.to_json().contains(&format!("\"{absent}\":")),
                "{absent} leaked"
            );
        }
        assert_eq!(s.symmetry, "process-ids");
        assert_eq!(s.orbit_states, s.explored_states);
        assert!(s.full_states_lower_bound >= s.orbit_states);
        assert!(s.full_states_lower_bound <= o.explored_states);
        if s.algorithm == "figure5-anon-oneshot" {
            assert!(
                s.explored_states < o.explored_states,
                "anonymous cells must reduce: {} !< {}",
                s.explored_states,
                o.explored_states
            );
        } else {
            // Distinct inputs + non-anonymous: the quotient is the space.
            assert_eq!(s.explored_states, o.explored_states);
        }
    }
}

#[test]
fn symmetry_output_is_byte_identical_at_any_thread_count() {
    let run = |explore_threads: usize, engine_threads: usize| {
        let spec = CampaignSpec {
            explore_threads,
            ..explore_spec(
                vec![Algorithm::OneShot, Algorithm::AnonymousOneShot],
                SymmetryMode::ProcessIds,
            )
        };
        let mut bytes = Vec::new();
        run_campaign(
            &spec,
            EngineConfig {
                threads: engine_threads,
                ..EngineConfig::default()
            },
            &mut bytes,
        )
        .unwrap();
        bytes
    };
    let reference = run(1, 1);
    assert!(!reference.is_empty());
    for (explore_threads, engine_threads) in [(2, 1), (8, 2), (8, 4)] {
        assert_eq!(
            run(explore_threads, engine_threads),
            reference,
            "symmetry-reduced output drifted at explore_threads={explore_threads}, \
             engine threads={engine_threads}"
        );
    }
    let records = parse_jsonl(std::str::from_utf8(&reference).unwrap()).unwrap();
    assert!(records.iter().all(|r| r.symmetry == "process-ids"));
}

#[test]
fn opaque_cells_record_an_honest_fallback() {
    // The full-information baseline addresses registers by process id, so
    // it cannot establish the symmetry: the record must say `fallback-off`
    // (and, since its state space is unbounded, stay truncated) instead of
    // silently claiming an orbit reduction.
    let spec = CampaignSpec {
        max_states: 2_000,
        ..explore_spec(vec![Algorithm::FullInformation], SymmetryMode::ProcessIds)
    };
    let (records, outcome) = run_campaign_collect(&spec, EngineConfig::default());
    assert_eq!(records.len(), 1);
    assert_eq!(outcome.unverified_explorations, 1);
    let record = &records[0];
    assert_eq!(record.symmetry, "fallback-off");
    assert!(!record.verified);
    assert_eq!(record.stop, "truncated");
    assert_eq!(record.orbit_states, record.explored_states);
    assert_eq!(record.full_states_lower_bound, record.explored_states);
    let line = record.to_json();
    assert!(line.contains("\"symmetry\":\"fallback-off\""), "{line}");
    let reparsed = sa_sweep::SweepRecord::parse(&line).unwrap();
    assert_eq!(&reparsed, record);
}
