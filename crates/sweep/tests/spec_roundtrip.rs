//! Property tests for the spec syntax: every value the spec types can hold
//! renders to text that parses back to the identical value, for adversary
//! labels (`AdversarySpec::label` / `parse`) and whole campaign files
//! (`CampaignSpec`'s `Display` / `parse`) — including the `crash:` template,
//! the `mode = explore` and `mode = serve` forms with the service keys
//! (`shards`, `batch-max`, `clients`, `rate`, `duration`), and the
//! `mode = adversary-search` form with the search keys (`goals`,
//! `target-registers`, `search-depth`) — plus rejection tests for malformed
//! `crash:` strings, malformed serve values and malformed search values.

use proptest::collection::vec;
use proptest::prelude::*;
use sa_model::Params;
use sa_sweep::{
    AdversarySpec, BackendSpec, CampaignMode, CampaignSpec, ParamsSpec, SearchTarget, Survivors,
    WorkloadSpec,
};
use set_agreement::runtime::SearchGoal;
use set_agreement::Algorithm;

fn base_adversary() -> BoxedStrategy<AdversarySpec> {
    prop_oneof![
        Just(AdversarySpec::RoundRobin),
        Just(AdversarySpec::Random),
        Just(AdversarySpec::Solo),
        (1u64..100).prop_map(|burst_len| AdversarySpec::Bursts { burst_len }),
        (0u64..200).prop_map(|contention_factor| AdversarySpec::Obstruction {
            contention_factor,
            survivors: Survivors::M,
        }),
        ((0u64..200), (1usize..10)).prop_map(|(contention_factor, count)| {
            AdversarySpec::Obstruction {
                contention_factor,
                survivors: Survivors::Count(count),
            }
        }),
    ]
    .boxed()
}

fn adversary() -> BoxedStrategy<AdversarySpec> {
    prop_oneof![
        base_adversary(),
        (base_adversary(), 1usize..8).prop_map(|(inner, crashes)| AdversarySpec::Crash {
            inner: Box::new(inner),
            crashes,
        }),
    ]
    .boxed()
}

fn algorithm() -> BoxedStrategy<Algorithm> {
    (1usize..4)
        .prop_flat_map(|instances| {
            prop_oneof![
                Just(Algorithm::OneShot),
                Just(Algorithm::Repeated(instances)),
                Just(Algorithm::AnonymousOneShot),
                Just(Algorithm::AnonymousRepeated(instances)),
                Just(Algorithm::WideBaseline),
                Just(Algorithm::FullInformation),
            ]
        })
        .boxed()
}

fn valid_params() -> BoxedStrategy<Params> {
    // 1 <= m <= k < n, kept small.
    (1usize..4)
        .prop_flat_map(|m| (Just(m), m..5))
        .prop_flat_map(|(m, k)| (Just(m), Just(k), k + 1..k + 6))
        .prop_map(|(m, k, n)| Params::new(n, m, k).expect("constructed to be valid"))
        .boxed()
}

fn params_spec() -> BoxedStrategy<ParamsSpec> {
    prop_oneof![
        (
            vec(3usize..10, 1..4),
            vec(1usize..4, 1..3),
            vec(1usize..5, 1..3),
        )
            .prop_map(|(n, m, k)| ParamsSpec::Grid { n, m, k }),
        vec(valid_params(), 1..4).prop_map(ParamsSpec::Explicit),
    ]
    .boxed()
}

fn seeds() -> BoxedStrategy<Vec<u64>> {
    prop_oneof![
        (1u64..8).prop_map(|count| (0..count).collect()),
        (0u64..1000).prop_map(|seed| vec![seed]),
        vec(0u64..1000, 2..5),
    ]
    .boxed()
}

fn workload() -> BoxedStrategy<WorkloadSpec> {
    prop_oneof![
        Just(WorkloadSpec::Distinct),
        (0u64..100).prop_map(WorkloadSpec::Uniform),
        (1u64..100).prop_map(|universe| WorkloadSpec::Random { universe }),
    ]
    .boxed()
}

fn goals() -> BoxedStrategy<Vec<SearchGoal>> {
    prop_oneof![
        Just(vec![SearchGoal::Covering]),
        Just(vec![SearchGoal::BlockWrite]),
        Just(vec![SearchGoal::Covering, SearchGoal::BlockWrite]),
        Just(vec![SearchGoal::BlockWrite, SearchGoal::Covering]),
    ]
    .boxed()
}

fn search_target() -> BoxedStrategy<SearchTarget> {
    prop_oneof![
        Just(SearchTarget::Auto),
        Just(SearchTarget::None),
        (1usize..40).prop_map(SearchTarget::Registers),
    ]
    .boxed()
}

fn backends() -> BoxedStrategy<Vec<BackendSpec>> {
    prop_oneof![
        Just(vec![BackendSpec::Scheduled]),
        Just(vec![BackendSpec::Threaded]),
        Just(vec![BackendSpec::Scheduled, BackendSpec::Threaded]),
        Just(vec![BackendSpec::Threaded, BackendSpec::Scheduled]),
    ]
    .boxed()
}

fn campaign() -> BoxedStrategy<CampaignSpec> {
    (
        params_spec(),
        vec(algorithm(), 1..4),
        (vec(adversary(), 1..4), backends()),
        seeds(),
        workload(),
    )
        .prop_map(
            |(params, algorithms, (adversaries, backends), seeds, workload)| CampaignSpec {
                name: "prop".into(),
                params,
                algorithms,
                adversaries,
                backends,
                seeds,
                workload,
                ..CampaignSpec::default()
            },
        )
        .prop_flat_map(|spec| {
            (
                Just(spec),
                1u64..5_000_000,
                any::<u32>(),
                prop_oneof![
                    Just(CampaignMode::Sample),
                    Just(CampaignMode::Explore),
                    Just(CampaignMode::Serve),
                    Just(CampaignMode::AdversarySearch),
                ],
                1u64..5_000_000,
            )
        })
        .prop_map(|(mut spec, max_steps, seed, mode, max_states)| {
            spec.max_steps = max_steps;
            spec.campaign_seed = seed as u64;
            spec.mode = mode;
            spec.max_states = max_states;
            spec
        })
        .prop_flat_map(|spec| {
            (
                Just(spec),
                (1usize..32, 1usize..64, 1usize..512),
                (1u64..100, 1u64..100_000),
            )
        })
        .prop_map(
            |(mut spec, (shards, batch_max, clients), (rate, duration))| {
                spec.shards = shards;
                spec.batch_max = batch_max;
                spec.clients = clients;
                spec.rate = rate;
                spec.duration = duration;
                spec
            },
        )
        .prop_flat_map(|spec| (Just(spec), goals(), search_target(), 1u64..500))
        .prop_map(|(mut spec, goals, target, search_depth)| {
            spec.goals = goals;
            spec.target = target;
            spec.search_depth = search_depth;
            spec
        })
        .prop_flat_map(|spec| (Just(spec), vec(0usize..36, 1..12)))
        .prop_map(|(mut spec, name)| {
            spec.name = name
                .into_iter()
                .map(|c| char::from_digit(c as u32, 36).expect("digit below radix"))
                .collect();
            spec
        })
        .boxed()
}

proptest! {
    #[test]
    fn adversary_labels_round_trip(spec in adversary()) {
        let label = spec.label();
        prop_assert_eq!(
            AdversarySpec::parse(&label).expect("labels must parse"),
            spec,
            "label {} does not round-trip",
            label
        );
    }

    #[test]
    fn campaign_specs_round_trip_through_display(spec in campaign()) {
        let text = spec.to_string();
        let parsed = CampaignSpec::parse(&text)
            .unwrap_or_else(|e| panic!("displayed spec must parse: {e}\n{text}"));
        prop_assert_eq!(parsed, spec, "spec file does not round-trip:\n{}", text);
    }

    #[test]
    fn crash_counts_of_zero_never_parse(inner in base_adversary()) {
        let text = format!("crash:{}:0", inner.label());
        prop_assert!(AdversarySpec::parse(&text).is_err(), "{} parsed", text);
    }

    #[test]
    fn nested_crash_templates_never_parse(spec in adversary(), crashes in 1usize..8) {
        let text = format!("crash:crash:{}:{}", spec.label(), crashes);
        prop_assert!(AdversarySpec::parse(&text).is_err(), "{} parsed", text);
    }

    #[test]
    fn malformed_serve_values_never_parse(
        spec in campaign(),
        key in prop_oneof![
            Just("shards"),
            Just("batch-max"),
            Just("clients"),
            Just("rate"),
            Just("duration"),
        ],
        bad in prop_oneof![
            // A service with no shards, no clients, empty batches, no load
            // or no runtime is degenerate: zero is rejected, as is anything
            // non-numeric, negative or fractional.
            Just("0".to_string()),
            (1i64..1000).prop_map(|v| format!("-{v}")),
            Just("eight".to_string()),
            (1u64..1000).prop_map(|v| format!("{v}.5")),
            (1u64..1000).prop_map(|v| format!("{v}x")),
        ],
    ) {
        // Later assignments win during parsing, so appending the malformed
        // line to an otherwise valid spec isolates the value under test.
        let text = format!("{spec}{key} = {bad}\n");
        prop_assert!(
            CampaignSpec::parse(&text).is_err(),
            "serve key {} accepted malformed value {:?}",
            key,
            bad
        );
    }

    #[test]
    fn malformed_search_values_never_parse(
        spec in campaign(),
        key_and_bad in prop_oneof![
            // A search with no goals, an unknown goal, a zero or negative
            // depth, or a nonsense register target is degenerate: each key
            // rejects anything outside its documented vocabulary.
            Just("goals").prop_flat_map(|key| (
                Just(key),
                prop_oneof![
                    Just("nonsense".to_string()),
                    Just("covering, nonsense".to_string()),
                    Just("".to_string()),
                    (1u64..1000).prop_map(|v| v.to_string()),
                ],
            )),
            Just("target-registers").prop_flat_map(|key| (
                Just(key),
                prop_oneof![
                    Just("0".to_string()),
                    (1i64..1000).prop_map(|v| format!("-{v}")),
                    Just("bogus".to_string()),
                    (1u64..1000).prop_map(|v| format!("{v}.5")),
                ],
            )),
            Just("search-depth").prop_flat_map(|key| (
                Just(key),
                prop_oneof![
                    Just("0".to_string()),
                    (1i64..1000).prop_map(|v| format!("-{v}")),
                    Just("deep".to_string()),
                    (1u64..1000).prop_map(|v| format!("{v}.5")),
                ],
            )),
        ],
    ) {
        // Later assignments win during parsing, so appending the malformed
        // line to an otherwise valid spec isolates the value under test.
        let (key, bad) = key_and_bad;
        let text = format!("{spec}{key} = {bad}\n");
        prop_assert!(
            CampaignSpec::parse(&text).is_err(),
            "search key {} accepted malformed value {:?}",
            key,
            bad
        );
    }
}

#[test]
fn malformed_crash_strings_are_rejected() {
    for bad in [
        "crash",
        "crash:",
        "crash::",
        "crash:1",
        "crash:round-robin",
        "crash:round-robin:",
        "crash:round-robin:-1",
        "crash:round-robin:two",
        "crash:obstruction:50:2:1:1",
        "crash:unknown:3",
        "crashes:round-robin:1",
    ] {
        assert!(
            AdversarySpec::parse(bad).is_err(),
            "malformed crash string {bad:?} parsed"
        );
    }
}

#[test]
fn malformed_serve_lines_are_rejected() {
    for bad in [
        "shards = 0",
        "shards = -2",
        "batch-max = 0",
        "batch-max = none",
        "clients = 0",
        "clients = 1e3",
        "rate = 0",
        "rate = 2.5",
        "duration = 0",
        "duration = forever",
    ] {
        let text = format!("name = x\nmode = serve\nparams = 4/1/2\n{bad}\n");
        assert!(
            CampaignSpec::parse(&text).is_err(),
            "malformed serve line {bad:?} parsed"
        );
    }
}

#[test]
fn malformed_search_lines_are_rejected() {
    for bad in [
        "goals = nonsense",
        "goals = covering, nonsense",
        "goals = ",
        "target-registers = 0",
        "target-registers = -2",
        "target-registers = bogus",
        "search-depth = 0",
        "search-depth = -3",
        "search-depth = deep",
    ] {
        let text = format!("name = x\nmode = adversary-search\nparams = 4/1/2\n{bad}\n");
        assert!(
            CampaignSpec::parse(&text).is_err(),
            "malformed search line {bad:?} parsed"
        );
    }
}
