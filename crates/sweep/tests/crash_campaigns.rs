//! End-to-end crash-failure campaigns: wrapping any scheduler template in
//! seed-derived crash points must never compromise safety, must record at
//! most the configured number of crashes, and must keep the engine's
//! byte-determinism guarantee intact.

use sa_sweep::parse_jsonl;
use sa_sweep::prelude::*;
use set_agreement::Algorithm;

fn crash_campaign() -> CampaignSpec {
    CampaignSpec {
        name: "crash-it".into(),
        params: ParamsSpec::Grid {
            n: vec![4, 5],
            m: vec![1, 2],
            k: vec![2],
        },
        algorithms: vec![Algorithm::OneShot, Algorithm::FullInformation],
        adversaries: vec![
            AdversarySpec::Crash {
                inner: Box::new(AdversarySpec::Obstruction {
                    contention_factor: 20,
                    survivors: Survivors::M,
                }),
                crashes: 2,
            },
            AdversarySpec::Crash {
                inner: Box::new(AdversarySpec::RoundRobin),
                crashes: 1,
            },
            // More crashes requested than n − 1 allows: must be capped.
            AdversarySpec::Crash {
                inner: Box::new(AdversarySpec::Random),
                crashes: 100,
            },
        ],
        seeds: vec![0, 1, 2],
        workload: WorkloadSpec::Distinct,
        max_steps: 400_000,
        campaign_seed: 23,
        ..CampaignSpec::default()
    }
}

fn run_bytes(threads: usize) -> Vec<u8> {
    let mut bytes = Vec::new();
    run_campaign(
        &crash_campaign(),
        EngineConfig {
            threads,
            ..EngineConfig::default()
        },
        &mut bytes,
    )
    .expect("in-memory sink cannot fail");
    bytes
}

#[test]
fn crash_campaign_is_safe_with_bounded_crash_counts() {
    let (records, outcome) = run_campaign_collect(&crash_campaign(), EngineConfig::default());
    assert!(outcome.records > 0);
    assert_eq!(outcome.safety_violations, 0, "{outcome:?}");
    assert_eq!(outcome.bound_violations, 0, "{outcome:?}");
    assert_eq!(
        outcome.progress_failures, 0,
        "a never-crashed survivor failed to decide"
    );
    for record in &records {
        assert!(record.safe(), "unsafe under crashes: {record:?}");
        assert!(record.bound_ok, "over bound under crashes: {record:?}");
        assert!(
            record.adversary.starts_with("crash:"),
            "unexpected adversary {}",
            record.adversary
        );
        // Crash counts stay within the template's f, capped at n − 1.
        let f: usize = record
            .adversary
            .rsplit(':')
            .next()
            .unwrap()
            .parse()
            .expect("crash templates end in their crash count");
        assert!(record.crashes >= 1, "crash template injected no crashes");
        assert!(
            record.crashes <= f.min(record.n - 1),
            "record crashes {} exceed f = {f} (n = {})",
            record.crashes,
            record.n
        );
        // Survivors never counts crashed processes, so the obligation is
        // always satisfiable within the step budget.
        assert!(record.survivors <= record.m);
    }
    // The cap actually fired for the crashes = 100 template.
    assert!(records
        .iter()
        .any(|r| r.adversary == "crash:random:100" && r.crashes == r.n - 1));
    // The summary aggregates the crash accounting.
    let summary = Summary::of(&records);
    assert!(summary.clean());
    assert_eq!(
        summary.total_crashes,
        records.iter().map(|r| r.crashes as u64).sum::<u64>()
    );
    assert!(summary.render().contains("crashes injected"));
}

#[test]
fn one_thread_and_eight_threads_emit_identical_crash_jsonl() {
    let single = run_bytes(1);
    let parallel = run_bytes(8);
    assert!(!single.is_empty(), "campaign produced no records");
    let single_lines = single.split(|b| *b == b'\n').count();
    let parallel_lines = parallel.split(|b| *b == b'\n').count();
    assert_eq!(single_lines, parallel_lines, "different record counts");
    assert_eq!(
        single, parallel,
        "thread count changed crash-campaign bytes"
    );
}

#[test]
fn crash_records_round_trip_through_jsonl() {
    let text = String::from_utf8(run_bytes(4)).unwrap();
    let records = parse_jsonl(&text).unwrap();
    for record in &records {
        assert_eq!(
            SweepRecord::parse(&record.to_json()).unwrap(),
            *record,
            "crash record does not round-trip"
        );
    }
}
