//! Crash-safe campaign checkpointing: a campaign run with
//! [`EngineConfig::checkpoint`] journals every completed scenario, and a
//! rerun after a mid-flight kill resumes from the journal and still emits a
//! JSONL stream byte-identical to an uninterrupted run. The "kill" here is
//! simulated in-process by truncating the journal back to a prefix of
//! completed records and appending a torn partial record — exactly the disk
//! state a `kill -9` between two appends leaves behind.

use sa_sweep::prelude::*;
use set_agreement::Algorithm;
use std::fs;
use std::path::PathBuf;

fn campaign() -> CampaignSpec {
    CampaignSpec {
        name: "checkpoint".into(),
        params: ParamsSpec::Grid {
            n: vec![4, 5],
            m: vec![1, 2],
            k: vec![2],
        },
        algorithms: vec![Algorithm::OneShot, Algorithm::FullInformation],
        adversaries: vec![AdversarySpec::Obstruction {
            contention_factor: 20,
            survivors: Survivors::M,
        }],
        seeds: vec![0, 1],
        workload: WorkloadSpec::Distinct,
        max_steps: 200_000,
        campaign_seed: 7,
        ..CampaignSpec::default()
    }
}

/// A unique scratch directory; removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "sa-sweep-checkpoint-{label}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        TempDir(dir)
    }

    fn journal(&self) -> PathBuf {
        self.0.join("campaign.journal")
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn run_with_checkpoint(spec: &CampaignSpec, dir: &TempDir, threads: usize) -> Vec<u8> {
    let mut bytes = Vec::new();
    run_campaign(
        spec,
        EngineConfig {
            threads,
            checkpoint: Some(dir.0.clone()),
            ..EngineConfig::default()
        },
        &mut bytes,
    )
    .expect("campaign run");
    bytes
}

/// Truncates the journal back to its first `keep` records and appends a
/// torn partial record, mimicking a writer killed mid-append.
fn mangle_journal(path: &PathBuf, keep: usize) {
    let contents = fs::read(path).expect("read journal");
    assert!(contents.len() > 24, "journal must hold a header");
    let mut valid = 24usize; // past the segment header
    for _ in 0..keep {
        let rest = &contents[valid..];
        assert!(rest.len() >= 12, "journal holds fewer records than `keep`");
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        valid += 12 + len;
    }
    let mut mangled = contents[..valid].to_vec();
    // A torn tail: a length prefix promising more bytes than follow.
    mangled.extend_from_slice(&1000u32.to_le_bytes());
    mangled.extend_from_slice(&[0xAB; 5]);
    fs::write(path, mangled).expect("rewrite journal");
}

#[test]
fn killed_campaign_resumes_byte_identically() {
    let spec = campaign();

    // Reference: plain uninterrupted run without any checkpointing.
    let mut reference = Vec::new();
    run_campaign(&spec, EngineConfig::default(), &mut reference).expect("reference run");
    assert!(!reference.is_empty());
    let records = reference.iter().filter(|&&b| b == b'\n').count();
    assert!(records >= 4, "need enough records to kill mid-flight");

    // A checkpointed run produces the same bytes and a full journal.
    let dir = TempDir::new("resume");
    let checkpointed = run_with_checkpoint(&spec, &dir, 4);
    assert_eq!(checkpointed, reference, "checkpointing changed the stream");

    // Simulate a kill after `records / 2` completed scenarios, torn tail
    // included, then resume. The resumed stream must be byte-identical.
    mangle_journal(&dir.journal(), records / 2);
    let resumed = run_with_checkpoint(&spec, &dir, 4);
    assert_eq!(resumed, reference, "resumed stream drifted");

    // Resuming a *complete* journal recomputes nothing and still emits the
    // identical stream.
    let replayed = run_with_checkpoint(&spec, &dir, 1);
    assert_eq!(replayed, reference, "full-journal replay drifted");
}

#[test]
fn truncated_journal_reruns_only_missing_scenarios() {
    let spec = campaign();
    let dir = TempDir::new("partial");
    let full = run_with_checkpoint(&spec, &dir, 2);
    let records = full.iter().filter(|&&b| b == b'\n').count();

    // Keep one completed record; the resume must recompute the rest and
    // grow the journal back to one entry per scenario.
    mangle_journal(&dir.journal(), 1);
    let resumed = run_with_checkpoint(&spec, &dir, 2);
    assert_eq!(resumed, full);
    let contents = fs::read(dir.journal()).expect("read journal");
    let mut offset = 24usize;
    let mut count = 0usize;
    while contents.len() - offset >= 12 {
        let len = u32::from_le_bytes(contents[offset..offset + 4].try_into().unwrap()) as usize;
        offset += 12 + len;
        count += 1;
    }
    assert_eq!(offset, contents.len(), "journal ends on a record boundary");
    assert_eq!(count, records, "one journal entry per scenario");
}

#[test]
fn checkpoint_directory_rejects_a_different_campaign() {
    let dir = TempDir::new("mismatch");
    let spec = campaign();
    run_with_checkpoint(&spec, &dir, 2);

    let mut other = campaign();
    other.campaign_seed = 8;
    let mut bytes = Vec::new();
    let err = run_campaign(
        &other,
        EngineConfig {
            checkpoint: Some(dir.0.clone()),
            ..EngineConfig::default()
        },
        &mut bytes,
    )
    .expect_err("a foreign journal must be rejected");
    assert!(
        err.to_string().contains("different campaign"),
        "unexpected error: {err}"
    );
}

#[test]
fn sharded_checkpoints_are_kept_apart_by_the_tag() {
    let spec = campaign();
    let dir = TempDir::new("shard");
    let mut bytes = Vec::new();
    run_campaign(
        &spec,
        EngineConfig {
            shard: Some((0, 2)),
            checkpoint: Some(dir.0.clone()),
            ..EngineConfig::default()
        },
        &mut bytes,
    )
    .expect("shard 0 run");

    // The same directory cannot serve the other shard: its journal is
    // tagged with the shard selection.
    let mut other = Vec::new();
    let err = run_campaign(
        &spec,
        EngineConfig {
            shard: Some((1, 2)),
            checkpoint: Some(dir.0.clone()),
            ..EngineConfig::default()
        },
        &mut other,
    )
    .expect_err("shard 1 must not reuse shard 0's journal");
    assert!(err.to_string().contains("different campaign"));
}
