//! Declarative campaign specifications.
//!
//! A [`CampaignSpec`] names a *family* of scenarios: a parameter space
//! (cartesian grid over `n`, `m`, `k`, or an explicit list of triples), a set
//! of algorithms, a set of adversary templates and a set of seeds. The
//! [`expand`](crate::grid::expand) pass turns the spec into a concrete,
//! deterministically ordered and seeded work list.
//!
//! Specs can be built in code or parsed from a simple `key = value` text
//! format (see [`CampaignSpec::parse`]), which is also the format the `sweep`
//! CLI accepts via `--spec`.

use sa_model::Params;
use set_agreement::runtime::{ReductionMode, SearchGoal, SymmetryMode};
use set_agreement::Algorithm;

/// Errors produced while building or parsing a campaign spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid campaign spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn err<T>(message: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError(message.into()))
}

/// The parameter space of a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamsSpec {
    /// The cartesian product of the three axes, silently skipping invalid
    /// triples (those violating `1 ≤ m ≤ k < n`).
    Grid {
        /// Values of `n` to sweep.
        n: Vec<usize>,
        /// Values of `m` to sweep.
        m: Vec<usize>,
        /// Values of `k` to sweep.
        k: Vec<usize>,
    },
    /// An explicit list of parameter triples.
    Explicit(Vec<Params>),
}

impl ParamsSpec {
    /// Parses an explicit cell list `n/m/k;n/m/k;...` — the syntax of both
    /// the CLI's `--params` flag and the spec file's `params =` key.
    pub fn parse_explicit(text: &str) -> Result<Self, SpecError> {
        let mut cells = Vec::new();
        for triple in text.split(';') {
            let parts: Vec<&str> = triple.split('/').map(str::trim).collect();
            let [n, m, k] = parts.as_slice() else {
                return err(format!("bad params triple {triple:?} (want n/m/k)"));
            };
            let parse = |s: &str| {
                s.parse::<usize>()
                    .map_err(|_| SpecError(format!("bad number in {triple:?}")))
            };
            let params = Params::new(parse(n)?, parse(m)?, parse(k)?)
                .map_err(|e| SpecError(format!("invalid triple {triple:?}: {e:?}")))?;
            cells.push(params);
        }
        Ok(ParamsSpec::Explicit(cells))
    }

    /// All valid parameter triples of this space, in deterministic order.
    pub fn cells(&self) -> Vec<Params> {
        match self {
            ParamsSpec::Grid { n, m, k } => {
                let mut cells = Vec::new();
                for &n in n {
                    for &m in m {
                        for &k in k {
                            if let Ok(params) = Params::new(n, m, k) {
                                cells.push(params);
                            }
                        }
                    }
                }
                cells
            }
            ParamsSpec::Explicit(cells) => cells.clone(),
        }
    }
}

/// How many processes survive the contention phase of an obstruction
/// adversary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Survivors {
    /// The cell's `m` — the canonical schedule under which the paper
    /// guarantees termination.
    M,
    /// A fixed count (capped at `n` when instantiated).
    Count(usize),
}

/// An adversary *template*: instantiated per cell and per seed, so one spec
/// entry produces a concrete [`Adversary`](set_agreement::Adversary) for
/// every scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdversarySpec {
    /// Maximally fair round-robin contention.
    RoundRobin,
    /// Uniformly random scheduling (seeded per scenario).
    Random,
    /// Only one process runs, chosen by the scenario seed.
    Solo,
    /// Geometric-ish bursts of the given length (seeded per scenario).
    Bursts {
        /// Burst length.
        burst_len: u64,
    },
    /// Heavy contention for `contention_factor × n` steps, then only the
    /// survivors keep running.
    Obstruction {
        /// Contention steps per process (`× n` total).
        contention_factor: u64,
        /// Who survives.
        survivors: Survivors,
    },
    /// A crash adversary layered over another template: up to `crashes`
    /// processes (capped at `n − 1` per cell) receive deterministically
    /// seed-derived crash points and stop being scheduled once they reach
    /// them. Spec syntax: `crash:<inner>:<crashes>`.
    Crash {
        /// The template the crash pattern wraps (any non-crash template).
        inner: Box<AdversarySpec>,
        /// Maximum number of processes to crash.
        crashes: usize,
    },
}

impl AdversarySpec {
    /// A stable label for records and summaries.
    pub fn label(&self) -> String {
        match self {
            AdversarySpec::RoundRobin => "round-robin".into(),
            AdversarySpec::Random => "random".into(),
            AdversarySpec::Solo => "solo".into(),
            AdversarySpec::Bursts { burst_len } => format!("bursts:{burst_len}"),
            AdversarySpec::Obstruction {
                contention_factor,
                survivors: Survivors::M,
            } => format!("obstruction:{contention_factor}"),
            AdversarySpec::Obstruction {
                contention_factor,
                survivors: Survivors::Count(c),
            } => format!("obstruction:{contention_factor}:{c}"),
            AdversarySpec::Crash { inner, crashes } => {
                format!("crash:{}:{crashes}", inner.label())
            }
        }
    }

    /// Parses one adversary template. Accepted forms: `round-robin`,
    /// `random`, `solo`, `bursts:LEN`, `obstruction` (factor 50, survivors
    /// `m`), `obstruction:FACTOR`, `obstruction:FACTOR:SURVIVORS`, and
    /// `crash:<inner>:<crashes>` wrapping any of the former (the *last*
    /// `:`-field is always the crash count, so e.g.
    /// `crash:obstruction:50:2` crashes up to 2 processes under
    /// `obstruction:50`).
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        if let Some(rest) = text.strip_prefix("crash:") {
            let Some((inner_text, count)) = rest.rsplit_once(':') else {
                return err(format!(
                    "crash template {text:?} needs a crash count (crash:<inner>:<crashes>)"
                ));
            };
            let crashes: usize = count
                .parse()
                .map_err(|_| SpecError(format!("bad crash count in {text:?}")))?;
            if crashes == 0 {
                return err(format!("crash count must be positive in {text:?}"));
            }
            let inner = AdversarySpec::parse(inner_text)?;
            if matches!(inner, AdversarySpec::Crash { .. }) {
                return err(format!("nested crash templates are not allowed: {text:?}"));
            }
            return Ok(AdversarySpec::Crash {
                inner: Box::new(inner),
                crashes,
            });
        }
        let mut parts = text.split(':');
        let head = parts.next().unwrap_or_default();
        let rest: Vec<&str> = parts.collect();
        match (head, rest.as_slice()) {
            ("round-robin", []) => Ok(AdversarySpec::RoundRobin),
            ("random", []) => Ok(AdversarySpec::Random),
            ("solo", []) => Ok(AdversarySpec::Solo),
            ("bursts", [len]) => match len.parse() {
                Ok(burst_len) if burst_len > 0 => Ok(AdversarySpec::Bursts { burst_len }),
                _ => err(format!("bad burst length in {text:?}")),
            },
            ("obstruction", tail) => {
                let contention_factor = match tail.first() {
                    None => 50,
                    Some(f) => f
                        .parse()
                        .map_err(|_| SpecError(format!("bad contention factor in {text:?}")))?,
                };
                let survivors = match tail.get(1) {
                    None => Survivors::M,
                    Some(s) => Survivors::Count(
                        s.parse()
                            .map_err(|_| SpecError(format!("bad survivor count in {text:?}")))?,
                    ),
                };
                if tail.len() > 2 {
                    return err(format!("too many fields in {text:?}"));
                }
                Ok(AdversarySpec::Obstruction {
                    contention_factor,
                    survivors,
                })
            }
            _ => err(format!("unknown adversary {text:?}")),
        }
    }
}

/// The workload proposed by the processes of each scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// Every process proposes a distinct value (the hardest workload).
    Distinct,
    /// Every process proposes the same value.
    Uniform(u64),
    /// Seeded-random values from `0..universe`.
    Random {
        /// Size of the value universe.
        universe: u64,
    },
}

impl WorkloadSpec {
    /// A stable label for records and summaries.
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Distinct => "distinct".into(),
            WorkloadSpec::Uniform(v) => format!("uniform:{v}"),
            WorkloadSpec::Random { universe } => format!("random:{universe}"),
        }
    }

    /// Parses `distinct`, `uniform:VALUE` or `random:UNIVERSE`.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let mut parts = text.splitn(2, ':');
        match (parts.next().unwrap_or_default(), parts.next()) {
            ("distinct", None) => Ok(WorkloadSpec::Distinct),
            ("uniform", Some(v)) => v
                .parse()
                .map(WorkloadSpec::Uniform)
                .map_err(|_| SpecError(format!("bad uniform value in {text:?}"))),
            ("random", Some(u)) => match u.parse() {
                Ok(universe) if universe > 0 => Ok(WorkloadSpec::Random { universe }),
                _ => err(format!("bad random universe in {text:?}")),
            },
            _ => err(format!("unknown workload {text:?}")),
        }
    }
}

/// Which execution backend runs a campaign's sampled scenarios — the
/// campaign-level face of the facade's
/// [`Backend`](set_agreement::Backend) axis.
///
/// Listing several backends makes the backend a grid axis: each
/// (cell, algorithm) pair is run on every listed backend. The threaded
/// backend collapses the adversary axis (the hardware schedules, so
/// adversary templates do not apply; its scenarios are labelled
/// `hardware`), while seeds still vary the workload and the thread spawn
/// order. Ignored entirely in [`CampaignMode::Explore`], which always uses
/// the explorer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BackendSpec {
    /// The deterministic simulator under the campaign's adversaries.
    #[default]
    Scheduled,
    /// One OS thread per process against real shared memory. Records carry
    /// wall-clock time and throughput; output is **not** byte-deterministic
    /// (steps and decisions depend on the hardware's interleaving), so
    /// determinism gates only apply to scheduled/explore campaigns.
    Threaded,
}

impl BackendSpec {
    /// A stable label for records and summaries.
    pub fn label(&self) -> &'static str {
        match self {
            BackendSpec::Scheduled => "scheduled",
            BackendSpec::Threaded => "threaded",
        }
    }

    /// Parses `scheduled` or `threaded`.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        match text {
            "scheduled" => Ok(BackendSpec::Scheduled),
            "threaded" => Ok(BackendSpec::Threaded),
            _ => err(format!(
                "unknown backend {text:?} (want scheduled or threaded)"
            )),
        }
    }
}

/// How a campaign executes its cells.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CampaignMode {
    /// Sample one schedule per (cell, algorithm, adversary, seed)
    /// combination — the default, feasible at any scale.
    #[default]
    Sample,
    /// Exhaustively explore **every** interleaving of each
    /// (cell, algorithm) combination with the bounded model checker,
    /// ignoring the adversary and seed axes (exploration quantifies over
    /// all schedules). Feasible only for tiny cells.
    Explore,
    /// Run each cell as a long-running batched agreement service under an
    /// open-loop load generator (the `sa-serve` crate) on the
    /// deterministic virtual clock, ignoring the algorithm, adversary and
    /// backend axes: a service run is always batches of the Figure 4
    /// repeated algorithm, and the serve keys (`shards`, `batch-max`,
    /// `clients`, `rate`, `duration`) replace them.
    Serve,
    /// Run a goal-directed adversary search per (cell, algorithm, goal)
    /// combination, hunting for lower-bound witness structures — covering
    /// configurations and block-write extensions — instead of safety
    /// violations (the `sa-search` crate). Like [`CampaignMode::Explore`]
    /// it quantifies over all schedules, so the backend, adversary and
    /// seed axes are ignored; the search keys (`goals`, `target-registers`,
    /// `search-depth`) replace them.
    AdversarySearch,
}

impl CampaignMode {
    /// A stable label for records and summaries.
    pub fn label(&self) -> &'static str {
        match self {
            CampaignMode::Sample => "sample",
            CampaignMode::Explore => "explore",
            CampaignMode::Serve => "serve",
            CampaignMode::AdversarySearch => "adversary-search",
        }
    }

    /// Parses `sample`, `explore`, `serve` or `adversary-search`.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        match text {
            "sample" => Ok(CampaignMode::Sample),
            "explore" => Ok(CampaignMode::Explore),
            "serve" => Ok(CampaignMode::Serve),
            "adversary-search" => Ok(CampaignMode::AdversarySearch),
            _ => err(format!(
                "unknown mode {text:?} (want sample, explore, serve or adversary-search)"
            )),
        }
    }
}

/// The per-cell register target of a `mode = adversary-search` campaign:
/// how many distinct registers (written or covered) a witness must touch
/// for the search to stop early with `target-reached`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SearchTarget {
    /// The paper's `n + 2m − k` lower bound, computed per cell — the
    /// default, which makes every search a *rediscovery* of Theorem 2's
    /// hand-built construction for its cell.
    #[default]
    Auto,
    /// No target: search the whole budgeted space for the best witness.
    None,
    /// A fixed register count, identical for every cell.
    Registers(usize),
}

impl SearchTarget {
    /// A stable label for spec files (`auto`, `none`, or the count).
    pub fn label(&self) -> String {
        match self {
            SearchTarget::Auto => "auto".into(),
            SearchTarget::None => "none".into(),
            SearchTarget::Registers(count) => count.to_string(),
        }
    }

    /// Parses `auto`, `none`, or a strictly positive register count
    /// (`none` already means "no target", so an explicit 0 is rejected as
    /// ambiguous rather than silently aliased).
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        match text.trim() {
            "auto" => Ok(SearchTarget::Auto),
            "none" => Ok(SearchTarget::None),
            count => match count.parse::<usize>() {
                Ok(parsed) if parsed >= 1 => Ok(SearchTarget::Registers(parsed)),
                _ => err(format!(
                    "bad target-registers {text:?} (want auto, none, or a count >= 1)"
                )),
            },
        }
    }

    /// The concrete register target for one cell: `n + 2m − k` under
    /// [`SearchTarget::Auto`], 0 (no target) under [`SearchTarget::None`].
    pub fn for_params(&self, params: &Params) -> usize {
        match self {
            SearchTarget::Auto => params.snapshot_components(),
            SearchTarget::None => 0,
            SearchTarget::Registers(count) => *count,
        }
    }
}

/// A declarative description of a whole family of scenarios.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name, embedded in every record.
    pub name: String,
    /// The parameter space.
    pub params: ParamsSpec,
    /// Algorithms to run in every cell (inapplicable combinations are
    /// skipped during expansion).
    pub algorithms: Vec<Algorithm>,
    /// Adversary templates, instantiated per cell and seed (scheduled
    /// backend only; the threaded backend lets the hardware schedule).
    pub adversaries: Vec<AdversarySpec>,
    /// Execution backends for sampled scenarios; listing several makes the
    /// backend a grid axis. Ignored in [`CampaignMode::Explore`].
    pub backends: Vec<BackendSpec>,
    /// Seeds; each seed produces an independent scenario per cell.
    pub seeds: Vec<u64>,
    /// The workload proposed in every scenario.
    pub workload: WorkloadSpec,
    /// Step budget per scenario. In [`CampaignMode::Explore`] this bounds
    /// the depth of any single explored path.
    pub max_steps: u64,
    /// Root seed mixed into every scenario's derived seed.
    pub campaign_seed: u64,
    /// How cells are executed: schedule sampling or exhaustive exploration.
    pub mode: CampaignMode,
    /// State budget per exploration (ignored in [`CampaignMode::Sample`]).
    pub max_states: u64,
    /// Worker threads per exploration (ignored in [`CampaignMode::Sample`]):
    /// 0 runs the serial explorer, any other value the work-stealing
    /// parallel explorer with that many workers. Parallel results are
    /// byte-identical across all worker counts ≥ 1, so this is a "how"
    /// knob like the engine's thread count, not part of a scenario's
    /// identity. (Serial records use the plain `explore` shape without the
    /// memory-stat fields, so 0 vs ≥ 1 differ in record shape — though
    /// never in any verification-bearing field.)
    pub explore_threads: usize,
    /// Symmetry reduction per exploration (ignored in
    /// [`CampaignMode::Sample`]): `process-ids` deduplicates reachable
    /// configurations up to process-id orbits, which shrinks
    /// `explored_states` without changing any verdict. Like
    /// `explore-threads` this is a "how" knob, not part of a scenario's
    /// identity; cells whose automata cannot establish the symmetry fall
    /// back to plain exploration (recorded as `fallback-off`) rather than
    /// prune unsoundly. Off by default, which keeps record bytes identical
    /// to pre-symmetry releases.
    pub symmetry: SymmetryMode,
    /// Partial-order reduction per exploration or adversary search (ignored
    /// in [`CampaignMode::Sample`] and [`CampaignMode::Serve`]):
    /// `sleep-set` prunes commuting sibling interleavings with per-state
    /// sleep sets, which shrinks the expansion count without changing any
    /// verdict or (on exhausted spaces) the visited-state count;
    /// `persistent-set` adds persistent-set selective search with dynamic
    /// (Flanagan–Godefroid) backtracking in the serial explorer, cutting
    /// whole redundant *states* while preserving every verdict. Like
    /// `symmetry` this is a "how" knob, not part of a scenario's identity,
    /// and it composes with `symmetry`: the two reductions multiply.
    /// Explorations that cannot honor the request (dedup off, more than 64
    /// processes) fall back to full expansion rather than prune unsoundly.
    /// Off by default, which keeps record bytes identical to pre-reduction
    /// releases.
    pub reduction: ReductionMode,
    /// Whether explorations may spill frozen frontier chunks and seen-set
    /// shards to disk when they exceed the resident-byte budget (ignored
    /// in [`CampaignMode::Sample`]). A "how" knob like `explore-threads`:
    /// records are byte-identical with spill on or off, so it is not part
    /// of a scenario's identity.
    pub spill: bool,
    /// Resident-memory budget per exploration in MiB (ignored in
    /// [`CampaignMode::Sample`]); 0 means unlimited. Over budget, a
    /// spilling exploration moves cold state to disk and continues, a
    /// non-spilling one deterministically truncates. Also a "how" knob —
    /// except that a budget small enough to truncate a non-spilling cell
    /// changes that cell's verdict, exactly like `max-states` does.
    pub max_resident_mb: u64,
    /// The witness goals a [`CampaignMode::AdversarySearch`] campaign hunts
    /// for (ignored in the other modes). Like the adversary axis of a
    /// sampled campaign, each listed goal produces one scenario per
    /// (cell, algorithm) pair.
    pub goals: Vec<SearchGoal>,
    /// The per-cell register target of a [`CampaignMode::AdversarySearch`]
    /// campaign (ignored in the other modes): `auto` (the default)
    /// rediscovers the paper's `n + 2m − k` bound per cell, `none` searches
    /// the whole budgeted space, a count fixes the target for every cell.
    pub target: SearchTarget,
    /// Maximum schedule depth (BFS radius) per
    /// [`CampaignMode::AdversarySearch`] scenario (ignored in the other
    /// modes). A "what" knob: a depth too small to reach the target
    /// changes the verdict, exactly like `max-states` does.
    pub search_depth: u64,
    /// Service worker threads per [`CampaignMode::Serve`] scenario
    /// (ignored in the other modes). Like `explore-threads`, a "how" knob:
    /// under the virtual clock records are byte-identical at any shard
    /// count, so shards are not part of a scenario's identity.
    pub shards: usize,
    /// Batch cutoff per [`CampaignMode::Serve`] scenario: a batch is cut
    /// as soon as it holds this many proposals.
    pub batch_max: usize,
    /// Simulated clients per [`CampaignMode::Serve`] scenario.
    pub clients: usize,
    /// Open-loop proposals per virtual-clock tick per
    /// [`CampaignMode::Serve`] scenario.
    pub rate: u64,
    /// Virtual-clock ticks (milliseconds of modelled time) each
    /// [`CampaignMode::Serve`] scenario runs before its graceful drain.
    pub duration: u64,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            name: "campaign".into(),
            params: ParamsSpec::Grid {
                n: (4..=8).collect(),
                m: vec![1, 2],
                k: vec![2, 3],
            },
            algorithms: Algorithm::catalog(2),
            adversaries: vec![AdversarySpec::Obstruction {
                contention_factor: 50,
                survivors: Survivors::M,
            }],
            backends: vec![BackendSpec::Scheduled],
            seeds: (0..4).collect(),
            workload: WorkloadSpec::Distinct,
            max_steps: 2_000_000,
            campaign_seed: 0,
            mode: CampaignMode::Sample,
            max_states: 2_000_000,
            explore_threads: 0,
            symmetry: SymmetryMode::Off,
            reduction: ReductionMode::Off,
            spill: false,
            max_resident_mb: 0,
            goals: vec![SearchGoal::Covering],
            target: SearchTarget::Auto,
            search_depth: 60,
            shards: 2,
            batch_max: 8,
            clients: 64,
            rate: 8,
            duration: 1000,
        }
    }
}

/// Parses `4`, `4,6,8`, `4..8` (inclusive) or `4..=8` into a value list.
pub fn parse_values(text: &str) -> Result<Vec<u64>, SpecError> {
    let text = text.trim();
    if let Some((lo, hi)) = text.split_once("..") {
        let hi = hi.strip_prefix('=').unwrap_or(hi);
        let lo: u64 = lo
            .trim()
            .parse()
            .map_err(|_| SpecError(format!("bad range start in {text:?}")))?;
        let hi: u64 = hi
            .trim()
            .parse()
            .map_err(|_| SpecError(format!("bad range end in {text:?}")))?;
        if lo > hi {
            return err(format!("descending range {text:?}"));
        }
        return Ok((lo..=hi).collect());
    }
    text.split(',')
        .map(|part| {
            part.trim()
                .parse()
                .map_err(|_| SpecError(format!("bad value {part:?} in {text:?}")))
        })
        .collect()
}

fn parse_usizes(text: &str) -> Result<Vec<usize>, SpecError> {
    Ok(parse_values(text)?
        .into_iter()
        .map(|v| v as usize)
        .collect())
}

/// Parses the `seeds` field: a plain integer `N` means the `N` seeds
/// `0..N`; ranges and comma lists are explicit seed values.
pub fn parse_seeds(text: &str) -> Result<Vec<u64>, SpecError> {
    let text = text.trim();
    if !text.contains("..") && !text.contains(',') {
        let count: u64 = text
            .parse()
            .map_err(|_| SpecError(format!("bad seed count {text:?}")))?;
        if count == 0 {
            return err("seed count must be positive");
        }
        return Ok((0..count).collect());
    }
    parse_values(text)
}

/// Parses the `algorithms` field: `all` (catalog with 2 instances),
/// `all:INSTANCES`, or a comma list of labels (see
/// [`Algorithm::from_label`]), each optionally suffixed `:INSTANCES`.
pub fn parse_algorithms(text: &str) -> Result<Vec<Algorithm>, SpecError> {
    let text = text.trim();
    if text == "all" {
        return Ok(Algorithm::catalog(2));
    }
    if let Some(instances) = text.strip_prefix("all:") {
        let instances: usize = instances
            .parse()
            .map_err(|_| SpecError(format!("bad instance count in {text:?}")))?;
        return Ok(Algorithm::catalog(instances.max(1)));
    }
    text.split(',')
        .map(|part| {
            let part = part.trim();
            let (label, instances) = match part.rsplit_once(':') {
                Some((label, instances)) => (
                    label,
                    instances
                        .parse()
                        .map_err(|_| SpecError(format!("bad instance count in {part:?}")))?,
                ),
                None => (part, 2usize),
            };
            Algorithm::from_label(label, instances.max(1))
                .ok_or_else(|| SpecError(format!("unknown algorithm {label:?}")))
        })
        .collect()
}

impl CampaignSpec {
    /// Parses a campaign from `key = value` lines. Unknown keys are
    /// rejected; `#` starts a comment. Recognized keys: `name`, `n`, `m`,
    /// `k`, `params` (explicit `n/m/k` triples, `;`-separated), `algorithms`,
    /// `adversaries`, `backend` (`scheduled`, `threaded`, or a comma list to
    /// make the backend a grid axis), `seeds`, `workload`, `max-steps`,
    /// `campaign-seed`, `mode` (`sample`, `explore`, `serve` or
    /// `adversary-search`), `max-states`
    /// (exploration state budget), `explore-threads` (exploration worker
    /// threads; 0 = serial explorer), `symmetry` (`off` or
    /// `process-ids`: deduplicate explored states up to process-id
    /// orbits), `reduction` (`off`, `sleep-set` or `persistent-set`: prune
    /// commuting interleavings — and, for `persistent-set`, whole redundant
    /// states — with partial-order reduction, composable with `symmetry`),
    /// `spill` (`on` or `off`: let explorations move cold
    /// frontier and seen-set state to disk under memory pressure),
    /// `max-resident-mb` (resident-memory budget per exploration in MiB;
    /// 0 = unlimited), the `mode = adversary-search` keys `goals` (comma
    /// list of `covering` / `block-write`), `target-registers` (`auto`,
    /// `none`, or a count ≥ 1) and `search-depth` (≥ 1), and the
    /// `mode = serve` service keys `shards`, `batch-max`, `clients`,
    /// `rate` and `duration` (all at least 1).
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let mut spec = CampaignSpec::default();
        let (mut grid_n, mut grid_m, mut grid_k) = (None, None, None);
        let mut explicit = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or_default().trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return err(format!("line {}: expected `key = value`", lineno + 1));
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "name" => spec.name = value.to_string(),
                "n" => grid_n = Some(parse_usizes(value)?),
                "m" => grid_m = Some(parse_usizes(value)?),
                "k" => grid_k = Some(parse_usizes(value)?),
                "params" => {
                    let ParamsSpec::Explicit(cells) = ParamsSpec::parse_explicit(value)? else {
                        unreachable!("parse_explicit returns Explicit");
                    };
                    explicit = Some(cells);
                }
                "algorithms" => spec.algorithms = parse_algorithms(value)?,
                "adversaries" => {
                    spec.adversaries = value
                        .split(',')
                        .map(|part| AdversarySpec::parse(part.trim()))
                        .collect::<Result<_, _>>()?;
                }
                "backend" => {
                    spec.backends = value
                        .split(',')
                        .map(|part| BackendSpec::parse(part.trim()))
                        .collect::<Result<_, _>>()?;
                }
                "seeds" => spec.seeds = parse_seeds(value)?,
                "workload" => spec.workload = WorkloadSpec::parse(value)?,
                "max-steps" => {
                    spec.max_steps = value
                        .parse()
                        .map_err(|_| SpecError(format!("bad max-steps {value:?}")))?;
                }
                "campaign-seed" => {
                    spec.campaign_seed = value
                        .parse()
                        .map_err(|_| SpecError(format!("bad campaign-seed {value:?}")))?;
                }
                "mode" => spec.mode = CampaignMode::parse(value)?,
                "max-states" => {
                    spec.max_states = value
                        .parse()
                        .map_err(|_| SpecError(format!("bad max-states {value:?}")))?;
                }
                "explore-threads" => {
                    spec.explore_threads = value
                        .parse()
                        .map_err(|_| SpecError(format!("bad explore-threads {value:?}")))?;
                }
                "symmetry" => {
                    spec.symmetry = SymmetryMode::parse(value).ok_or_else(|| {
                        SpecError(format!(
                            "unknown symmetry {value:?} (want off or process-ids)"
                        ))
                    })?;
                }
                "reduction" => {
                    spec.reduction = ReductionMode::parse(value).ok_or_else(|| {
                        SpecError(format!(
                            "unknown reduction {value:?} (want off, sleep-set or persistent-set)"
                        ))
                    })?;
                }
                "spill" => {
                    spec.spill = match value {
                        "on" => true,
                        "off" => false,
                        _ => return err(format!("unknown spill {value:?} (want on or off)")),
                    };
                }
                "max-resident-mb" => {
                    spec.max_resident_mb = value
                        .parse()
                        .map_err(|_| SpecError(format!("bad max-resident-mb {value:?}")))?;
                }
                "goals" => {
                    spec.goals = value
                        .split(',')
                        .map(|part| {
                            SearchGoal::parse(part).ok_or_else(|| {
                                SpecError(format!(
                                    "unknown goal {:?} (want covering or block-write)",
                                    part.trim()
                                ))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                }
                "target-registers" => spec.target = SearchTarget::parse(value)?,
                "search-depth" => spec.search_depth = parse_positive(key, value)? as u64,
                "shards" => spec.shards = parse_positive(key, value)?,
                "batch-max" => spec.batch_max = parse_positive(key, value)?,
                "clients" => spec.clients = parse_positive(key, value)?,
                "rate" => spec.rate = parse_positive(key, value)? as u64,
                "duration" => spec.duration = parse_positive(key, value)? as u64,
                _ => return err(format!("unknown key {key:?}")),
            }
        }
        if let Some(cells) = explicit {
            if grid_n.is_some() || grid_m.is_some() || grid_k.is_some() {
                return err("`params` and `n`/`m`/`k` are mutually exclusive");
            }
            spec.params = ParamsSpec::Explicit(cells);
        } else if grid_n.is_some() || grid_m.is_some() || grid_k.is_some() {
            let ParamsSpec::Grid { n, m, k } = &spec.params else {
                unreachable!("default spec uses a grid");
            };
            spec.params = ParamsSpec::Grid {
                n: grid_n.unwrap_or_else(|| n.clone()),
                m: grid_m.unwrap_or_else(|| m.clone()),
                k: grid_k.unwrap_or_else(|| k.clone()),
            };
        }
        if spec.algorithms.is_empty() {
            return err("no algorithms");
        }
        if spec.adversaries.is_empty() {
            return err("no adversaries");
        }
        if spec.backends.is_empty() {
            return err("no backends");
        }
        if spec.seeds.is_empty() {
            return err("no seeds");
        }
        if spec.goals.is_empty() {
            return err("no goals");
        }
        Ok(spec)
    }
}

/// Parses a strictly positive integer (the serve keys reject 0: a service
/// with no shards, empty batches, no clients, no load or no runtime is
/// degenerate, and catching it at parse time beats a runtime panic).
fn parse_positive(key: &str, value: &str) -> Result<usize, SpecError> {
    match value.parse::<usize>() {
        Ok(parsed) if parsed >= 1 => Ok(parsed),
        Ok(_) => err(format!("{key} must be at least 1, got {value:?}")),
        Err(_) => err(format!("bad {key} {value:?}")),
    }
}

fn join<T: std::fmt::Display>(values: &[T]) -> String {
    values
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

/// Renders the seed list in a form [`parse_seeds`] maps back to the same
/// list: a count for `0..n` prefixes, an `a..a` range for singletons (a
/// plain integer would be read as a count), a comma list otherwise.
fn display_seeds(seeds: &[u64]) -> String {
    if seeds.len() > 1 && seeds.iter().enumerate().all(|(i, s)| *s == i as u64) {
        return seeds.len().to_string();
    }
    if let [only] = seeds {
        return format!("{only}..{only}");
    }
    join(seeds)
}

impl std::fmt::Display for CampaignSpec {
    /// Renders the spec in the `key = value` file format such that
    /// `CampaignSpec::parse(&spec.to_string()) == spec` for any spec the
    /// parser itself could have produced: the name must contain no `#`, `=`
    /// or newline (and survive trimming), and the algorithm, adversary and
    /// seed lists must be non-empty — the parser rejects empty lists, so a
    /// struct-literal spec violating that renders to unparseable text.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "name = {}", self.name)?;
        match &self.params {
            ParamsSpec::Grid { n, m, k } => {
                writeln!(f, "n = {}", join(n))?;
                writeln!(f, "m = {}", join(m))?;
                writeln!(f, "k = {}", join(k))?;
            }
            ParamsSpec::Explicit(cells) => {
                let cells: Vec<String> = cells
                    .iter()
                    .map(|p| format!("{}/{}/{}", p.n(), p.m(), p.k()))
                    .collect();
                writeln!(f, "params = {}", cells.join(";"))?;
            }
        }
        let algorithms: Vec<String> = self
            .algorithms
            .iter()
            .map(|a| format!("{}:{}", a.label(), a.instances()))
            .collect();
        writeln!(f, "algorithms = {}", algorithms.join(","))?;
        let adversaries: Vec<String> = self.adversaries.iter().map(|a| a.label()).collect();
        writeln!(f, "adversaries = {}", adversaries.join(","))?;
        let backends: Vec<&str> = self.backends.iter().map(|b| b.label()).collect();
        writeln!(f, "backend = {}", backends.join(","))?;
        writeln!(f, "seeds = {}", display_seeds(&self.seeds))?;
        writeln!(f, "workload = {}", self.workload.label())?;
        writeln!(f, "max-steps = {}", self.max_steps)?;
        writeln!(f, "campaign-seed = {}", self.campaign_seed)?;
        writeln!(f, "mode = {}", self.mode.label())?;
        writeln!(f, "max-states = {}", self.max_states)?;
        writeln!(f, "explore-threads = {}", self.explore_threads)?;
        writeln!(f, "symmetry = {}", self.symmetry.label())?;
        writeln!(f, "reduction = {}", self.reduction.label())?;
        writeln!(f, "spill = {}", if self.spill { "on" } else { "off" })?;
        writeln!(f, "max-resident-mb = {}", self.max_resident_mb)?;
        let goals: Vec<&str> = self.goals.iter().map(|g| g.label()).collect();
        writeln!(f, "goals = {}", goals.join(","))?;
        writeln!(f, "target-registers = {}", self.target.label())?;
        writeln!(f, "search-depth = {}", self.search_depth)?;
        writeln!(f, "shards = {}", self.shards)?;
        writeln!(f, "batch-max = {}", self.batch_max)?;
        writeln!(f, "clients = {}", self.clients)?;
        writeln!(f, "rate = {}", self.rate)?;
        writeln!(f, "duration = {}", self.duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_lists_parse_all_forms() {
        assert_eq!(parse_values("4").unwrap(), vec![4]);
        assert_eq!(parse_values("4,6, 8").unwrap(), vec![4, 6, 8]);
        assert_eq!(parse_values("4..6").unwrap(), vec![4, 5, 6]);
        assert_eq!(parse_values("4..=6").unwrap(), vec![4, 5, 6]);
        assert!(parse_values("6..4").is_err());
        assert!(parse_values("x").is_err());
    }

    #[test]
    fn seed_counts_expand_and_lists_pass_through() {
        assert_eq!(parse_seeds("4").unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(parse_seeds("7,9").unwrap(), vec![7, 9]);
        assert_eq!(parse_seeds("2..4").unwrap(), vec![2, 3, 4]);
        assert!(parse_seeds("0").is_err());
    }

    #[test]
    fn algorithm_lists_parse_labels_and_instances() {
        assert_eq!(parse_algorithms("all").unwrap().len(), 6);
        let algorithms = parse_algorithms("oneshot, repeated:3").unwrap();
        assert_eq!(algorithms, vec![Algorithm::OneShot, Algorithm::Repeated(3)]);
        assert!(parse_algorithms("bogus").is_err());
    }

    #[test]
    fn adversary_labels_round_trip() {
        for text in [
            "round-robin",
            "random",
            "solo",
            "bursts:8",
            "obstruction:50",
            "obstruction:20:2",
            "crash:round-robin:1",
            "crash:random:3",
            "crash:bursts:8:2",
            "crash:obstruction:50:2",
            "crash:obstruction:20:2:1",
        ] {
            let spec = AdversarySpec::parse(text).unwrap();
            assert_eq!(
                AdversarySpec::parse(&spec.label()).unwrap(),
                spec,
                "{text} does not round-trip"
            );
        }
        assert_eq!(
            AdversarySpec::parse("obstruction").unwrap(),
            AdversarySpec::Obstruction {
                contention_factor: 50,
                survivors: Survivors::M
            }
        );
        assert!(AdversarySpec::parse("bursts:0").is_err());
        assert!(AdversarySpec::parse("obstruction:1:2:3").is_err());
    }

    #[test]
    fn crash_templates_parse_with_the_last_field_as_count() {
        assert_eq!(
            AdversarySpec::parse("crash:obstruction:50:2").unwrap(),
            AdversarySpec::Crash {
                inner: Box::new(AdversarySpec::Obstruction {
                    contention_factor: 50,
                    survivors: Survivors::M,
                }),
                crashes: 2,
            }
        );
        assert_eq!(
            AdversarySpec::parse("crash:obstruction:50:3:1").unwrap(),
            AdversarySpec::Crash {
                inner: Box::new(AdversarySpec::Obstruction {
                    contention_factor: 50,
                    survivors: Survivors::Count(3),
                }),
                crashes: 1,
            }
        );
    }

    #[test]
    fn malformed_crash_templates_are_rejected() {
        for bad in [
            "crash",                       // bare, no inner or count
            "crash:",                      // empty tail
            "crash:2",                     // no inner template
            "crash:round-robin",           // missing count
            "crash:round-robin:0",         // zero crashes
            "crash:round-robin:x",         // non-numeric count
            "crash:bogus:2",               // unknown inner
            "crash:crash:round-robin:1:1", // nested crash
            "crash:bursts:0:1",            // invalid inner parameters
        ] {
            assert!(AdversarySpec::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn backend_lists_parse_display_and_default() {
        assert_eq!(
            CampaignSpec::parse("").unwrap().backends,
            vec![BackendSpec::Scheduled]
        );
        let spec = CampaignSpec::parse("backend = threaded").unwrap();
        assert_eq!(spec.backends, vec![BackendSpec::Threaded]);
        let both = CampaignSpec::parse("backend = scheduled, threaded").unwrap();
        assert_eq!(
            both.backends,
            vec![BackendSpec::Scheduled, BackendSpec::Threaded]
        );
        assert_eq!(CampaignSpec::parse(&both.to_string()).unwrap(), both);
        assert!(CampaignSpec::parse("backend = gpu").is_err());
        assert!(CampaignSpec::parse("backend = ").is_err());
        for backend in [BackendSpec::Scheduled, BackendSpec::Threaded] {
            assert_eq!(BackendSpec::parse(backend.label()).unwrap(), backend);
        }
    }

    #[test]
    fn mode_and_max_states_parse_and_default() {
        let spec = CampaignSpec::parse("mode = explore\nmax-states = 5000").unwrap();
        assert_eq!(spec.mode, CampaignMode::Explore);
        assert_eq!(spec.max_states, 5000);
        assert_eq!(CampaignSpec::parse("").unwrap().mode, CampaignMode::Sample);
        assert!(CampaignSpec::parse("mode = fuzz").is_err());
        assert!(CampaignSpec::parse("max-states = lots").is_err());
    }

    #[test]
    fn explore_threads_parse_round_trip_and_default() {
        assert_eq!(CampaignSpec::parse("").unwrap().explore_threads, 0);
        let spec = CampaignSpec::parse("mode = explore\nexplore-threads = 8").unwrap();
        assert_eq!(spec.explore_threads, 8);
        assert_eq!(CampaignSpec::parse(&spec.to_string()).unwrap(), spec);
        assert!(CampaignSpec::parse("explore-threads = many").is_err());
    }

    #[test]
    fn serve_keys_parse_round_trip_and_default() {
        let spec = CampaignSpec::parse(
            "mode = serve
shards = 4
batch-max = 6
clients = 100
rate = 12
duration = 500",
        )
        .unwrap();
        assert_eq!(spec.mode, CampaignMode::Serve);
        assert_eq!((spec.shards, spec.batch_max, spec.clients), (4, 6, 100));
        assert_eq!((spec.rate, spec.duration), (12, 500));
        assert_eq!(CampaignSpec::parse(&spec.to_string()).unwrap(), spec);
        let defaults = CampaignSpec::parse("").unwrap();
        assert_eq!(
            (defaults.shards, defaults.batch_max, defaults.clients),
            (2, 8, 64)
        );
        assert_eq!((defaults.rate, defaults.duration), (8, 1000));
    }

    #[test]
    fn malformed_serve_values_are_rejected() {
        for bad in [
            "shards = 0",
            "batch-max = 0",
            "clients = 0",
            "rate = 0",
            "duration = 0",
            "shards = -1",
            "shards = two",
            "batch-max = 1.5",
            "rate = fast",
            "duration = forever",
            "clients = ",
        ] {
            assert!(CampaignSpec::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn adversary_search_keys_parse_round_trip_and_default() {
        let defaults = CampaignSpec::parse("").unwrap();
        assert_eq!(defaults.goals, vec![SearchGoal::Covering]);
        assert_eq!(defaults.target, SearchTarget::Auto);
        assert_eq!(defaults.search_depth, 60);
        let spec = CampaignSpec::parse(
            "mode = adversary-search
goals = covering, block-write
target-registers = none
search-depth = 24",
        )
        .unwrap();
        assert_eq!(spec.mode, CampaignMode::AdversarySearch);
        assert_eq!(spec.goals, SearchGoal::all().to_vec());
        assert_eq!(spec.target, SearchTarget::None);
        assert_eq!(spec.search_depth, 24);
        assert_eq!(CampaignSpec::parse(&spec.to_string()).unwrap(), spec);
        let fixed = CampaignSpec::parse("target-registers = 7").unwrap();
        assert_eq!(fixed.target, SearchTarget::Registers(7));
        assert_eq!(CampaignSpec::parse(&fixed.to_string()).unwrap(), fixed);
    }

    #[test]
    fn search_targets_resolve_per_cell() {
        let params = Params::new(3, 1, 2).unwrap();
        assert_eq!(SearchTarget::Auto.for_params(&params), 3); // n + 2m - k
        assert_eq!(SearchTarget::None.for_params(&params), 0);
        assert_eq!(SearchTarget::Registers(9).for_params(&params), 9);
    }

    #[test]
    fn malformed_adversary_search_values_are_rejected() {
        for bad in [
            "goals = nonsense",
            "goals = covering, nonsense",
            "goals = ",
            "target-registers = 0",
            "target-registers = -2",
            "target-registers = bogus",
            "search-depth = 0",
            "search-depth = -3",
            "search-depth = deep",
        ] {
            assert!(CampaignSpec::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn spill_knobs_parse_round_trip_and_default_off() {
        let defaults = CampaignSpec::parse("").unwrap();
        assert!(!defaults.spill);
        assert_eq!(defaults.max_resident_mb, 0);
        let spec = CampaignSpec::parse(
            "mode = explore
spill = on
max-resident-mb = 512",
        )
        .unwrap();
        assert!(spec.spill);
        assert_eq!(spec.max_resident_mb, 512);
        let reparsed = CampaignSpec::parse(&spec.to_string()).unwrap();
        assert!(reparsed.spill);
        assert_eq!(reparsed.max_resident_mb, 512);
        assert!(CampaignSpec::parse("spill = maybe").is_err());
        assert!(CampaignSpec::parse("max-resident-mb = lots").is_err());
    }

    #[test]
    fn symmetry_parses_round_trips_and_defaults_off() {
        assert_eq!(CampaignSpec::parse("").unwrap().symmetry, SymmetryMode::Off);
        let spec = CampaignSpec::parse(
            "mode = explore
symmetry = process-ids",
        )
        .unwrap();
        assert_eq!(spec.symmetry, SymmetryMode::ProcessIds);
        assert_eq!(CampaignSpec::parse(&spec.to_string()).unwrap(), spec);
        assert!(CampaignSpec::parse("symmetry = mirror").is_err());
    }

    #[test]
    fn reduction_parses_round_trips_and_defaults_off() {
        assert_eq!(
            CampaignSpec::parse("").unwrap().reduction,
            ReductionMode::Off
        );
        let spec = CampaignSpec::parse(
            "mode = explore
symmetry = process-ids
reduction = sleep-set",
        )
        .unwrap();
        assert_eq!(spec.reduction, ReductionMode::SleepSets);
        assert_eq!(spec.symmetry, SymmetryMode::ProcessIds);
        assert_eq!(CampaignSpec::parse(&spec.to_string()).unwrap(), spec);
        let dpor = CampaignSpec::parse(
            "mode = explore
reduction = persistent-set",
        )
        .unwrap();
        assert_eq!(dpor.reduction, ReductionMode::PersistentSets);
        assert_eq!(CampaignSpec::parse(&dpor.to_string()).unwrap(), dpor);
        assert!(CampaignSpec::parse("reduction = ample-set").is_err());
    }

    #[test]
    fn display_round_trips_default_and_explicit_specs() {
        let spec = CampaignSpec::default();
        assert_eq!(CampaignSpec::parse(&spec.to_string()).unwrap(), spec);

        let explicit = CampaignSpec {
            name: "explicit".into(),
            params: ParamsSpec::parse_explicit("6/2/3;8/1/4").unwrap(),
            adversaries: vec![
                AdversarySpec::Crash {
                    inner: Box::new(AdversarySpec::RoundRobin),
                    crashes: 2,
                },
                AdversarySpec::Solo,
            ],
            seeds: vec![7],
            mode: CampaignMode::Explore,
            max_states: 10_000,
            ..CampaignSpec::default()
        };
        assert_eq!(
            CampaignSpec::parse(&explicit.to_string()).unwrap(),
            explicit
        );
    }

    #[test]
    fn grid_cells_skip_invalid_triples() {
        let spec = ParamsSpec::Grid {
            n: vec![3, 4],
            m: vec![1, 3],
            k: vec![2],
        };
        // (3,1,2) and (4,1,2) are valid; m = 3 > k = 2 never is.
        let cells = spec.cells();
        assert_eq!(cells.len(), 2);
        assert!(cells.iter().all(|p| p.m() == 1 && p.k() == 2));
    }

    #[test]
    fn spec_files_parse_and_reject_unknown_keys() {
        let spec = CampaignSpec::parse(
            "# smoke campaign\n\
             name = smoke\n\
             n = 4..6\n\
             m = 1,2\n\
             k = 2\n\
             algorithms = oneshot,fullinfo\n\
             adversaries = obstruction:40, round-robin\n\
             seeds = 3\n\
             workload = random:5\n\
             max-steps = 100000\n\
             campaign-seed = 9\n",
        )
        .unwrap();
        assert_eq!(spec.name, "smoke");
        assert_eq!(spec.params.cells().len(), 6);
        assert_eq!(spec.algorithms.len(), 2);
        assert_eq!(spec.adversaries.len(), 2);
        assert_eq!(spec.seeds, vec![0, 1, 2]);
        assert_eq!(spec.workload, WorkloadSpec::Random { universe: 5 });
        assert_eq!(spec.max_steps, 100_000);
        assert_eq!(spec.campaign_seed, 9);

        assert!(CampaignSpec::parse("bogus = 1").is_err());
        assert!(CampaignSpec::parse("name").is_err());
    }

    #[test]
    fn explicit_params_conflict_with_grid_axes() {
        let spec = CampaignSpec::parse("params = 6/2/3; 8/1/4").unwrap();
        assert_eq!(spec.params.cells().len(), 2);
        assert!(CampaignSpec::parse("params = 6/2/3\nn = 4").is_err());
        assert!(CampaignSpec::parse("params = 6/9/3").is_err());
    }
}
