//! The parallel campaign executor.
//!
//! [`run_campaign`] expands a spec into its deterministic work list and
//! executes it on a pool of worker threads. Workers pull scenario indices
//! from a shared atomic cursor, run each scenario on the deterministic
//! simulator, and send `(index, record)` pairs back over a channel. The
//! consumer holds a reorder buffer and writes records strictly in index
//! order, so the JSONL stream is **byte-identical for any thread count** —
//! parallelism changes only the wall-clock time, never the output. That
//! invariant is what lets `sweep diff` gate regressions and is asserted by
//! the crate's determinism integration test.

use crate::grid::{derive_seed, expand, ExpansionStats, ScenarioSpec};
use crate::record::SweepRecord;
use crate::spec::{BackendSpec, CampaignMode, CampaignSpec};
use set_agreement::runtime::store::{fnv1a64, Journal, SegmentKind};
use set_agreement::runtime::{
    ExploreConfig, ParallelExploreConfig, SearchConfig, ServeClock, ServeOptions, ThreadedConfig,
};
use set_agreement::{Backend, ExecutionPlan, Executor};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// How the engine executes a campaign.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Worker threads; 0 means one per available CPU.
    pub threads: usize,
    /// Print a progress line to stderr every `progress_every` scenarios
    /// (0 disables progress output).
    pub progress_every: u64,
    /// Run only the `(index, count)` shard of the campaign: scenarios whose
    /// campaign index is `index` modulo `count`. Records keep their
    /// campaign-global indices, so a complete shard set reassembles into
    /// the unsharded stream with [`merge_shards`](crate::merge_shards).
    pub shard: Option<(u64, u64)>,
    /// Crash-safe checkpoint directory. When set, every completed scenario's
    /// record is appended (and synced) to `<dir>/campaign.journal` before it
    /// reaches the sink, and a rerun with the same spec, shard and directory
    /// replays journaled records verbatim instead of recomputing them — so a
    /// killed campaign resumes from its last completed scenario and still
    /// produces a byte-identical JSONL stream. The journal is tagged with a
    /// hash of the spec text and shard selection; reusing a directory for a
    /// different campaign is an error, not silent corruption.
    pub checkpoint: Option<PathBuf>,
}

impl EngineConfig {
    /// Resolves `threads = 0` to the machine's parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Aggregate outcome of a campaign run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignOutcome {
    /// How the spec expanded.
    pub expansion: ExpansionStats,
    /// Records emitted (= `expansion.scenarios`, or the shard's share of
    /// them when [`EngineConfig::shard`] is set).
    pub records: u64,
    /// Records violating validity or k-agreement.
    pub safety_violations: u64,
    /// Records exceeding the declared base-object bound.
    pub bound_violations: u64,
    /// Records where obligated survivors failed to decide.
    pub progress_failures: u64,
    /// Explore-mode records (exhaustive exploration instead of sampling).
    pub explored: u64,
    /// Explore-mode records whose state space was exhausted violation-free.
    pub exhaustively_verified: u64,
    /// Explore-mode records whose state space could **not** be exhausted
    /// within the budgets and that found no violation (truncated, hence
    /// not exhaustively verified; violation-finding explorations count as
    /// safety violations instead).
    pub unverified_explorations: u64,
    /// Records executed on the threaded backend (real OS threads).
    pub threaded: u64,
    /// Explore-mode records executed by the work-stealing parallel
    /// explorer (a subset of [`CampaignOutcome::explored`]).
    pub parallel_explored: u64,
    /// Serve-mode records (batched service runs under the open-loop load
    /// generator).
    pub served: u64,
    /// Adversary-search records (goal-directed witness searches).
    pub searched: u64,
    /// Adversary-search records whose search found a replay-verified
    /// witness.
    pub witnesses_found: u64,
}

impl CampaignOutcome {
    /// `true` if the campaign saw no safety or bound violation (progress
    /// failures are reported separately: they are expected when a campaign
    /// deliberately over-subscribes survivors).
    pub fn clean(&self) -> bool {
        self.safety_violations == 0 && self.bound_violations == 0
    }
}

/// Runs one scenario to a record through the unified
/// [`ExecutionPlan`] → [`Executor`] → `ExecutionReport` facade API.
/// Deterministic for the scheduled and explore backends (depends only on
/// the spec); threaded records are reproducible up to interleaving.
pub fn run_scenario(campaign: &str, spec: &ScenarioSpec) -> SweepRecord {
    if spec.mode == CampaignMode::Serve {
        // The service builds one fresh automaton set per batch, so the
        // plan carries only the cell and the per-batch step budget. The
        // campaign always serves under the virtual clock: that is what
        // makes the record — latencies and throughput included — a pure
        // function of the spec.
        let options = ServeOptions {
            shards: spec.shards,
            batch_max: spec.batch_max,
            clients: spec.clients,
            rate: spec.rate,
            duration_ticks: spec.duration,
            clock: ServeClock::Virtual,
            load: spec.serve_load,
            seed: derive_seed(spec.derived_seed, "serve-load"),
        };
        let plan = ExecutionPlan::new(spec.params)
            .algorithm(spec.algorithm)
            .max_steps(spec.max_steps);
        let report = Executor::new(Backend::Serve(options))
            .execute(&plan)
            .expect_served();
        return SweepRecord::from_serve(campaign, spec, &report);
    }
    let mut plan = ExecutionPlan::new(spec.params)
        .algorithm(spec.algorithm)
        .workload(spec.workload.clone())
        .max_steps(spec.max_steps);
    let backend = match (spec.mode, spec.backend) {
        (CampaignMode::Sample, BackendSpec::Scheduled) => {
            let adversary = spec
                .adversary
                .clone()
                .expect("scheduled scenarios carry a concrete adversary");
            plan = plan.adversary(adversary);
            Backend::Scheduled
        }
        (CampaignMode::Sample, BackendSpec::Threaded) => Backend::Threaded(ThreadedConfig {
            // The campaign budget is a total like the scheduled backend's,
            // so each of the n threads gets its share.
            max_steps_per_process: (spec.max_steps / spec.params.n() as u64).max(1),
            stagger: None,
            seed: derive_seed(spec.derived_seed, "threaded-start"),
        }),
        (CampaignMode::Explore, _) if spec.explore_threads > 0 => {
            Backend::ParallelExplore(ParallelExploreConfig {
                threads: spec.explore_threads,
                max_depth: spec.max_steps,
                max_states: spec.max_states,
                symmetry: spec.symmetry,
                reduction: spec.reduction,
                spill: spec.spill,
                max_resident_bytes: spec.max_resident_mb * 1024 * 1024,
            })
        }
        (CampaignMode::Explore, _) => Backend::Explore(ExploreConfig {
            max_depth: spec.max_steps,
            max_states: spec.max_states,
            dedup: true,
            symmetry: spec.symmetry,
            reduction: spec.reduction,
            spill: spec.spill,
            max_resident_bytes: spec.max_resident_mb * 1024 * 1024,
        }),
        (CampaignMode::AdversarySearch, _) => Backend::AdversarySearch(SearchConfig {
            goal: spec.goal,
            target_registers: spec.target_registers,
            max_depth: spec.search_depth,
            max_states: spec.max_states,
            threads: spec.explore_threads,
            symmetry: spec.symmetry,
            reduction: spec.reduction,
        }),
        (CampaignMode::Serve, _) => unreachable!("serve scenarios are dispatched above"),
    };
    match Executor::new(backend).execute(&plan) {
        set_agreement::ExecutionReport::Scheduled(report) => {
            SweepRecord::from_report(campaign, spec, &report)
        }
        set_agreement::ExecutionReport::Threaded(report) => {
            SweepRecord::from_threaded(campaign, spec, &report)
        }
        set_agreement::ExecutionReport::Explored(report) => {
            SweepRecord::from_exploration(campaign, spec, &report)
        }
        set_agreement::ExecutionReport::Searched(report) => {
            SweepRecord::from_search(campaign, spec, &report)
        }
        set_agreement::ExecutionReport::Served(_) => {
            unreachable!("serve scenarios return before the sampled/explore dispatch")
        }
    }
}

/// Expands and executes `spec` on `config.threads` workers, streaming one
/// JSON line per scenario to `sink` in deterministic scenario order.
///
/// With [`EngineConfig::shard`] set, only that shard's scenarios run;
/// records keep their campaign-global indices so shards merge back into
/// the unsharded stream.
///
/// # Errors
///
/// Returns any I/O error raised by `sink`; scenario execution itself cannot
/// fail.
pub fn run_campaign(
    spec: &CampaignSpec,
    config: EngineConfig,
    sink: &mut dyn Write,
) -> std::io::Result<CampaignOutcome> {
    let (mut scenarios, expansion) = expand(spec);
    if let Some((index, count)) = config.shard {
        assert!(count > 0 && index < count, "shard index out of range");
        scenarios.retain(|s| s.index % count == index);
    }
    let mut outcome = CampaignOutcome {
        expansion,
        ..CampaignOutcome::default()
    };

    // Checkpoint resume: load the journal's completed records, keyed by
    // campaign index. Workers skip completed scenarios entirely; the
    // consumer replays the journaled line bytes verbatim, so the resumed
    // stream is byte-identical to an uninterrupted run. The journal tag
    // binds the directory to this exact campaign (spec text + shard).
    let mut journal = None;
    let mut completed: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    if let Some(dir) = &config.checkpoint {
        std::fs::create_dir_all(dir)?;
        let tag = checkpoint_tag(spec, config.shard);
        let (entries, handle) = Journal::open(
            &dir.join("campaign.journal"),
            SegmentKind::CampaignJournal,
            tag,
        )?;
        for entry in entries {
            if entry.len() < 8 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "journal record shorter than its index prefix",
                ));
            }
            let index = u64::from_le_bytes(entry[..8].try_into().unwrap());
            completed.insert(index, entry[8..].to_vec());
        }
        journal = Some(handle);
    }
    let work: Vec<&ScenarioSpec> = scenarios
        .iter()
        .filter(|s| !completed.contains_key(&s.index))
        .collect();

    let threads = config.effective_threads().min(work.len().max(1));
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(u64, SweepRecord)>();

    std::thread::scope(|scope| -> std::io::Result<()> {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let work = &work;
            let name = &spec.name;
            scope.spawn(move || loop {
                let next = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(scenario) = work.get(next) else {
                    break;
                };
                let record = run_scenario(name, scenario);
                if tx.send((scenario.index, record)).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        // Reorder buffer: records arrive in completion order but leave in
        // scenario order, keeping the stream deterministic. Under sharding
        // the expected indices are the (sorted) filtered ones, not 0..len.
        // Journaled records (resume) enter the buffer with their original
        // line bytes; freshly computed ones are journaled — synced to disk
        // — before the line reaches the sink, so a kill between the two
        // never loses a completed scenario.
        let mut pending: BTreeMap<u64, (SweepRecord, Option<Vec<u8>>)> = BTreeMap::new();
        for (&index, line) in &completed {
            let text = std::str::from_utf8(line).map_err(|_| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "journaled record is not UTF-8",
                )
            })?;
            let mut records = crate::record::parse_jsonl(text).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("journaled record does not parse: {e}"),
                )
            })?;
            if records.len() != 1 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "journal entry holds more than one record",
                ));
            }
            pending.insert(index, (records.remove(0), Some(line.clone())));
        }
        let mut expected = scenarios.iter().map(|s| s.index);
        let mut next_index = expected.next();
        let mut written = 0u64;
        loop {
            while let Some(index) = next_index {
                let Some((record, journaled_line)) = pending.remove(&index) else {
                    break;
                };
                outcome.records += 1;
                if !record.safe() {
                    outcome.safety_violations += 1;
                }
                if !record.bound_ok {
                    outcome.bound_violations += 1;
                }
                if !record.progress_ok() {
                    outcome.progress_failures += 1;
                }
                if record.backend == "threaded" {
                    outcome.threaded += 1;
                }
                if record.backend == "serve" {
                    outcome.served += 1;
                }
                if record.mode == "adversary-search" {
                    outcome.searched += 1;
                    if record.witness_found {
                        outcome.witnesses_found += 1;
                    }
                }
                if record.mode == "explore" {
                    outcome.explored += 1;
                    if record.backend == "parallel-explore" {
                        outcome.parallel_explored += 1;
                    }
                    if record.verified {
                        outcome.exhaustively_verified += 1;
                    } else if record.safe() {
                        outcome.unverified_explorations += 1;
                    }
                }
                match journaled_line {
                    Some(line) => {
                        sink.write_all(&line)?;
                        sink.write_all(b"\n")?;
                    }
                    None => {
                        let line = record.to_json();
                        if let Some(journal) = journal.as_mut() {
                            let mut body = Vec::with_capacity(8 + line.len());
                            body.extend_from_slice(&index.to_le_bytes());
                            body.extend_from_slice(line.as_bytes());
                            journal.append(&body)?;
                        }
                        writeln!(sink, "{line}")?;
                    }
                }
                next_index = expected.next();
                written += 1;
                if config.progress_every > 0 && written.is_multiple_of(config.progress_every) {
                    eprintln!("sweep: {written}/{} scenarios done", scenarios.len());
                }
            }
            match rx.recv() {
                Ok((index, record)) => {
                    pending.insert(index, (record, None));
                }
                Err(_) => break,
            }
        }
        debug_assert!(pending.is_empty(), "reorder buffer drained");
        Ok(())
    })?;

    sink.flush()?;
    Ok(outcome)
}

/// The journal tag binding a checkpoint directory to one campaign: a hash
/// of the spec's canonical text plus the shard selection. Opening the same
/// directory with a different spec or shard fails loudly instead of
/// splicing foreign records into the stream.
fn checkpoint_tag(spec: &CampaignSpec, shard: Option<(u64, u64)>) -> u64 {
    let mut text = spec.to_string();
    if let Some((index, count)) = shard {
        text.push_str(&format!("\nshard = {index}/{count}\n"));
    }
    fnv1a64(text.as_bytes())
}

/// Like [`run_campaign`] but collects the records instead of streaming
/// JSONL; used by the bench binaries and in-process callers.
pub fn run_campaign_collect(
    spec: &CampaignSpec,
    config: EngineConfig,
) -> (Vec<SweepRecord>, CampaignOutcome) {
    let mut bytes = Vec::new();
    let outcome = run_campaign(spec, config, &mut bytes).expect("writing to a Vec cannot fail");
    let text = String::from_utf8(bytes).expect("records are valid UTF-8");
    let records = crate::record::parse_jsonl(&text).expect("engine emits parseable records");
    (records, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AdversarySpec, ParamsSpec, Survivors, WorkloadSpec};
    use set_agreement::Algorithm;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            name: "tiny".into(),
            params: ParamsSpec::Grid {
                n: vec![4, 5],
                m: vec![1, 2],
                k: vec![2],
            },
            algorithms: vec![Algorithm::OneShot, Algorithm::FullInformation],
            adversaries: vec![AdversarySpec::Obstruction {
                contention_factor: 20,
                survivors: Survivors::M,
            }],
            seeds: vec![0, 1],
            workload: WorkloadSpec::Distinct,
            max_steps: 500_000,
            campaign_seed: 11,
            ..CampaignSpec::default()
        }
    }

    #[test]
    fn campaign_runs_clean_and_in_order() {
        let (records, outcome) = run_campaign_collect(
            &tiny_spec(),
            EngineConfig {
                threads: 4,
                ..EngineConfig::default()
            },
        );
        assert_eq!(outcome.records, records.len() as u64);
        assert!(outcome.clean(), "{outcome:?}");
        assert_eq!(outcome.progress_failures, 0);
        for (i, record) in records.iter().enumerate() {
            assert_eq!(record.scenario, i as u64, "stream out of order");
            assert!(record.safe());
            assert!(record.bound_ok);
            assert!(record.survivors_decided);
        }
    }

    #[test]
    fn thread_count_does_not_change_the_bytes() {
        let spec = tiny_spec();
        let run = |threads| {
            let mut bytes = Vec::new();
            run_campaign(
                &spec,
                EngineConfig {
                    threads,
                    ..EngineConfig::default()
                },
                &mut bytes,
            )
            .unwrap();
            bytes
        };
        let single = run(1);
        assert!(!single.is_empty());
        assert_eq!(single, run(3));
    }

    #[test]
    fn crash_campaigns_stay_safe_and_count_crashes() {
        let mut spec = tiny_spec();
        spec.adversaries = vec![
            AdversarySpec::Crash {
                inner: Box::new(AdversarySpec::Obstruction {
                    contention_factor: 20,
                    survivors: Survivors::M,
                }),
                crashes: 2,
            },
            AdversarySpec::Crash {
                inner: Box::new(AdversarySpec::RoundRobin),
                crashes: 1,
            },
        ];
        let (records, outcome) = run_campaign_collect(&spec, EngineConfig::default());
        assert!(outcome.clean(), "{outcome:?}");
        assert_eq!(
            outcome.progress_failures, 0,
            "a non-crashed survivor starved"
        );
        assert!(records.iter().all(|r| r.safe()));
        assert!(records.iter().all(|r| r.crashes >= 1 && r.crashes <= 2));
        assert!(records.iter().all(|r| r.mode == "sample"));
        assert!(records.iter().any(|r| r.adversary.starts_with("crash:")));
    }

    #[test]
    fn explore_mode_exhaustively_verifies_tiny_cells() {
        let spec = CampaignSpec {
            name: "explore".into(),
            params: ParamsSpec::Explicit(vec![sa_model::Params::new(2, 1, 1).unwrap()]),
            algorithms: vec![Algorithm::OneShot, Algorithm::AnonymousOneShot],
            mode: crate::spec::CampaignMode::Explore,
            max_steps: 100_000,
            max_states: 500_000,
            ..CampaignSpec::default()
        };
        let (records, outcome) = run_campaign_collect(&spec, EngineConfig::default());
        assert_eq!(outcome.records, 2, "adversary and seed axes must collapse");
        assert_eq!(outcome.explored, 2);
        assert_eq!(outcome.exhaustively_verified, 2);
        assert_eq!(outcome.unverified_explorations, 0);
        assert!(outcome.clean(), "{outcome:?}");
        for record in &records {
            assert_eq!(record.mode, "explore");
            assert_eq!(record.adversary, "exhaustive");
            assert_eq!(record.stop, "state-space-exhausted");
            assert!(record.verified, "cell was not exhaustively verified");
            assert!(record.explored_states > 0);
            assert!(record.bound_ok, "some interleaving exceeded the bound");
        }
    }

    #[test]
    fn parallel_explore_output_is_byte_identical_at_any_worker_count() {
        let spec = CampaignSpec {
            name: "parallel-explore".into(),
            params: ParamsSpec::Explicit(vec![sa_model::Params::new(2, 1, 1).unwrap()]),
            algorithms: vec![Algorithm::OneShot, Algorithm::AnonymousOneShot],
            mode: crate::spec::CampaignMode::Explore,
            max_steps: 100_000,
            max_states: 500_000,
            explore_threads: 1,
            ..CampaignSpec::default()
        };
        let run = |explore_threads, engine_threads| {
            let mut bytes = Vec::new();
            let spec = CampaignSpec {
                explore_threads,
                ..spec.clone()
            };
            let outcome = run_campaign(
                &spec,
                EngineConfig {
                    threads: engine_threads,
                    ..EngineConfig::default()
                },
                &mut bytes,
            )
            .unwrap();
            (bytes, outcome)
        };
        let (reference, outcome) = run(1, 1);
        assert_eq!(outcome.parallel_explored, 2);
        assert_eq!(outcome.exhaustively_verified, 2);
        // Neither the explorer's worker count nor the engine's thread count
        // may change a single byte of the stream.
        for (explore_threads, engine_threads) in [(2, 1), (8, 2), (8, 4)] {
            let (bytes, outcome) = run(explore_threads, engine_threads);
            assert_eq!(
                bytes, reference,
                "output drifted at explore_threads={explore_threads}, \
                 engine threads={engine_threads}"
            );
            assert_eq!(outcome.parallel_explored, 2);
        }
        let records = crate::record::parse_jsonl(std::str::from_utf8(&reference).unwrap()).unwrap();
        for record in &records {
            assert_eq!(record.backend, "parallel-explore");
            assert_eq!(record.mode, "explore");
            assert!(record.verified);
            assert!(record.frontier_peak > 0, "memory stats must be recorded");
            assert_eq!(record.seen_entries, record.explored_states);
            assert!(record.approx_bytes > 0);
            let line = record.to_json();
            assert!(line.contains("\"backend\":\"parallel-explore\""));
            assert!(line.contains("\"frontier_peak\":"));
        }

        // The serial explorer agrees on every verification-bearing field —
        // only the backend label and the (serial-absent) memory statistics
        // differ.
        let (serial_bytes, serial_outcome) = run(0, 1);
        assert_eq!(serial_outcome.parallel_explored, 0);
        assert_eq!(serial_outcome.exhaustively_verified, 2);
        let serial =
            crate::record::parse_jsonl(std::str::from_utf8(&serial_bytes).unwrap()).unwrap();
        for (s, p) in serial.iter().zip(&records) {
            assert_eq!(s.backend, "explore");
            assert_eq!(s.explored_states, p.explored_states);
            assert_eq!(s.verified, p.verified);
            assert_eq!(s.stop, p.stop);
            assert_eq!(s.key(), p.key(), "worker count must not change identity");
            for absent in ["frontier_peak", "seen_entries", "approx_bytes", "backend"] {
                assert!(
                    !s.to_json().contains(absent),
                    "{absent} leaked into serial explore output"
                );
            }
        }
    }

    #[test]
    fn truncated_explorations_are_counted_as_unverified() {
        let spec = CampaignSpec {
            name: "truncated".into(),
            params: ParamsSpec::Explicit(vec![sa_model::Params::new(4, 1, 2).unwrap()]),
            algorithms: vec![Algorithm::OneShot],
            mode: crate::spec::CampaignMode::Explore,
            max_steps: 100_000,
            max_states: 50, // far too small to exhaust the cell
            ..CampaignSpec::default()
        };
        let (records, outcome) = run_campaign_collect(&spec, EngineConfig::default());
        assert_eq!(outcome.explored, 1);
        assert_eq!(outcome.unverified_explorations, 1);
        // Truncation is not a safety violation — it is an exhaustiveness gap.
        assert!(outcome.clean(), "{outcome:?}");
        assert!(!records[0].verified);
        assert_eq!(records[0].stop, "truncated");
    }

    #[test]
    fn threaded_campaigns_run_clean_with_throughput_records() {
        let mut spec = tiny_spec();
        spec.backends = vec![crate::spec::BackendSpec::Threaded];
        spec.max_steps = 200_000;
        let (records, outcome) = run_campaign_collect(&spec, EngineConfig::default());
        assert!(outcome.clean(), "{outcome:?}");
        assert_eq!(outcome.threaded, records.len() as u64);
        // Adversary axis collapsed: cells x algorithms x seeds.
        assert_eq!(records.len(), 4 * 2 * 2);
        for record in &records {
            assert_eq!(record.backend, "threaded");
            assert_eq!(record.adversary, "hardware");
            assert_eq!(record.mode, "sample");
            assert!(record.safe(), "threaded run violated safety");
            assert!(record.bound_ok, "threaded run exceeded its bound");
            assert!(record.steps > 0, "threaded run took no steps");
            assert!(!record.progress_required);
            let line = record.to_json();
            assert!(line.contains("\"backend\":\"threaded\""));
            assert!(line.contains("\"wall_us\":"));
        }
    }

    #[test]
    fn mixed_backend_campaigns_keep_scheduled_output_deterministic() {
        let mut spec = tiny_spec();
        spec.backends = vec![
            crate::spec::BackendSpec::Scheduled,
            crate::spec::BackendSpec::Threaded,
        ];
        spec.max_steps = 200_000;
        let (a, outcome) = run_campaign_collect(&spec, EngineConfig::default());
        let (b, _) = run_campaign_collect(&spec, EngineConfig::default());
        assert!(outcome.clean(), "{outcome:?}");
        assert!(outcome.threaded > 0);
        assert!(a.iter().any(|r| r.backend == "scheduled"));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.scenario, y.scenario);
            if x.backend == "scheduled" {
                // Scheduled records are bit-for-bit reproducible even in a
                // mixed campaign.
                assert_eq!(x.to_json(), y.to_json());
            } else {
                // Threaded records are reproducible up to interleaving:
                // identity and safety agree, steps/wall-clock may not.
                assert_eq!(x.key(), y.key());
                assert_eq!(x.safe(), y.safe());
            }
        }
    }

    #[test]
    fn serve_campaigns_run_clean_with_latency_records() {
        let spec = CampaignSpec {
            name: "serve".into(),
            params: ParamsSpec::Explicit(vec![sa_model::Params::new(4, 1, 2).unwrap()]),
            mode: crate::spec::CampaignMode::Serve,
            seeds: vec![0, 1],
            clients: 8,
            rate: 3,
            duration: 40,
            batch_max: 4,
            shards: 2,
            ..CampaignSpec::default()
        };
        let (records, outcome) = run_campaign_collect(&spec, EngineConfig::default());
        assert!(outcome.clean(), "{outcome:?}");
        assert_eq!(outcome.served, 2, "one record per seed");
        assert_eq!(outcome.progress_failures, 0);
        for record in &records {
            assert_eq!(record.mode, "serve");
            assert_eq!(record.backend, "serve");
            assert_eq!(record.adversary, "open-loop");
            assert_eq!(record.stop, "drained");
            assert_eq!(record.proposals, 3 * 40);
            assert!(record.batches > 0);
            assert!(record.decisions == record.proposals);
            assert!(record.distinct_outputs_max <= record.k);
            assert!(record.ops_per_sec > 0);
            assert!(record.p50_us > 0 && record.p50_us <= record.p999_us);
            assert!(record.decided_fingerprint != 0);
            let line = record.to_json();
            assert!(line.contains("\"backend\":\"serve\""));
            assert!(line.contains("\"p99_us\":"));
        }
    }

    #[test]
    fn serve_output_is_byte_identical_at_any_shard_and_thread_count() {
        let spec = CampaignSpec {
            name: "serve-determinism".into(),
            params: ParamsSpec::Explicit(vec![sa_model::Params::new(4, 1, 2).unwrap()]),
            mode: crate::spec::CampaignMode::Serve,
            seeds: vec![0, 1],
            clients: 8,
            rate: 3,
            duration: 40,
            batch_max: 4,
            shards: 1,
            ..CampaignSpec::default()
        };
        let run = |shards, threads| {
            let mut bytes = Vec::new();
            let spec = CampaignSpec {
                shards,
                ..spec.clone()
            };
            run_campaign(
                &spec,
                EngineConfig {
                    threads,
                    ..EngineConfig::default()
                },
                &mut bytes,
            )
            .unwrap();
            bytes
        };
        let reference = run(1, 1);
        assert!(!reference.is_empty());
        // Neither the service's shard count nor the engine's worker count
        // may change a single byte — latency and throughput included,
        // because the virtual clock makes both pure functions of the spec.
        for (shards, threads) in [(2, 1), (4, 2), (3, 4)] {
            assert_eq!(
                run(shards, threads),
                reference,
                "serve output drifted at shards={shards}, threads={threads}"
            );
        }
    }

    #[test]
    fn adversary_search_campaigns_rediscover_the_bound() {
        // n + 2m − k = 3 on the 2/1/1 cell: every goal on every algorithm
        // must find a replay-verified witness touching exactly 3 registers.
        let spec = CampaignSpec {
            name: "search".into(),
            params: ParamsSpec::Explicit(vec![sa_model::Params::new(2, 1, 1).unwrap()]),
            algorithms: vec![Algorithm::OneShot, Algorithm::AnonymousOneShot],
            mode: crate::spec::CampaignMode::AdversarySearch,
            goals: set_agreement::runtime::SearchGoal::all().to_vec(),
            search_depth: 40,
            max_states: 500_000,
            symmetry: set_agreement::runtime::SymmetryMode::ProcessIds,
            ..CampaignSpec::default()
        };
        let (records, outcome) = run_campaign_collect(&spec, EngineConfig::default());
        assert!(outcome.clean(), "{outcome:?}");
        assert_eq!(outcome.searched, 4, "2 algorithms x 2 goals");
        assert_eq!(outcome.witnesses_found, 4);
        for record in &records {
            assert_eq!(record.mode, "adversary-search");
            assert_eq!(record.backend, "adversary-search");
            assert_eq!(record.stop, "target-reached");
            assert_eq!(record.target_registers, 3);
            assert_eq!(record.witness_registers, 3, "{record:?}");
            assert!(record.witness_found);
            assert!(record.verified, "witness failed replay verification");
            assert!(record.witness_depth > 0);
            assert_ne!(record.witness_schedule, "-");
            assert_ne!(record.witness_fingerprint, 0);
            assert!(record.adversary.starts_with("adversary-search:"));
        }
    }

    #[test]
    fn adversary_search_output_is_byte_identical_at_any_thread_count() {
        let spec = CampaignSpec {
            name: "search-determinism".into(),
            params: ParamsSpec::Explicit(vec![sa_model::Params::new(2, 1, 1).unwrap()]),
            algorithms: vec![Algorithm::OneShot],
            mode: crate::spec::CampaignMode::AdversarySearch,
            goals: set_agreement::runtime::SearchGoal::all().to_vec(),
            search_depth: 40,
            max_states: 500_000,
            explore_threads: 1,
            ..CampaignSpec::default()
        };
        let run = |search_threads, engine_threads| {
            let mut bytes = Vec::new();
            let spec = CampaignSpec {
                explore_threads: search_threads,
                ..spec.clone()
            };
            run_campaign(
                &spec,
                EngineConfig {
                    threads: engine_threads,
                    ..EngineConfig::default()
                },
                &mut bytes,
            )
            .unwrap();
            bytes
        };
        let reference = run(1, 1);
        assert!(!reference.is_empty());
        // Neither the search's worker count nor the engine's thread count
        // may change a single byte of the stream — same invariant the
        // parallel explorer upholds.
        for (search_threads, engine_threads) in [(2, 1), (8, 2), (8, 4)] {
            assert_eq!(
                run(search_threads, engine_threads),
                reference,
                "search output drifted at search_threads={search_threads}, \
                 engine threads={engine_threads}"
            );
        }
    }

    #[test]
    fn sharded_runs_merge_back_into_the_unsharded_stream() {
        let spec = tiny_spec();
        let full = {
            let mut bytes = Vec::new();
            run_campaign(&spec, EngineConfig::default(), &mut bytes).unwrap();
            bytes
        };
        let mut shards = Vec::new();
        let count = 3;
        for index in 0..count {
            let config = EngineConfig {
                shard: Some((index, count)),
                ..EngineConfig::default()
            };
            let mut bytes = Vec::new();
            let outcome = run_campaign(&spec, config, &mut bytes).unwrap();
            assert!(outcome.records > 0 && outcome.records < outcome.expansion.scenarios);
            shards.push(crate::record::parse_jsonl(std::str::from_utf8(&bytes).unwrap()).unwrap());
        }
        let merged = crate::merge_shards(&shards).unwrap();
        let merged_bytes: Vec<u8> = merged
            .iter()
            .flat_map(|r| format!("{}\n", r.to_json()).into_bytes())
            .collect();
        assert_eq!(merged_bytes, full, "merged shards differ from full run");
    }

    #[test]
    fn outcome_counts_progress_failures_without_flagging_them_unsafe() {
        // 3 survivors > m: termination is not guaranteed, so some scenarios
        // hit the step limit without every survivor deciding. Safety must
        // still hold throughout.
        let mut spec = tiny_spec();
        spec.adversaries = vec![AdversarySpec::Obstruction {
            contention_factor: 5,
            survivors: Survivors::Count(3),
        }];
        spec.max_steps = 20_000;
        let (records, outcome) = run_campaign_collect(&spec, EngineConfig::default());
        assert!(outcome.clean(), "{outcome:?}");
        assert!(records.iter().all(|r| !r.progress_required));
    }
}
