//! Aggregation of sweep records: per-cell summaries and cross-file diffs.
//!
//! A *cell* is one `(n, m, k, algorithm)` combination; the summary
//! aggregates all its scenarios (across adversaries and seeds) into
//! pass/fail counts, the maximum space actually used, and bound-violation
//! flags — the tabular counterpart of the paper's Figure 1 "measured"
//! column. The diff compares two result files scenario-by-scenario and is
//! the regression gate used in CI.

use crate::record::SweepRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Identity of a summary cell.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CellKey {
    /// `n` of the cell.
    pub n: usize,
    /// `m` of the cell.
    pub m: usize,
    /// `k` of the cell.
    pub k: usize,
    /// Algorithm label.
    pub algorithm: String,
    /// Instances of repeated agreement (1 for one-shot), so repeated
    /// variants with different instance counts stay distinct cells.
    pub instances: usize,
}

/// Aggregates of all scenarios of one cell.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellSummary {
    /// Scenarios aggregated.
    pub runs: u64,
    /// Scenarios violating validity or k-agreement.
    pub safety_violations: u64,
    /// Scenarios writing more base objects than declared.
    pub bound_violations: u64,
    /// Scenarios whose progress obligation applied.
    pub progress_required: u64,
    /// Obliged scenarios whose survivors failed to decide.
    pub progress_failures: u64,
    /// Scenarios run under a crash adversary (at least one crash point).
    pub crashed_runs: u64,
    /// Total crash points injected across all scenarios.
    pub total_crashes: u64,
    /// Scenarios executed by exhaustive exploration instead of sampling.
    pub explored: u64,
    /// Explored scenarios whose state space was exhausted violation-free.
    pub verified: u64,
    /// Explored scenarios whose search found a safety violation (a real
    /// counterexample, as opposed to a budget truncation).
    pub explored_violations: u64,
    /// Maximum states visited by any exploration of this cell.
    pub max_explored_states: u64,
    /// Maximum exploration depth (longest schedule prefix examined) of any
    /// exploration of this cell.
    pub max_explored_depth: u64,
    /// Explored scenarios run on the work-stealing parallel explorer.
    pub parallel_explored: u64,
    /// Explored scenarios deduplicated up to process-id orbits
    /// (`symmetry = process-ids` applied).
    pub symmetry_reduced: u64,
    /// Explored scenarios that requested symmetry but fell back to plain
    /// exploration (`symmetry = fallback-off`).
    pub symmetry_fallbacks: u64,
    /// Maximum orbit representatives visited by any symmetry-reduced
    /// exploration of this cell.
    pub max_orbit_states: u64,
    /// Maximum full-state lower bound of any symmetry-reduced exploration
    /// of this cell.
    pub max_full_states_lower_bound: u64,
    /// Explored or searched scenarios pruned by sleep sets
    /// (`reduction = sleep-set` applied).
    pub sleep_reduced: u64,
    /// Scenarios that requested sleep sets but fell back to plain
    /// exploration (`reduction = fallback-off`).
    pub sleep_fallbacks: u64,
    /// Total expansions performed across the cell's sleep-set scenarios.
    pub total_expansions: u64,
    /// Total commuting sibling expansions pruned by sleep sets across the
    /// cell's scenarios.
    pub total_sleep_pruned: u64,
    /// Explored or searched scenarios reduced by persistent sets
    /// (`reduction = persistent-set` applied).
    pub persistent_reduced: u64,
    /// Total expansions drawn from persistent (or DPOR backtrack) sets
    /// across the cell's persistent-set scenarios.
    pub total_persistent_expanded: u64,
    /// Total enabled transitions left permanently unexpanded by persistent
    /// sets across the cell's scenarios — each one prunes a whole subtree,
    /// cutting states rather than just sibling transitions.
    pub total_states_cut: u64,
    /// Maximum peak BFS level width of any parallel exploration of this
    /// cell. Parallel `frontier_peak` counts the widest level of the
    /// level-synchronized search — the serial explorer's DFS stack depth is
    /// a different quantity and is deliberately not aggregated here.
    pub max_frontier_peak: u64,
    /// Maximum estimated explorer memory (bytes) of any parallel
    /// exploration of this cell.
    pub max_approx_bytes: u64,
    /// Scenarios executed on the threaded backend (real OS threads).
    pub threaded_runs: u64,
    /// Total wall-clock microseconds across the cell's threaded runs.
    pub total_wall_us: u64,
    /// Total shared-memory steps across the cell's threaded runs.
    pub threaded_steps: u64,
    /// Scenarios executed as batched service runs.
    pub serve_runs: u64,
    /// Total proposals accepted across the cell's service runs.
    pub serve_proposals: u64,
    /// Total batches cut across the cell's service runs.
    pub serve_batches: u64,
    /// Worst median proposal latency of any service run (microseconds).
    pub max_p50_us: u64,
    /// Worst 99th-percentile proposal latency of any service run
    /// (microseconds).
    pub max_p99_us: u64,
    /// Peak decided-proposals-per-second of any service run.
    pub max_ops_per_sec: u64,
    /// Scenarios executed as goal-directed adversary searches.
    pub searched: u64,
    /// Search scenarios that found a witness.
    pub witnesses_found: u64,
    /// Search scenarios with a register target whose best witness fell
    /// short of it (a rediscovery miss — the machine failed to re-find the
    /// paper's bound within its budgets).
    pub search_misses: u64,
    /// Largest register target any search of this cell chased (for the
    /// rediscovery cells: `n + 2m − k`).
    pub search_target: usize,
    /// Deepest best-witness schedule of any search of this cell.
    pub max_witness_depth: u64,
    /// Widest covering (distinct covered locations) of any best witness.
    pub max_registers_covered: usize,
    /// Largest `written ∪ covered` of any best witness.
    pub max_witness_registers: usize,
    /// Maximum distinct base objects written by any scenario.
    pub max_locations_written: usize,
    /// The paper's register bound (identical across the cell).
    pub register_bound: usize,
    /// Declared base objects (identical across the cell).
    pub component_bound: usize,
    /// Maximum steps any scenario executed.
    pub max_steps_seen: u64,
    /// Total steps across all scenarios.
    pub total_steps: u64,
}

/// A whole summarized campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Summary {
    /// Per-cell aggregates, in deterministic key order.
    pub cells: BTreeMap<CellKey, CellSummary>,
    /// Total records.
    pub records: u64,
    /// Total safety violations.
    pub safety_violations: u64,
    /// Total bound violations.
    pub bound_violations: u64,
    /// Total progress failures among obliged scenarios.
    pub progress_failures: u64,
    /// Total crash points injected.
    pub total_crashes: u64,
    /// Total explore-mode records.
    pub explored: u64,
    /// Explore-mode records that were exhaustively verified.
    pub verified: u64,
    /// Explore-mode records whose search hit a budget before exhausting the
    /// state space *without* finding a violation (violation-finding
    /// explorations are counted under [`Summary::safety_violations`], not
    /// here).
    pub truncated_explorations: u64,
    /// Explore-mode records run on the work-stealing parallel explorer.
    pub parallel_explored: u64,
    /// Explore-mode records deduplicated up to process-id orbits.
    pub symmetry_reduced: u64,
    /// Explore-mode records that requested symmetry but fell back.
    pub symmetry_fallbacks: u64,
    /// Total orbit representatives across all symmetry-reduced records.
    pub total_orbit_states: u64,
    /// Total full-state lower bound across all symmetry-reduced records.
    pub total_full_states_lower_bound: u64,
    /// Explore or search records pruned by sleep sets.
    pub sleep_reduced: u64,
    /// Records that requested sleep sets but fell back.
    pub sleep_fallbacks: u64,
    /// Total expansions performed across all sleep-set records.
    pub total_expansions: u64,
    /// Total commuting sibling expansions pruned across all sleep-set
    /// records.
    pub total_sleep_pruned: u64,
    /// Explore or search records reduced by persistent sets.
    pub persistent_reduced: u64,
    /// Total expansions drawn from persistent (or DPOR backtrack) sets
    /// across all persistent-set records.
    pub total_persistent_expanded: u64,
    /// Total enabled transitions left permanently unexpanded by persistent
    /// sets across all persistent-set records.
    pub total_states_cut: u64,
    /// Maximum peak BFS level width across all parallel explorations
    /// (the widest level of the level-synchronized search, not a DFS stack
    /// depth).
    pub max_frontier_peak: u64,
    /// Maximum estimated explorer memory (bytes) across all parallel
    /// explorations.
    pub max_approx_bytes: u64,
    /// Records executed on the threaded backend.
    pub threaded_runs: u64,
    /// Total wall-clock microseconds across all threaded records.
    pub total_wall_us: u64,
    /// Total shared-memory steps across all threaded records.
    pub threaded_steps: u64,
    /// Records executed as batched service runs.
    pub serve_runs: u64,
    /// Total proposals accepted across all service runs.
    pub serve_proposals: u64,
    /// Total batches cut across all service runs.
    pub serve_batches: u64,
    /// Worst median proposal latency across all service runs
    /// (microseconds).
    pub max_p50_us: u64,
    /// Worst 99th-percentile proposal latency across all service runs
    /// (microseconds).
    pub max_p99_us: u64,
    /// Peak decided-proposals-per-second across all service runs.
    pub max_ops_per_sec: u64,
    /// Records executed as goal-directed adversary searches.
    pub searched: u64,
    /// Search records that found a witness.
    pub witnesses_found: u64,
    /// Found witnesses that replayed successfully through the verifier.
    pub witnesses_verified: u64,
    /// Search records whose best witness fell short of their register
    /// target (see [`Summary::rediscovery_misses`]).
    pub search_misses: u64,
}

impl Summary {
    /// Aggregates records into per-cell summaries.
    pub fn of(records: &[SweepRecord]) -> Self {
        let mut summary = Summary::default();
        for record in records {
            let key = CellKey {
                n: record.n,
                m: record.m,
                k: record.k,
                algorithm: record.algorithm.clone(),
                instances: record.instances,
            };
            let cell = summary.cells.entry(key).or_default();
            cell.runs += 1;
            cell.register_bound = record.register_bound;
            cell.component_bound = record.component_bound;
            cell.max_locations_written = cell.max_locations_written.max(record.locations_written);
            cell.max_steps_seen = cell.max_steps_seen.max(record.steps);
            cell.total_steps += record.steps;
            if !record.safe() {
                cell.safety_violations += 1;
                summary.safety_violations += 1;
            }
            if !record.bound_ok {
                cell.bound_violations += 1;
                summary.bound_violations += 1;
            }
            if record.progress_required {
                cell.progress_required += 1;
                if !record.survivors_decided {
                    cell.progress_failures += 1;
                    summary.progress_failures += 1;
                }
            }
            if record.crashes > 0 {
                cell.crashed_runs += 1;
                cell.total_crashes += record.crashes as u64;
                summary.total_crashes += record.crashes as u64;
            }
            if record.backend == "threaded" {
                cell.threaded_runs += 1;
                cell.total_wall_us += record.wall_us;
                cell.threaded_steps += record.steps;
                summary.threaded_runs += 1;
                summary.total_wall_us += record.wall_us;
                summary.threaded_steps += record.steps;
            }
            if record.backend == "serve" {
                cell.serve_runs += 1;
                cell.serve_proposals += record.proposals;
                cell.serve_batches += record.batches;
                cell.max_p50_us = cell.max_p50_us.max(record.p50_us);
                cell.max_p99_us = cell.max_p99_us.max(record.p99_us);
                cell.max_ops_per_sec = cell.max_ops_per_sec.max(record.ops_per_sec);
                summary.serve_runs += 1;
                summary.serve_proposals += record.proposals;
                summary.serve_batches += record.batches;
                summary.max_p50_us = summary.max_p50_us.max(record.p50_us);
                summary.max_p99_us = summary.max_p99_us.max(record.p99_us);
                summary.max_ops_per_sec = summary.max_ops_per_sec.max(record.ops_per_sec);
            }
            if record.mode == "explore" || record.mode == "adversary-search" {
                // Sleep sets apply to both exhaustive exploration and
                // adversary search, so the aggregation sits outside the
                // per-mode branches.
                if record.reduction == "sleep-set" {
                    cell.sleep_reduced += 1;
                    cell.total_expansions += record.expansions;
                    cell.total_sleep_pruned += record.sleep_pruned;
                    summary.sleep_reduced += 1;
                    summary.total_expansions += record.expansions;
                    summary.total_sleep_pruned += record.sleep_pruned;
                } else if record.reduction == "persistent-set" {
                    cell.persistent_reduced += 1;
                    cell.total_expansions += record.expansions;
                    cell.total_sleep_pruned += record.sleep_pruned;
                    cell.total_persistent_expanded += record.persistent_expanded;
                    cell.total_states_cut += record.states_cut;
                    summary.persistent_reduced += 1;
                    summary.total_expansions += record.expansions;
                    summary.total_sleep_pruned += record.sleep_pruned;
                    summary.total_persistent_expanded += record.persistent_expanded;
                    summary.total_states_cut += record.states_cut;
                } else if record.reduction == "fallback-off" {
                    cell.sleep_fallbacks += 1;
                    summary.sleep_fallbacks += 1;
                }
            }
            if record.mode == "adversary-search" {
                cell.searched += 1;
                summary.searched += 1;
                cell.search_target = cell.search_target.max(record.target_registers);
                cell.max_witness_depth = cell.max_witness_depth.max(record.witness_depth);
                cell.max_registers_covered =
                    cell.max_registers_covered.max(record.registers_covered);
                cell.max_witness_registers =
                    cell.max_witness_registers.max(record.witness_registers);
                cell.max_explored_states = cell.max_explored_states.max(record.explored_states);
                cell.max_explored_depth = cell.max_explored_depth.max(record.explored_depth);
                if record.witness_found {
                    cell.witnesses_found += 1;
                    summary.witnesses_found += 1;
                    if record.verified {
                        summary.witnesses_verified += 1;
                    }
                }
                if record.target_registers > 0 && record.witness_registers < record.target_registers
                {
                    cell.search_misses += 1;
                    summary.search_misses += 1;
                }
            }
            if record.mode == "explore" {
                cell.explored += 1;
                summary.explored += 1;
                cell.max_explored_states = cell.max_explored_states.max(record.explored_states);
                cell.max_explored_depth = cell.max_explored_depth.max(record.explored_depth);
                if record.symmetry == "process-ids" {
                    cell.symmetry_reduced += 1;
                    summary.symmetry_reduced += 1;
                    cell.max_orbit_states = cell.max_orbit_states.max(record.orbit_states);
                    cell.max_full_states_lower_bound = cell
                        .max_full_states_lower_bound
                        .max(record.full_states_lower_bound);
                    summary.total_orbit_states += record.orbit_states;
                    summary.total_full_states_lower_bound += record.full_states_lower_bound;
                } else if record.symmetry == "fallback-off" {
                    cell.symmetry_fallbacks += 1;
                    summary.symmetry_fallbacks += 1;
                }
                if record.backend == "parallel-explore" {
                    cell.parallel_explored += 1;
                    summary.parallel_explored += 1;
                    cell.max_frontier_peak = cell.max_frontier_peak.max(record.frontier_peak);
                    cell.max_approx_bytes = cell.max_approx_bytes.max(record.approx_bytes);
                    summary.max_frontier_peak = summary.max_frontier_peak.max(record.frontier_peak);
                    summary.max_approx_bytes = summary.max_approx_bytes.max(record.approx_bytes);
                }
                if record.verified {
                    cell.verified += 1;
                    summary.verified += 1;
                } else if record.safe() {
                    // Unverified but no violation found: the search was cut
                    // by a budget. (A found violation is a safety violation,
                    // not an exhaustiveness gap.)
                    summary.truncated_explorations += 1;
                } else {
                    cell.explored_violations += 1;
                }
            }
            summary.records += 1;
        }
        summary
    }

    /// `true` when the campaign is free of safety and bound violations.
    pub fn clean(&self) -> bool {
        self.safety_violations == 0 && self.bound_violations == 0
    }

    /// Explore-mode records whose state space was truncated by a budget
    /// before it could be exhausted (and that found no violation — those
    /// count as safety violations instead). Zero for sampled campaigns;
    /// non-zero is an exhaustiveness violation for an explore campaign.
    pub fn exhaustiveness_gaps(&self) -> u64 {
        self.truncated_explorations
    }

    /// Adversary-search records whose best witness fell short of their
    /// register target — the machine failed to re-find the paper's
    /// `n + 2m − k` structure within its budgets. Zero for campaigns
    /// without search records; non-zero fails `sweep summarize` the same
    /// way an exhaustiveness gap does.
    pub fn rediscovery_misses(&self) -> u64 {
        self.search_misses
    }

    /// Renders the summary as an aligned text table. The `coverage` column
    /// distinguishes exhaustively verified cells (`exhaustive`: every
    /// reachable interleaving checked) from sampled ones (`sampled`: zero
    /// violations observed, which is strictly weaker); `TRUNCATED` flags
    /// explorations that hit a budget before exhausting the state space.
    ///
    /// Campaigns with explore-mode records gain `states`/`depth` columns
    /// (maximum states visited and maximum exploration depth per cell);
    /// campaigns with parallel-explore records additionally gain
    /// `frontier`/`mem-MB` columns (peak BFS level width and estimated peak
    /// explorer memory per cell); campaigns with sleep-set-reduced records
    /// gain `expanded`/`pruned`/`por` columns (total expansions performed,
    /// commuting sibling expansions pruned, and the multiplicative factor
    /// `(expanded + pruned) / expanded` per cell — multiplicative on top of
    /// any symmetry reduction); campaigns with threaded records gain
    /// `wall-ms`/`steps/s` columns
    /// (total wall clock, millisecond display of the microsecond totals, and
    /// aggregate throughput per cell); campaigns with adversary-search
    /// records gain `goals`/`target`/`w-regs`/`covered`/`w-depth` columns
    /// (witnesses found per goal searched, the register target, and the best
    /// witness's registers, covering width and depth per cell), with
    /// `MISSED` in the coverage column flagging rediscovery misses.
    pub fn render(&self) -> String {
        let show_explore = self.explored > 0;
        let show_parallel = self.parallel_explored > 0;
        let show_symmetry = self.symmetry_reduced + self.symmetry_fallbacks > 0;
        let show_reduction =
            self.sleep_reduced + self.persistent_reduced + self.sleep_fallbacks > 0;
        let show_threaded = self.threaded_runs > 0;
        let show_serve = self.serve_runs > 0;
        let show_searched = self.searched > 0;
        let mut out = String::new();
        let mut header = format!(
            "{:>3} {:>2} {:>2} {:<24} {:>5} {:>7} {:>7} {:>6} {:>9} {:>9} {:>7} {:>6} {:>6} {:<10}",
            "n",
            "m",
            "k",
            "algorithm",
            "runs",
            "unsafe",
            "starved",
            "crash",
            "max-used",
            "declared",
            "bound",
            "reg",
            "steps",
            "coverage"
        );
        if show_explore {
            let _ = write!(header, " {:>9} {:>6}", "states", "depth");
        }
        if show_parallel {
            let _ = write!(header, " {:>9} {:>8}", "frontier", "mem-MB");
        }
        if show_symmetry {
            let _ = write!(
                header,
                " {:>9} {:>11} {:>6}",
                "orbits", "full-states", "red"
            );
        }
        if show_reduction {
            let _ = write!(header, " {:>10} {:>10} {:>6}", "expanded", "pruned", "por");
        }
        if show_threaded {
            let _ = write!(header, " {:>8} {:>9}", "wall-ms", "steps/s");
        }
        if show_serve {
            let _ = write!(header, " {:>8} {:>8} {:>9}", "p50-us", "p99-us", "ops/s");
        }
        if show_searched {
            let _ = write!(
                header,
                " {:>7} {:>6} {:>6} {:>7} {:>7}",
                "goals", "target", "w-regs", "covered", "w-depth"
            );
        }
        let _ = writeln!(out, "{header}");
        for (key, cell) in &self.cells {
            let algorithm = if key.instances > 1 {
                format!("{} x{}", key.algorithm, key.instances)
            } else {
                key.algorithm.clone()
            };
            let coverage = if cell.explored == 0 && cell.searched > 0 {
                // A search cell: "searched" means every goal found its
                // target (or chased none); MISSED is the loud rediscovery
                // failure.
                if cell.search_misses > 0 {
                    "MISSED"
                } else {
                    "searched"
                }
            } else if cell.explored == 0 {
                "sampled"
            } else if cell.explored_violations > 0 {
                // The exploration found a real counterexample — loud and
                // distinct from a budget truncation (and from a sampled
                // violation in a merged file, which the unsafe column shows).
                "REFUTED"
            } else if cell.verified < cell.explored {
                "TRUNCATED"
            } else if cell.explored == cell.runs {
                "exhaustive"
            } else {
                "mixed"
            };
            let mut row = format!(
                "{:>3} {:>2} {:>2} {:<24} {:>5} {:>7} {:>7} {:>6} {:>9} {:>9} {:>7} {:>6} {:>6} {:<10}",
                key.n,
                key.m,
                key.k,
                algorithm,
                cell.runs,
                cell.safety_violations,
                format!("{}/{}", cell.progress_failures, cell.progress_required),
                cell.total_crashes,
                cell.max_locations_written,
                cell.component_bound,
                if cell.bound_violations == 0 {
                    "ok"
                } else {
                    "VIOL"
                },
                cell.register_bound,
                cell.max_steps_seen,
                coverage,
            );
            if show_explore {
                if cell.explored > 0 {
                    let _ = write!(
                        row,
                        " {:>9} {:>6}",
                        cell.max_explored_states, cell.max_explored_depth
                    );
                } else {
                    let _ = write!(row, " {:>9} {:>6}", "-", "-");
                }
            }
            if show_parallel {
                if cell.parallel_explored > 0 {
                    let _ = write!(
                        row,
                        " {:>9} {:>8.1}",
                        cell.max_frontier_peak,
                        cell.max_approx_bytes as f64 / (1024.0 * 1024.0)
                    );
                } else {
                    let _ = write!(row, " {:>9} {:>8}", "-", "-");
                }
            }
            if show_symmetry {
                if cell.symmetry_reduced > 0 {
                    let _ = write!(
                        row,
                        " {:>9} {:>11} {:>6}",
                        cell.max_orbit_states,
                        format!("\u{2265}{}", cell.max_full_states_lower_bound),
                        reduction_factor(cell.max_full_states_lower_bound, cell.max_orbit_states)
                            .map_or_else(|| "-".into(), |r| format!("{r:.1}x"))
                    );
                } else if cell.symmetry_fallbacks > 0 {
                    let _ = write!(row, " {:>9} {:>11} {:>6}", "-", "fallback", "-");
                } else {
                    let _ = write!(row, " {:>9} {:>11} {:>6}", "-", "-", "-");
                }
            }
            if show_reduction {
                if cell.sleep_reduced + cell.persistent_reduced > 0 {
                    let _ = write!(
                        row,
                        " {:>10} {:>10} {:>6}",
                        cell.total_expansions,
                        cell.total_sleep_pruned,
                        por_factor(cell.total_expansions, cell.total_sleep_pruned)
                            .map_or_else(|| "-".into(), |r| format!("{r:.1}x"))
                    );
                } else if cell.sleep_fallbacks > 0 {
                    let _ = write!(row, " {:>10} {:>10} {:>6}", "-", "fallback", "-");
                } else {
                    let _ = write!(row, " {:>10} {:>10} {:>6}", "-", "-", "-");
                }
            }
            if show_threaded {
                if cell.threaded_runs > 0 {
                    let _ = write!(
                        row,
                        " {:>8.3} {:>9}",
                        cell.total_wall_us as f64 / 1000.0,
                        steps_per_sec(cell.threaded_steps, cell.total_wall_us)
                            .map_or_else(|| "-".into(), |r| r.to_string())
                    );
                } else {
                    let _ = write!(row, " {:>8} {:>9}", "-", "-");
                }
            }
            if show_serve {
                if cell.serve_runs > 0 {
                    let _ = write!(
                        row,
                        " {:>8} {:>8} {:>9}",
                        cell.max_p50_us, cell.max_p99_us, cell.max_ops_per_sec
                    );
                } else {
                    let _ = write!(row, " {:>8} {:>8} {:>9}", "-", "-", "-");
                }
            }
            if show_searched {
                if cell.searched > 0 {
                    let _ = write!(
                        row,
                        " {:>7} {:>6} {:>6} {:>7} {:>7}",
                        format!("{}/{}", cell.witnesses_found, cell.searched),
                        cell.search_target,
                        cell.max_witness_registers,
                        cell.max_registers_covered,
                        cell.max_witness_depth
                    );
                } else {
                    let _ = write!(
                        row,
                        " {:>7} {:>6} {:>6} {:>7} {:>7}",
                        "-", "-", "-", "-", "-"
                    );
                }
            }
            let _ = writeln!(out, "{row}");
        }
        let _ = writeln!(
            out,
            "total: {} records, {} safety violations, {} bound violations, {} progress failures, \
             {} crashes injected",
            self.records,
            self.safety_violations,
            self.bound_violations,
            self.progress_failures,
            self.total_crashes
        );
        if self.explored > 0 {
            let _ = writeln!(
                out,
                "exploration: {} cells explored, {} exhaustively verified, {} truncated",
                self.explored,
                self.verified,
                self.exhaustiveness_gaps()
            );
        }
        if self.parallel_explored > 0 {
            let _ = writeln!(
                out,
                "parallel explore: {} cells on the work-stealing explorer, \
                 peak BFS level width {} states, ~{:.1} MB peak explorer memory",
                self.parallel_explored,
                self.max_frontier_peak,
                self.max_approx_bytes as f64 / (1024.0 * 1024.0)
            );
        }
        if self.symmetry_reduced + self.symmetry_fallbacks > 0 {
            let rate =
                reduction_factor(self.total_full_states_lower_bound, self.total_orbit_states)
                    .map_or_else(|| "-".into(), |r| format!("{r:.1}x"));
            let _ = writeln!(
                out,
                "symmetry: {} orbit-reduced explorations ({} fell back), \
                 {} orbit states standing for \u{2265}{} full states ({rate} reduction)",
                self.symmetry_reduced,
                self.symmetry_fallbacks,
                self.total_orbit_states,
                self.total_full_states_lower_bound
            );
        }
        if self.sleep_reduced + self.persistent_reduced + self.sleep_fallbacks > 0 {
            let rate = por_factor(self.total_expansions, self.total_sleep_pruned)
                .map_or_else(|| "-".into(), |r| format!("{r:.1}x"));
            let _ = writeln!(
                out,
                "sleep sets: {} reduced runs ({} fell back), {} expansions with \
                 {} commuting siblings pruned ({rate} reduction)",
                self.sleep_reduced + self.persistent_reduced,
                self.sleep_fallbacks,
                self.total_expansions,
                self.total_sleep_pruned
            );
        }
        if self.persistent_reduced > 0 {
            let _ = writeln!(
                out,
                "persistent sets: {} reduced runs, {} expansions drawn from \
                 persistent/backtrack sets, {} enabled transitions cut \
                 (whole subtrees, not just commuting siblings)",
                self.persistent_reduced, self.total_persistent_expanded, self.total_states_cut
            );
        }
        if self.threaded_runs > 0 {
            let rate = steps_per_sec(self.threaded_steps, self.total_wall_us)
                .map_or_else(|| "-".into(), |r| format!("~{r}"));
            let _ = writeln!(
                out,
                "threaded: {} runs on real threads, {} total steps in {:.3} ms wall clock \
                 ({rate} steps/s)",
                self.threaded_runs,
                self.threaded_steps,
                self.total_wall_us as f64 / 1000.0
            );
        }
        if self.serve_runs > 0 {
            let _ = writeln!(
                out,
                "serve: {} service runs, {} proposals in {} batches, \
                 worst p50 {} us, worst p99 {} us, peak {} ops/s",
                self.serve_runs,
                self.serve_proposals,
                self.serve_batches,
                self.max_p50_us,
                self.max_p99_us,
                self.max_ops_per_sec
            );
        }
        if self.searched > 0 {
            let _ = writeln!(
                out,
                "adversary search: {} searches, {} witnesses found ({} replay-verified), \
                 {} rediscovery misses",
                self.searched, self.witnesses_found, self.witnesses_verified, self.search_misses
            );
        }
        out
    }
}

/// The reduction factor `full_states / orbit_states`; `None` when no orbit
/// was counted.
fn reduction_factor(full_states: u64, orbit_states: u64) -> Option<f64> {
    if orbit_states == 0 {
        return None;
    }
    Some(full_states as f64 / orbit_states as f64)
}

/// The sleep-set reduction factor `(expansions + pruned) / expansions` —
/// how much larger the expansion count would have been without pruning;
/// `None` when no expansion was counted.
fn por_factor(expansions: u64, pruned: u64) -> Option<f64> {
    if expansions == 0 {
        return None;
    }
    Some((expansions + pruned) as f64 / expansions as f64)
}

/// Aggregate steps-per-second over `wall_us` microseconds; `None` when the
/// wall clock never resolved (throughput would be meaningless, not huge).
fn steps_per_sec(steps: u64, wall_us: u64) -> Option<u64> {
    if wall_us == 0 {
        return None;
    }
    Some(steps.saturating_mul(1_000_000) / wall_us)
}

/// One scenario whose measurements changed between two result files.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Scenario identity ([`SweepRecord::key`]).
    pub key: String,
    /// Human-readable description of what changed.
    pub change: String,
    /// `true` if the change is a regression (newly unsafe, newly over
    /// bound, or newly starving), not just a measurement drift.
    pub regression: bool,
}

/// The comparison of two result files.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Scenario keys present only in the old file.
    pub removed: Vec<String>,
    /// Scenario keys present only in the new file.
    pub added: Vec<String>,
    /// Scenarios present in both with differing results.
    pub changed: Vec<DiffEntry>,
    /// Scenarios identical in both files.
    pub unchanged: u64,
}

impl DiffReport {
    /// `true` if any changed scenario is a regression.
    pub fn has_regressions(&self) -> bool {
        self.changed.iter().any(|entry| entry.regression)
    }

    /// Renders the report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for key in &self.removed {
            let _ = writeln!(out, "- only in old: {key}");
        }
        for key in &self.added {
            let _ = writeln!(out, "+ only in new: {key}");
        }
        for entry in &self.changed {
            let marker = if entry.regression { "!" } else { "~" };
            let _ = writeln!(out, "{marker} {}: {}", entry.key, entry.change);
        }
        let regressions = self.changed.iter().filter(|e| e.regression).count();
        let _ = writeln!(
            out,
            "diff: {} unchanged, {} changed ({} regressions), {} added, {} removed",
            self.unchanged,
            self.changed.len(),
            regressions,
            self.added.len(),
            self.removed.len()
        );
        out
    }
}

fn describe_changes(old: &SweepRecord, new: &SweepRecord) -> (String, bool) {
    let mut changes = Vec::new();
    let mut regression = false;
    if old.safe() != new.safe() {
        changes.push(format!("safe {} -> {}", old.safe(), new.safe()));
        regression |= !new.safe();
    }
    if old.bound_ok != new.bound_ok {
        changes.push(format!("bound_ok {} -> {}", old.bound_ok, new.bound_ok));
        regression |= !new.bound_ok;
    }
    if old.progress_ok() != new.progress_ok() {
        changes.push(format!(
            "progress_ok {} -> {}",
            old.progress_ok(),
            new.progress_ok()
        ));
        regression |= !new.progress_ok();
    }
    if old.locations_written != new.locations_written {
        changes.push(format!(
            "locations {} -> {}",
            old.locations_written, new.locations_written
        ));
    }
    if old.steps != new.steps {
        changes.push(format!("steps {} -> {}", old.steps, new.steps));
    }
    if old.decisions != new.decisions {
        changes.push(format!("decisions {} -> {}", old.decisions, new.decisions));
    }
    if old.decided_fingerprint != new.decided_fingerprint {
        changes.push(format!(
            "decided_fingerprint {:#x} -> {:#x}",
            old.decided_fingerprint, new.decided_fingerprint
        ));
    }
    if old.witness_registers != new.witness_registers {
        changes.push(format!(
            "witness_registers {} -> {}",
            old.witness_registers, new.witness_registers
        ));
        // Finding a smaller witness than before means the search lost
        // ground on the bound — gate on it like a safety change.
        regression |= new.witness_registers < old.witness_registers;
    }
    if old.witness_fingerprint != new.witness_fingerprint {
        changes.push(format!(
            "witness_fingerprint {:#x} -> {:#x}",
            old.witness_fingerprint, new.witness_fingerprint
        ));
    }
    (changes.join(", "), regression)
}

/// Compares two result files scenario-by-scenario (keyed by
/// [`SweepRecord::key`]; duplicate keys within one file keep the last
/// occurrence).
pub fn diff(old: &[SweepRecord], new: &[SweepRecord]) -> DiffReport {
    let old_by_key: BTreeMap<String, &SweepRecord> = old.iter().map(|r| (r.key(), r)).collect();
    let new_by_key: BTreeMap<String, &SweepRecord> = new.iter().map(|r| (r.key(), r)).collect();
    let mut report = DiffReport::default();
    for (key, old_record) in &old_by_key {
        match new_by_key.get(key) {
            None => report.removed.push(key.clone()),
            Some(new_record) => {
                let (change, regression) = describe_changes(old_record, new_record);
                if change.is_empty() {
                    report.unchanged += 1;
                } else {
                    report.changed.push(DiffEntry {
                        key: key.clone(),
                        change,
                        regression,
                    });
                }
            }
        }
    }
    for key in new_by_key.keys() {
        if !old_by_key.contains_key(key) {
            report.added.push(key.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seed: u64) -> SweepRecord {
        SweepRecord {
            campaign: "t".into(),
            scenario: seed,
            n: 6,
            m: 2,
            k: 3,
            algorithm: "figure3-oneshot".into(),
            instances: 1,
            adversary: "obstruction:50".into(),
            mode: "sample".into(),
            backend: "scheduled".into(),
            contention_steps: 300,
            survivors: 2,
            crashes: 0,
            seed,
            workload: "distinct".into(),
            max_steps: 100,
            steps: 80,
            stop: "scheduler-exhausted".into(),
            validity_ok: true,
            agreement_ok: true,
            progress_required: true,
            survivors_decided: true,
            decisions: 6,
            distinct_outputs_max: 3,
            total_ops: 160,
            locations_written: 7,
            registers_written: 0,
            components_written: 7,
            register_bound: 6,
            component_bound: 7,
            bound_ok: true,
            explored_states: 0,
            explored_depth: 0,
            verified: false,
            frontier_peak: 0,
            seen_entries: 0,
            approx_bytes: 0,
            symmetry: "off".into(),
            orbit_states: 0,
            full_states_lower_bound: 0,
            reduction: "off".into(),
            expansions: 0,
            sleep_pruned: 0,
            persistent_expanded: 0,
            states_cut: 0,
            wall_us: 0,
            steps_per_sec: 0,
            proposals: 0,
            batches: 0,
            p50_us: 0,
            p90_us: 0,
            p99_us: 0,
            p999_us: 0,
            ops_per_sec: 0,
            decided_fingerprint: 0,
            goal: String::new(),
            target_registers: 0,
            witness_found: false,
            witness_depth: 0,
            registers_covered: 0,
            witness_registers: 0,
            witness_schedule: String::new(),
            witness_fingerprint: 0,
        }
    }

    fn search_record(seed: u64, goal: &str) -> SweepRecord {
        let mut searched = record(seed);
        searched.adversary = format!("adversary-search:{goal}");
        searched.mode = "adversary-search".into();
        searched.backend = "adversary-search".into();
        searched.stop = "target-reached".into();
        searched.seed = 0;
        searched.explored_states = 300;
        searched.explored_depth = 7;
        searched.verified = true;
        searched.goal = goal.into();
        searched.target_registers = 7;
        searched.witness_found = true;
        searched.witness_depth = 7;
        searched.registers_covered = 4;
        searched.witness_registers = 7;
        searched.witness_schedule = "0.1.2.0.1.2.3".into();
        searched.witness_fingerprint = 0xBEEF;
        searched
    }

    #[test]
    fn parallel_frontier_stats_are_labelled_as_bfs_level_width() {
        // Regression: `frontier_peak` used to be rendered with wording that
        // conflated the serial explorer's DFS stack depth with the parallel
        // explorer's widest BFS level. Only parallel records carry the
        // statistic, and the summary must name the quantity it aggregates.
        let mut parallel = record(0);
        parallel.adversary = "exhaustive".into();
        parallel.mode = "explore".into();
        parallel.backend = "parallel-explore".into();
        parallel.explored_states = 200;
        parallel.frontier_peak = 44;
        parallel.seen_entries = 200;
        parallel.approx_bytes = 3 * 1024 * 1024;
        parallel.verified = true;
        let summary = Summary::of(&[parallel]);
        assert_eq!(summary.max_frontier_peak, 44);
        let rendered = summary.render();
        assert!(
            rendered.contains("peak BFS level width 44 states"),
            "{rendered}"
        );
        assert!(!rendered.contains("peak frontier"), "{rendered}");

        // Serial explore records carry no frontier statistic at all, so the
        // aggregate stays zero instead of absorbing a DFS stack depth.
        let mut serial = record(1);
        serial.adversary = "exhaustive".into();
        serial.mode = "explore".into();
        serial.backend = "explore".into();
        serial.explored_states = 200;
        serial.verified = true;
        let summary = Summary::of(&[serial]);
        assert_eq!(summary.max_frontier_peak, 0);
        assert!(!summary.render().contains("BFS level width"));
    }

    #[test]
    fn symmetry_reduced_cells_report_orbits_and_reduction() {
        let mut reduced = record(0);
        reduced.adversary = "exhaustive".into();
        reduced.mode = "explore".into();
        reduced.backend = "explore".into();
        reduced.symmetry = "process-ids".into();
        reduced.explored_states = 100;
        reduced.orbit_states = 100;
        reduced.full_states_lower_bound = 400;
        reduced.verified = true;
        let mut fallback = record(1);
        fallback.n = 8; // a different cell
        fallback.adversary = "exhaustive".into();
        fallback.mode = "explore".into();
        fallback.symmetry = "fallback-off".into();
        fallback.explored_states = 50;
        fallback.verified = true;
        let summary = Summary::of(&[reduced, fallback]);
        assert_eq!(summary.symmetry_reduced, 1);
        assert_eq!(summary.symmetry_fallbacks, 1);
        assert_eq!(summary.total_orbit_states, 100);
        assert_eq!(summary.total_full_states_lower_bound, 400);
        let rendered = summary.render();
        assert!(rendered.contains("orbits"), "{rendered}");
        assert!(rendered.contains("4.0x"), "{rendered}");
        assert!(rendered.contains("fallback"), "{rendered}");
        assert!(
            rendered.contains("symmetry: 1 orbit-reduced explorations (1 fell back)"),
            "{rendered}"
        );
        // Symmetry-free campaigns do not grow the columns.
        let plain = Summary::of(&[record(0)]).render();
        assert!(!plain.contains("orbits"), "{plain}");
    }

    #[test]
    fn sleep_set_reduced_cells_report_expansions_and_pruning() {
        let mut reduced = record(0);
        reduced.adversary = "exhaustive".into();
        reduced.mode = "explore".into();
        reduced.backend = "explore".into();
        reduced.reduction = "sleep-set".into();
        reduced.explored_states = 100;
        reduced.expansions = 200;
        reduced.sleep_pruned = 400;
        reduced.verified = true;
        let mut fallback = record(1);
        fallback.n = 8; // a different cell
        fallback.adversary = "exhaustive".into();
        fallback.mode = "explore".into();
        fallback.reduction = "fallback-off".into();
        fallback.explored_states = 50;
        fallback.verified = true;
        let summary = Summary::of(&[reduced, fallback]);
        assert_eq!(summary.sleep_reduced, 1);
        assert_eq!(summary.sleep_fallbacks, 1);
        assert_eq!(summary.total_expansions, 200);
        assert_eq!(summary.total_sleep_pruned, 400);
        let rendered = summary.render();
        assert!(rendered.contains("expanded"), "{rendered}");
        assert!(rendered.contains("pruned"), "{rendered}");
        // (200 + 400) / 200 = 3.0x.
        assert!(rendered.contains("3.0x"), "{rendered}");
        assert!(rendered.contains("fallback"), "{rendered}");
        assert!(
            rendered.contains("sleep sets: 1 reduced runs (1 fell back)"),
            "{rendered}"
        );
        // Search records carry the statistic too.
        let mut searched = search_record(2, "covering");
        searched.reduction = "sleep-set".into();
        searched.expansions = 50;
        searched.sleep_pruned = 150;
        let summary = Summary::of(&[searched]);
        assert_eq!(summary.sleep_reduced, 1);
        assert_eq!(summary.total_expansions, 50);
        assert!(summary.render().contains("4.0x"), "{}", summary.render());
        // Reduction-free campaigns do not grow the columns.
        let plain = Summary::of(&[record(0)]).render();
        assert!(!plain.contains("expanded"), "{plain}");
        assert!(!plain.contains("sleep sets:"), "{plain}");
    }

    #[test]
    fn summary_aggregates_per_cell() {
        let mut bad = record(2);
        bad.agreement_ok = false;
        bad.locations_written = 9;
        bad.bound_ok = false;
        let records = vec![record(0), record(1), bad];
        let summary = Summary::of(&records);
        assert_eq!(summary.records, 3);
        assert_eq!(summary.safety_violations, 1);
        assert_eq!(summary.bound_violations, 1);
        assert!(!summary.clean());
        assert_eq!(summary.cells.len(), 1);
        let cell = summary.cells.values().next().unwrap();
        assert_eq!(cell.runs, 3);
        assert_eq!(cell.max_locations_written, 9);
        assert_eq!(cell.progress_required, 3);
        assert_eq!(cell.progress_failures, 0);
        let rendered = summary.render();
        assert!(rendered.contains("figure3-oneshot"));
        assert!(rendered.contains("VIOL"));
    }

    #[test]
    fn repeated_variants_with_different_instances_stay_distinct_cells() {
        let mut two = record(0);
        two.algorithm = "figure4-repeated".into();
        two.instances = 2;
        let mut three = record(1);
        three.algorithm = "figure4-repeated".into();
        three.instances = 3;
        three.component_bound = 9;
        let summary = Summary::of(&[two, three]);
        assert_eq!(summary.cells.len(), 2, "instance counts were merged");
        let bounds: Vec<usize> = summary.cells.values().map(|c| c.component_bound).collect();
        assert_eq!(bounds, vec![7, 9]);
        assert!(summary.render().contains("figure4-repeated x2"));
        assert!(summary.render().contains("figure4-repeated x3"));
    }

    #[test]
    fn clean_summary_renders_ok() {
        let summary = Summary::of(&[record(0)]);
        assert!(summary.clean());
        assert!(summary.render().contains("0 safety violations"));
        // Pure sampling: no exploration line, cells read "sampled".
        assert!(summary.render().contains("sampled"));
        assert!(!summary.render().contains("exploration:"));
    }

    #[test]
    fn crash_accounting_aggregates_per_cell() {
        let mut crashed = record(1);
        crashed.adversary = "crash:obstruction:50:2".into();
        crashed.crashes = 2;
        let mut crashed_more = record(2);
        crashed_more.adversary = "crash:obstruction:50:2".into();
        crashed_more.crashes = 1;
        let summary = Summary::of(&[record(0), crashed, crashed_more]);
        assert_eq!(summary.total_crashes, 3);
        let cell = summary.cells.values().next().unwrap();
        assert_eq!(cell.crashed_runs, 2);
        assert_eq!(cell.total_crashes, 3);
        assert!(summary.render().contains("3 crashes injected"));
    }

    #[test]
    fn exhaustively_verified_cells_are_distinguished_from_sampled() {
        let mut explored = record(0);
        explored.adversary = "exhaustive".into();
        explored.mode = "explore".into();
        explored.backend = "explore".into();
        explored.explored_states = 999;
        explored.explored_depth = 55;
        explored.verified = true;
        let mut sampled = record(0);
        sampled.n = 8; // a different cell
        let summary = Summary::of(&[explored, sampled]);
        assert_eq!(summary.explored, 1);
        assert_eq!(summary.verified, 1);
        assert_eq!(summary.exhaustiveness_gaps(), 0);
        let cell = summary.cells.values().next().unwrap();
        assert_eq!(cell.max_explored_states, 999);
        assert_eq!(cell.max_explored_depth, 55);
        let rendered = summary.render();
        assert!(rendered.contains("exhaustive"), "{rendered}");
        assert!(rendered.contains("sampled"), "{rendered}");
        assert!(rendered.contains("exploration: 1 cells explored, 1 exhaustively verified"));
        // The explore columns show states and depth for the explored cell
        // and dashes for the sampled one.
        assert!(rendered.contains("states"), "{rendered}");
        assert!(rendered.contains("depth"), "{rendered}");
        assert!(rendered.contains("999"), "{rendered}");
        assert!(rendered.contains("55"), "{rendered}");
        assert!(rendered.contains('-'), "{rendered}");
    }

    #[test]
    fn threaded_cells_report_wall_clock_and_throughput() {
        let mut threaded = record(0);
        threaded.adversary = "hardware".into();
        threaded.backend = "threaded".into();
        threaded.steps = 5000;
        threaded.wall_us = 10_000;
        threaded.steps_per_sec = 500_000;
        let mut more = record(1);
        more.adversary = "hardware".into();
        more.backend = "threaded".into();
        more.steps = 3000;
        more.wall_us = 10_000;
        let mut sampled = record(2);
        sampled.n = 8; // a different cell
        let summary = Summary::of(&[threaded, more, sampled]);
        assert_eq!(summary.threaded_runs, 2);
        assert_eq!(summary.total_wall_us, 20_000);
        assert_eq!(summary.threaded_steps, 8000);
        let cell = summary.cells.values().next().unwrap();
        assert_eq!(cell.threaded_runs, 2);
        assert_eq!(cell.total_wall_us, 20_000);
        let rendered = summary.render();
        assert!(rendered.contains("wall-ms"), "{rendered}");
        assert!(rendered.contains("steps/s"), "{rendered}");
        // 8000 steps over 20 ms = 400000 steps/s.
        assert!(rendered.contains("400000"), "{rendered}");
        assert!(
            rendered.contains("threaded: 2 runs on real threads"),
            "{rendered}"
        );
        // Campaigns without threaded records do not grow the columns.
        let plain = Summary::of(&[record(0)]).render();
        assert!(!plain.contains("wall-ms"), "{plain}");
    }

    #[test]
    fn serve_cells_report_latency_percentiles_and_throughput() {
        let mut served = record(0);
        served.algorithm = "figure4-repeated".into();
        served.adversary = "open-loop".into();
        served.mode = "serve".into();
        served.backend = "serve".into();
        served.proposals = 4000;
        served.batches = 500;
        served.p50_us = 1_050;
        served.p99_us = 1_180;
        served.ops_per_sec = 40_000;
        let mut slower = record(1);
        slower.algorithm = "figure4-repeated".into();
        slower.adversary = "open-loop".into();
        slower.mode = "serve".into();
        slower.backend = "serve".into();
        slower.proposals = 4000;
        slower.batches = 600;
        slower.p50_us = 1_100;
        slower.p99_us = 1_300;
        slower.ops_per_sec = 38_000;
        let mut sampled = record(2);
        sampled.n = 8; // a different cell
        let summary = Summary::of(&[served, slower, sampled]);
        assert_eq!(summary.serve_runs, 2);
        assert_eq!(summary.serve_proposals, 8000);
        assert_eq!(summary.serve_batches, 1100);
        assert_eq!(summary.max_p50_us, 1_100);
        assert_eq!(summary.max_p99_us, 1_300);
        assert_eq!(summary.max_ops_per_sec, 40_000);
        let cell = summary.cells.values().next().unwrap();
        assert_eq!(cell.serve_runs, 2);
        assert_eq!(cell.max_p99_us, 1_300);
        let rendered = summary.render();
        assert!(rendered.contains("p50-us"), "{rendered}");
        assert!(rendered.contains("p99-us"), "{rendered}");
        assert!(rendered.contains("ops/s"), "{rendered}");
        assert!(rendered.contains("1300"), "{rendered}");
        assert!(
            rendered.contains("serve: 2 service runs, 8000 proposals in 1100 batches"),
            "{rendered}"
        );
        // The sampled cell fills the serve columns with dashes.
        assert!(rendered.contains('-'), "{rendered}");
        // Campaigns without serve records do not grow the columns.
        let plain = Summary::of(&[record(0)]).render();
        assert!(!plain.contains("p50-us"), "{plain}");
        assert!(!plain.contains("serve:"), "{plain}");
    }

    #[test]
    fn adversary_search_cells_report_witnesses_and_rediscovery() {
        let covering = search_record(0, "covering");
        let block_write = search_record(1, "block-write");
        let mut sampled = record(2);
        sampled.n = 8; // a different cell
        let summary = Summary::of(&[covering, block_write, sampled]);
        assert_eq!(summary.searched, 2);
        assert_eq!(summary.witnesses_found, 2);
        assert_eq!(summary.witnesses_verified, 2);
        assert_eq!(summary.rediscovery_misses(), 0);
        let cell = summary.cells.values().next().unwrap();
        assert_eq!(cell.searched, 2);
        assert_eq!(cell.witnesses_found, 2);
        assert_eq!(cell.search_target, 7);
        assert_eq!(cell.max_witness_registers, 7);
        assert_eq!(cell.max_registers_covered, 4);
        assert_eq!(cell.max_witness_depth, 7);
        let rendered = summary.render();
        for column in ["goals", "target", "w-regs", "covered", "w-depth"] {
            assert!(rendered.contains(column), "{column} missing: {rendered}");
        }
        assert!(rendered.contains("2/2"), "{rendered}");
        assert!(rendered.contains("searched"), "{rendered}");
        assert!(
            rendered.contains(
                "adversary search: 2 searches, 2 witnesses found (2 replay-verified), \
                 0 rediscovery misses"
            ),
            "{rendered}"
        );
        // The sampled cell fills the search columns with dashes.
        assert!(rendered.contains('-'), "{rendered}");
        // Search-free campaigns do not grow the columns.
        let plain = Summary::of(&[record(0)]).render();
        assert!(!plain.contains("w-regs"), "{plain}");
        assert!(!plain.contains("adversary search:"), "{plain}");
    }

    #[test]
    fn rediscovery_misses_are_loud_but_distinct_from_safety() {
        // Best witness fell short of the target: a rediscovery miss. The
        // campaign is still "clean" (no safety/bound violation) — the gate
        // on misses is separate, like exhaustiveness gaps.
        let mut short = search_record(0, "covering");
        short.stop = "state-space-exhausted".into();
        short.witness_registers = 5;
        let summary = Summary::of(&[short]);
        assert!(summary.clean());
        assert_eq!(summary.rediscovery_misses(), 1);
        let rendered = summary.render();
        assert!(rendered.contains("MISSED"), "{rendered}");
        assert!(rendered.contains("1 rediscovery misses"), "{rendered}");
        // An untargeted probe search cannot miss.
        let mut probe = search_record(0, "covering");
        probe.target_registers = 0;
        probe.witness_registers = 5;
        assert_eq!(Summary::of(&[probe]).rediscovery_misses(), 0);
    }

    #[test]
    fn search_diffs_flag_witness_regressions() {
        let old = search_record(0, "covering");
        let mut smaller = old.clone();
        smaller.witness_registers = 5;
        smaller.witness_fingerprint = 0x1234;
        let report = diff(std::slice::from_ref(&old), &[smaller]);
        assert_eq!(report.changed.len(), 1);
        assert!(report.has_regressions(), "{report:?}");
        assert!(
            report.changed[0]
                .change
                .contains("witness_registers 7 -> 5"),
            "{report:?}"
        );
        // A different but equally large witness is drift, not a regression.
        let mut moved = old.clone();
        moved.witness_fingerprint = 0x9999;
        let report = diff(&[old], &[moved]);
        assert_eq!(report.changed.len(), 1);
        assert!(!report.has_regressions(), "{report:?}");
    }

    #[test]
    fn serve_diffs_flag_decided_log_changes() {
        let mut old = record(0);
        old.mode = "serve".into();
        old.backend = "serve".into();
        old.decided_fingerprint = 0x1111;
        let mut new = old.clone();
        new.decided_fingerprint = 0x2222;
        let report = diff(&[old.clone()], &[new]);
        assert_eq!(report.changed.len(), 1);
        assert!(
            report.changed[0].change.contains("decided_fingerprint"),
            "{report:?}"
        );
        // Identical logs diff clean.
        let same = diff(&[old.clone()], &[old]);
        assert_eq!(same.unchanged, 1);
    }

    #[test]
    fn unresolved_wall_clocks_render_as_dashes_not_infinity() {
        let mut fast = record(0);
        fast.adversary = "hardware".into();
        fast.backend = "threaded".into();
        fast.steps = 5000;
        fast.wall_us = 0;
        let summary = Summary::of(&[fast]);
        assert_eq!(steps_per_sec(5000, 0), None);
        assert!(
            summary.render().contains("- steps/s"),
            "{}",
            summary.render()
        );
    }

    #[test]
    fn violation_finding_explorations_are_refuted_not_truncated() {
        let mut refuted = record(0);
        refuted.adversary = "exhaustive".into();
        refuted.mode = "explore".into();
        refuted.stop = "violation-found".into();
        refuted.agreement_ok = false;
        refuted.explored_states = 500;
        refuted.verified = false;
        let summary = Summary::of(&[refuted]);
        // A found counterexample is a safety violation, not a budget gap.
        assert_eq!(summary.safety_violations, 1);
        assert_eq!(summary.exhaustiveness_gaps(), 0);
        assert!(!summary.clean());
        let rendered = summary.render();
        assert!(rendered.contains("REFUTED"), "{rendered}");
        assert!(!rendered.contains("TRUNCATED"), "{rendered}");
    }

    #[test]
    fn sampled_violations_in_merged_cells_do_not_read_as_refuted() {
        // Merge workflow: a sampled unsafe record and a verified exploration
        // of the same cell in one file. The violation must show in the
        // unsafe column, not be attributed to the explorer.
        let mut unsafe_sampled = record(0);
        unsafe_sampled.agreement_ok = false;
        let mut explored = record(1);
        explored.adversary = "exhaustive".into();
        explored.mode = "explore".into();
        explored.explored_states = 100;
        explored.verified = true;
        let summary = Summary::of(&[unsafe_sampled, explored]);
        assert_eq!(summary.safety_violations, 1);
        assert_eq!(summary.exhaustiveness_gaps(), 0);
        let rendered = summary.render();
        assert!(!rendered.contains("REFUTED"), "{rendered}");
        assert!(rendered.contains("mixed"), "{rendered}");
    }

    #[test]
    fn truncated_explorations_show_as_gaps() {
        let mut truncated = record(0);
        truncated.adversary = "exhaustive".into();
        truncated.mode = "explore".into();
        truncated.explored_states = 10;
        truncated.verified = false;
        let summary = Summary::of(&[truncated]);
        assert_eq!(summary.exhaustiveness_gaps(), 1);
        assert!(summary.render().contains("TRUNCATED"));
        // A truncated exploration without a violation is still "clean" —
        // the gap is reported separately so callers can gate on it.
        assert!(summary.clean());
    }

    #[test]
    fn diff_classifies_regressions_and_drift() {
        let old = vec![record(0), record(1), record(2)];
        let mut drifted = record(1);
        drifted.steps = 90;
        let mut regressed = record(2);
        regressed.agreement_ok = false;
        let mut added = record(9);
        added.seed = 9;
        let new = vec![record(0), drifted, regressed, added];

        let report = diff(&old, &new);
        assert_eq!(report.unchanged, 1);
        assert_eq!(report.added.len(), 1);
        assert!(report.removed.is_empty());
        assert_eq!(report.changed.len(), 2);
        assert!(report.has_regressions());
        let regressions: Vec<_> = report.changed.iter().filter(|e| e.regression).collect();
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].change.contains("safe true -> false"));
        assert!(report.render().contains("1 regressions"));
    }

    #[test]
    fn identical_files_diff_clean() {
        let records = vec![record(0), record(1)];
        let report = diff(&records, &records);
        assert_eq!(report.unchanged, 2);
        assert!(report.changed.is_empty());
        assert!(!report.has_regressions());
    }
}
