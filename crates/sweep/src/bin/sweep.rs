//! The `sweep` CLI: run campaigns, summarize result files, diff two runs.
//!
//! ```text
//! sweep run [--spec FILE] [--name NAME] [--n 4..8] [--m 1,2] [--k 2,3]
//!           [--params N/M/K;...] [--algorithms all|LIST] [--adversaries LIST]
//!           [--backend scheduled|threaded[,BOTH]] [--seeds N|LIST]
//!           [--campaign-seed S] [--workload SPEC] [--max-steps N]
//!           [--shard I/N] [--threads N] [--out FILE] [--progress N]
//!           [--spill on|off] [--max-resident-mb N] [--checkpoint DIR]
//! sweep serve [--n N] [--m M] [--k K] [--shards N] [--batch-max N]
//!             [--clients N] [--rate N] [--duration N] [--clock MODE]
//!             [--workload SPEC] [--seed S] [--max-steps N]
//! sweep summarize FILE
//! sweep verify FILE
//! sweep diff OLD NEW
//! sweep merge [--out FILE] SHARD...
//! sweep lint [--allow FILE] ROOT...
//! ```
//!
//! `run` writes JSONL to `--out` (default stdout) and prints the outcome to
//! stderr. `summarize` exits non-zero if the file contains safety or bound
//! violations, if an exhaustive exploration was truncated before its
//! state space was exhausted, or if an adversary search missed its register
//! target — the CI gate. `verify` independently replays every witness in an
//! adversary-search result file through the shared replay verifier. `diff`
//! exits non-zero on regressions (a scenario newly unsafe, newly over its
//! bound, newly starving, or a search finding a smaller witness). `merge`
//! reassembles shard files produced with `--shard` into the stream an
//! unsharded run would have written.

use sa_sweep::{
    diff, lint_source, merge_shards, parse_allowlist, parse_jsonl, run_campaign, AdversarySpec,
    BackendSpec, CampaignMode, CampaignSpec, EngineConfig, ParamsSpec, SearchTarget, Summary,
    WorkloadSpec,
};
use set_agreement::runtime::{
    ReductionMode, SearchGoal, ServeClock, ServeLoad, ServeOptions, SymmetryMode, Workload,
};
use set_agreement::search::{Certificate, VerifyError, Witness};
use set_agreement::{verify_witness, Algorithm, Backend, ExecutionPlan, Executor};
use std::process::ExitCode;

const USAGE: &str = "\
usage:
  sweep run [options]         expand and execute a campaign, emit JSONL
  sweep serve [options]       run the set-agreement service once, print a
                              latency and throughput report
  sweep summarize FILE        aggregate a result file; exit 1 on violations
  sweep verify FILE           replay every adversary-search witness in a
                              result file; exit 1 if any fails verification
  sweep diff OLD NEW          compare result files; exit 1 on regressions
  sweep merge [--out FILE] SHARD...
                              merge sharded result files by scenario index
  sweep lint [--allow FILE] ROOT...
                              scan Rust sources under each ROOT for
                              determinism hazards (iteration over hash-keyed
                              collections, unstable std hashers, ambient
                              clock reads, thread identity); exit 1 on any
                              finding not suppressed by the `rule
                              path-suffix` allowlist

run options:
  --spec FILE          load a `key = value` campaign spec, then apply flags
  --name NAME          campaign name embedded in records
  --n, --m, --k LIST   grid axes: `4`, `4,6`, `4..8` (inclusive)
  --params LIST        explicit cells `n/m/k;n/m/k;...` (replaces the grid)
  --algorithms LIST    `all`, `all:INSTANCES`, or labels (`oneshot,
                       repeated:3, anon-oneshot, anon-repeated, wide,
                       fullinfo`, full figure labels also accepted)
  --adversaries LIST   `round-robin, random, solo, bursts:LEN,
                       obstruction[:FACTOR[:SURVIVORS]]` (factor x n steps
                       of contention; survivors default to the cell's m),
                       or `crash:<inner>:<F>` wrapping any of the former
                       with up to F seed-derived crash failures per run
  --backend LIST       `scheduled` (default), `threaded`, or both to make
                       the execution backend a grid axis. `threaded` runs
                       one OS thread per process on real shared memory; the
                       adversary axis collapses (the hardware schedules)
                       and records carry wall-clock time and steps/s
  --mode MODE          `sample` (default), `explore`, `serve` or
                       `adversary-search`. `explore`
                       exhaustively model-checks every interleaving of each
                       (cell, algorithm) pair instead of sampling schedules
                       (tiny cells only; the backend, adversary and seed
                       axes are ignored). `serve` runs the batched service
                       under the open-loop load generator and a virtual
                       clock (the algorithm, adversary and backend axes are
                       ignored; records carry latency percentiles and ops/s).
                       `adversary-search` drives a goal-directed BFS over
                       schedule space hunting lower-bound witness structure
                       (coverings, block writes) instead of violations; the
                       backend, adversary and seed axes are ignored and the
                       goal list becomes an axis. Records carry the best
                       witness (schedule, registers, fingerprint), replay-
                       verified before it is written
  --max-states N       state budget per exploration (default 2000000)
  --explore-threads N  worker threads per exploration: 0 (default) runs the
                       serial explorer, N >= 1 the work-stealing parallel
                       explorer. Output is byte-identical across all worker
                       counts >= 1 (only the wall clock changes); 0 emits
                       the plain explore record shape, without the
                       parallel-explore backend label and memory-stat fields
  --symmetry MODE      `off` (default) or `process-ids`: deduplicate
                       explored states up to process-id orbits. Verdicts are
                       identical to full exploration; explored_states counts
                       one representative per orbit, and records carry
                       orbit_states / full_states_lower_bound. Cells whose
                       automata cannot establish the symmetry fall back to
                       plain exploration (symmetry = fallback-off in the
                       record) instead of pruning unsoundly
  --reduction MODE     `off` (default), `sleep-set` or `persistent-set`.
                       Sleep sets prune commuting sibling expansions,
                       driven by a three-tier interference analysis (static
                       op footprints, invisible-write refinement, dynamic
                       commutation from the pruned state); verdicts and
                       visited states are identical to full exploration.
                       Persistent sets additionally restrict expansion to a
                       dependency-closed subset of enabled processes (with
                       dynamic DPOR backtracking in the serial explorer),
                       cutting visited states, not just transitions;
                       verdicts stay identical and records additionally
                       carry persistent_expanded / states_cut. Records
                       carry expansions / sleep_pruned, and the reduction
                       factor composes multiplicatively with --symmetry.
                       Applies to explore and adversary-search modes; cells
                       the explorer cannot reduce soundly (dedup off, more
                       than 64 processes) fall back to plain exploration
                       (reduction = fallback-off in the record)
  --goals LIST         adversary-search mode: comma list of witness goals to
                       sweep, `covering` (default) and/or `block-write`
  --target-registers T adversary-search mode: `auto` (default; the paper's
                       n + 2m - k per cell), `none` (search the whole
                       budgeted space), or an explicit register count. The
                       search stops early once a witness touches T registers;
                       falling short of a target is a rediscovery miss and
                       fails `sweep summarize`
  --search-depth N     adversary-search mode: schedule-depth budget per
                       search (default 60)
  --seeds N|LIST       plain integer = that many seeds (0..N); or `1,5,9`
  --campaign-seed S    root seed mixed into every derived seed (default 0)
  --workload SPEC      `distinct` (default), `uniform:V`, `random:UNIVERSE`
  --max-steps N        per-scenario step budget (default 2000000); the
                       threaded backend splits it across the n threads
  --shard I/N          run only scenarios with index = I mod N (0 <= I < N);
                       indices are preserved, `sweep merge` reassembles
  --shards N           serve mode: service worker threads (default 2); not
                       part of scenario identity, output is byte-identical
                       at any shard count
  --batch-max N        serve mode: batch cutoff in proposals (default 8)
  --clients N          serve mode: simulated clients (default 64)
  --rate N             serve mode: proposals per virtual tick (default 8)
  --duration N         serve mode: virtual ticks before the drain
                       (default 1000)
  --spill on|off       explore mode: spill frozen frontier levels and
                       seen-set shards to disk once the resident budget is
                       exceeded (default off). Output is byte-identical with
                       spill on or off — spilling trades wall-clock for
                       memory, never verdicts
  --max-resident-mb N  explore mode: resident-memory budget per exploration
                       in MiB (0 = unlimited, the default). Without --spill
                       the explorer truncates at the budget; with it, frozen
                       work moves to disk and the search continues
  --checkpoint DIR     journal each completed scenario to
                       DIR/campaign.journal (synced before it reaches the
                       sink). Rerunning with the same spec, shard and DIR
                       resumes from the last completed scenario and emits a
                       byte-identical stream; a different spec is rejected
  --threads N          worker threads (default: all CPUs)
  --out FILE           write JSONL here instead of stdout
  --progress N         progress line to stderr every N scenarios

serve options (a one-off service run; the campaign keys above plus):
  --n, --m, --k N      the cell (defaults 4/1/2); each batch solves
                       (m, k)-agreement among its proposers
  --clock MODE         `virtual` (default; deterministic, 1 tick = 1 ms) or
                       `wall` (real time, no determinism claim)
  --workload SPEC      the value stream: `distinct` (default), `uniform:V`,
                       `random:UNIVERSE`
  --seed S             load-generator seed (default 0)
  --max-steps N        per-batch step budget (default 1000000)
";

fn fail(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("sweep: {message}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("summarize") => cmd_summarize(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => fail(format!("unknown command {other:?}\n{USAGE}")),
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut config = EngineConfig::default();
    let mut out_path: Option<String> = None;
    let (mut grid_n, mut grid_m, mut grid_k) = (None, None, None);

    // Pair up flags first so --spec can be applied before the other flags
    // regardless of where it appears on the command line ("load spec, then
    // apply flags").
    let mut pairs: Vec<(&str, &str)> = Vec::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        if flag == "--help" || flag == "-h" {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        let Some(value) = iter.next() else {
            return fail(format!("{flag} needs a value"));
        };
        pairs.push((flag, value));
    }

    let mut spec = CampaignSpec::default();
    if let Some((_, path)) = pairs.iter().find(|(flag, _)| *flag == "--spec") {
        let loaded: Result<CampaignSpec, String> = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))
            .and_then(|text| CampaignSpec::parse(&text).map_err(|e| e.to_string()));
        match loaded {
            Ok(loaded) => spec = loaded,
            Err(message) => return fail(message),
        }
    }

    for (flag, value) in &pairs {
        let value = *value;
        let result: Result<(), String> = (|| {
            match *flag {
                "--spec" => {} // already applied above
                "--name" => spec.name = value.to_string(),
                "--n" => grid_n = Some(to_usizes(value)?),
                "--m" => grid_m = Some(to_usizes(value)?),
                "--k" => grid_k = Some(to_usizes(value)?),
                "--params" => {
                    spec.params = ParamsSpec::parse_explicit(value).map_err(|e| e.to_string())?;
                }
                "--algorithms" => {
                    spec.algorithms =
                        sa_sweep::parse_algorithms(value).map_err(|e| e.to_string())?;
                }
                "--adversaries" => {
                    spec.adversaries = value
                        .split(',')
                        .map(|part| AdversarySpec::parse(part.trim()))
                        .collect::<Result<_, _>>()
                        .map_err(|e| e.to_string())?;
                }
                "--backend" => {
                    spec.backends = value
                        .split(',')
                        .map(|part| BackendSpec::parse(part.trim()))
                        .collect::<Result<_, _>>()
                        .map_err(|e| e.to_string())?;
                    if spec.backends.is_empty() {
                        return Err("no backends".into());
                    }
                }
                "--shard" => {
                    let parsed = value.split_once('/').and_then(|(i, n)| {
                        Some((i.trim().parse::<u64>().ok()?, n.trim().parse::<u64>().ok()?))
                    });
                    match parsed {
                        Some((index, count)) if count > 0 && index < count => {
                            config.shard = Some((index, count));
                        }
                        _ => return Err(format!("bad shard {value:?} (want I/N with 0 <= I < N)")),
                    }
                }
                "--seeds" => {
                    spec.seeds = sa_sweep::parse_seeds(value).map_err(|e| e.to_string())?;
                }
                "--campaign-seed" => {
                    spec.campaign_seed =
                        value.parse().map_err(|_| format!("bad seed {value:?}"))?;
                }
                "--workload" => {
                    spec.workload = WorkloadSpec::parse(value).map_err(|e| e.to_string())?;
                }
                "--max-steps" => {
                    spec.max_steps = value
                        .parse()
                        .map_err(|_| format!("bad step budget {value:?}"))?;
                }
                "--mode" => {
                    spec.mode = CampaignMode::parse(value).map_err(|e| e.to_string())?;
                }
                "--max-states" => {
                    spec.max_states = value
                        .parse()
                        .map_err(|_| format!("bad state budget {value:?}"))?;
                }
                "--explore-threads" => {
                    spec.explore_threads = value
                        .parse()
                        .map_err(|_| format!("bad explorer thread count {value:?}"))?;
                }
                "--symmetry" => {
                    spec.symmetry = SymmetryMode::parse(value).ok_or_else(|| {
                        format!("bad symmetry mode {value:?} (want off or process-ids)")
                    })?;
                }
                "--reduction" => {
                    spec.reduction = ReductionMode::parse(value).ok_or_else(|| {
                        format!(
                            "bad reduction mode {value:?} (want off, sleep-set or persistent-set)"
                        )
                    })?;
                }
                "--spill" => {
                    spec.spill = match value {
                        "on" => true,
                        "off" => false,
                        other => return Err(format!("bad spill mode {other:?} (want on or off)")),
                    };
                }
                "--max-resident-mb" => {
                    spec.max_resident_mb = value
                        .parse()
                        .map_err(|_| format!("bad resident budget {value:?}"))?;
                }
                "--goals" => {
                    spec.goals = value
                        .split(',')
                        .map(|part| {
                            SearchGoal::parse(part).ok_or_else(|| {
                                format!(
                                    "unknown goal {:?} (want covering or block-write)",
                                    part.trim()
                                )
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    if spec.goals.is_empty() {
                        return Err("no goals".into());
                    }
                }
                "--target-registers" => {
                    spec.target = SearchTarget::parse(value).map_err(|e| e.to_string())?;
                }
                "--search-depth" => {
                    spec.search_depth = parse_at_least_one(flag, value)? as u64;
                }
                "--checkpoint" => {
                    config.checkpoint = Some(std::path::PathBuf::from(value));
                }
                "--threads" => {
                    config.threads = value
                        .parse()
                        .map_err(|_| format!("bad thread count {value:?}"))?;
                }
                "--shards" => spec.shards = parse_at_least_one(flag, value)?,
                "--batch-max" => spec.batch_max = parse_at_least_one(flag, value)?,
                "--clients" => spec.clients = parse_at_least_one(flag, value)?,
                "--rate" => spec.rate = parse_at_least_one(flag, value)? as u64,
                "--duration" => spec.duration = parse_at_least_one(flag, value)? as u64,
                "--out" => out_path = Some(value.to_string()),
                "--progress" => {
                    config.progress_every = value
                        .parse()
                        .map_err(|_| format!("bad progress interval {value:?}"))?;
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
            Ok(())
        })();
        if let Err(message) = result {
            return fail(message);
        }
    }

    if grid_n.is_some() || grid_m.is_some() || grid_k.is_some() {
        let (default_n, default_m, default_k) = match &spec.params {
            ParamsSpec::Grid { n, m, k } => (n.clone(), m.clone(), k.clone()),
            // Axis flags replace an explicit cell list wholesale.
            ParamsSpec::Explicit(_) => (vec![], vec![], vec![]),
        };
        let n = grid_n.unwrap_or(default_n);
        let m = grid_m.unwrap_or(default_m);
        let k = grid_k.unwrap_or(default_k);
        if n.is_empty() || m.is_empty() || k.is_empty() {
            return fail("--n/--m/--k must all be given when overriding --params");
        }
        spec.params = ParamsSpec::Grid { n, m, k };
    }

    let run_to = |sink: &mut dyn std::io::Write| run_campaign(&spec, config, sink);
    let outcome = match &out_path {
        Some(path) => {
            let file = match std::fs::File::create(path) {
                Ok(file) => file,
                Err(e) => return fail(format!("cannot create {path}: {e}")),
            };
            let mut writer = std::io::BufWriter::new(file);
            run_to(&mut writer)
        }
        None => {
            let stdout = std::io::stdout();
            let mut writer = std::io::BufWriter::new(stdout.lock());
            run_to(&mut writer)
        }
    };
    match outcome {
        Ok(outcome) => {
            eprintln!(
                "sweep: campaign {:?}: {} scenarios ({} skipped as inapplicable), \
                 {} safety violations, {} bound violations, {} progress failures",
                spec.name,
                outcome.records,
                outcome.expansion.skipped_inapplicable,
                outcome.safety_violations,
                outcome.bound_violations,
                outcome.progress_failures
            );
            if outcome.explored > 0 {
                eprintln!(
                    "sweep: {} cells explored exhaustively, {} verified, {} truncated",
                    outcome.explored,
                    outcome.exhaustively_verified,
                    outcome.unverified_explorations
                );
            }
            if outcome.parallel_explored > 0 {
                eprintln!(
                    "sweep: {} explorations ran on the work-stealing parallel explorer \
                     ({} workers each)",
                    outcome.parallel_explored, spec.explore_threads
                );
            }
            if outcome.threaded > 0 {
                eprintln!(
                    "sweep: {} scenarios ran on the threaded backend (real OS threads)",
                    outcome.threaded
                );
            }
            if outcome.served > 0 {
                eprintln!(
                    "sweep: {} scenarios ran as batched service runs ({} shards each, \
                     virtual clock)",
                    outcome.served, spec.shards
                );
            }
            if outcome.searched > 0 {
                eprintln!(
                    "sweep: {} adversary searches ran, {} found a replay-verified witness",
                    outcome.searched, outcome.witnesses_found
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail(format!("i/o error: {e}")),
    }
}

fn parse_at_least_one(flag: &str, value: &str) -> Result<usize, String> {
    match value.parse::<usize>() {
        Ok(parsed) if parsed >= 1 => Ok(parsed),
        Ok(parsed) => Err(format!("{flag} must be at least 1, got {parsed}")),
        Err(_) => Err(format!("bad {flag} value {value:?}")),
    }
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let (mut n, mut m, mut k) = (4usize, 1usize, 2usize);
    let mut options = ServeOptions::default();
    let mut workload = WorkloadSpec::Distinct;
    let mut max_steps = 1_000_000u64;

    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        if flag == "--help" || flag == "-h" {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        let Some(value) = iter.next() else {
            return fail(format!("{flag} needs a value"));
        };
        let result: Result<(), String> = (|| {
            match flag.as_str() {
                "--n" => n = parse_at_least_one(flag, value)?,
                "--m" => m = parse_at_least_one(flag, value)?,
                "--k" => k = parse_at_least_one(flag, value)?,
                "--shards" => options.shards = parse_at_least_one(flag, value)?,
                "--batch-max" => options.batch_max = parse_at_least_one(flag, value)?,
                "--clients" => options.clients = parse_at_least_one(flag, value)?,
                "--rate" => options.rate = parse_at_least_one(flag, value)? as u64,
                "--duration" => options.duration_ticks = parse_at_least_one(flag, value)? as u64,
                "--clock" => {
                    options.clock = match value.as_str() {
                        "virtual" => ServeClock::Virtual,
                        "wall" => ServeClock::Wall,
                        other => return Err(format!("bad clock {other:?} (want virtual or wall)")),
                    };
                }
                "--workload" => {
                    workload = WorkloadSpec::parse(value).map_err(|e| e.to_string())?;
                }
                "--seed" => {
                    options.seed = value.parse().map_err(|_| format!("bad seed {value:?}"))?;
                }
                "--max-steps" => {
                    max_steps = value
                        .parse()
                        .map_err(|_| format!("bad step budget {value:?}"))?;
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
            Ok(())
        })();
        if let Err(message) = result {
            return fail(message);
        }
    }

    let params = match sa_model::Params::new(n, m, k) {
        Ok(params) => params,
        Err(e) => return fail(format!("invalid cell n={n} m={m} k={k}: {e}")),
    };
    options.load = match workload {
        WorkloadSpec::Distinct => ServeLoad::Distinct,
        WorkloadSpec::Uniform(value) => ServeLoad::Uniform(value),
        WorkloadSpec::Random { universe } => ServeLoad::Random { universe },
    };

    let plan = ExecutionPlan::new(params)
        .algorithm(Algorithm::Repeated(1))
        .max_steps(max_steps);
    let report = Executor::new(Backend::Serve(options))
        .execute(&plan)
        .expect_served();

    let (p50, p90, p99, p999) = report.histogram.summary();
    println!(
        "serve: n={n} m={m} k={k}, {} shards, batch-max {}, {} clients at {}/tick for {} ticks \
         ({} clock)",
        report.shards,
        options.batch_max,
        options.clients,
        options.rate,
        options.duration_ticks,
        report.clock.label()
    );
    println!(
        "serve: {} proposals in {} batches, {} validity violations, {} agreement violations, \
         {} unfinished, max {} distinct outputs per batch, {}",
        report.proposals,
        report.batches,
        report.validity_violations,
        report.agreement_violations,
        report.unfinished,
        report.distinct_outputs_max,
        if report.drained {
            "drained"
        } else {
            "NOT DRAINED"
        }
    );
    println!(
        "latency: p50 {p50} us, p90 {p90} us, p99 {p99} us, p999 {p999} us \
         (min {} us, max {} us, mean {:.1} us)",
        report.histogram.min(),
        report.histogram.max(),
        report.histogram.mean()
    );
    println!(
        "throughput: {} ops/s, {} steps/s ({} steps over {} us)",
        report.ops_per_sec(),
        report.steps_per_sec(),
        report.steps,
        report.duration_us
    );
    println!(
        "decided fingerprint: {:#018x}",
        report.decided_fingerprint()
    );

    if report.safety_violations() == 0 && report.drained && report.unfinished == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_merge(args: &[String]) -> ExitCode {
    let mut out_path: Option<String> = None;
    let mut shard_paths: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--out" => match iter.next() {
                Some(path) => out_path = Some(path.clone()),
                None => return fail("--out needs a value"),
            },
            flag if flag.starts_with("--") => {
                return fail(format!("unknown flag {flag:?}\n{USAGE}"))
            }
            _ => shard_paths.push(arg),
        }
    }
    if shard_paths.is_empty() {
        return fail(format!("merge needs at least one shard file\n{USAGE}"));
    }
    let mut shards = Vec::with_capacity(shard_paths.len());
    for path in &shard_paths {
        match load_records(path) {
            Ok(records) => shards.push(records),
            Err(message) => return fail(message),
        }
    }
    let merged = match merge_shards(&shards) {
        Ok(merged) => merged,
        Err(e) => return fail(format!("cannot merge: {e}")),
    };
    let write_to = |sink: &mut dyn std::io::Write| -> std::io::Result<()> {
        for record in &merged {
            writeln!(sink, "{}", record.to_json())?;
        }
        sink.flush()
    };
    let result = match &out_path {
        Some(path) => {
            let file = match std::fs::File::create(path) {
                Ok(file) => file,
                Err(e) => return fail(format!("cannot create {path}: {e}")),
            };
            write_to(&mut std::io::BufWriter::new(file))
        }
        None => {
            let stdout = std::io::stdout();
            write_to(&mut std::io::BufWriter::new(stdout.lock()))
        }
    };
    match result {
        Ok(()) => {
            eprintln!(
                "sweep: merged {} records from {} shards",
                merged.len(),
                shard_paths.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(format!("i/o error: {e}")),
    }
}

fn to_usizes(text: &str) -> Result<Vec<usize>, String> {
    Ok(sa_sweep::parse_values(text)
        .map_err(|e| e.to_string())?
        .into_iter()
        .map(|v| v as usize)
        .collect())
}

fn load_records(path: &str) -> Result<Vec<sa_sweep::SweepRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_summarize(args: &[String]) -> ExitCode {
    let [path] = args else {
        return fail(format!("summarize takes exactly one file\n{USAGE}"));
    };
    let records = match load_records(path) {
        Ok(records) => records,
        Err(message) => return fail(message),
    };
    let summary = Summary::of(&records);
    print!("{}", summary.render());
    // The CI gate: safety and bound violations always fail; an explore
    // campaign additionally fails if any cell could not be exhausted
    // (claiming "exhaustively verified" after a truncated search would be
    // wrong); an adversary-search campaign fails if any search missed its
    // register target (the machine failed to rediscover the paper's bound).
    if summary.clean() && summary.exhaustiveness_gaps() == 0 && summary.rediscovery_misses() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Replays every adversary-search witness in a result file through the
/// shared replay verifier, independently of the `verified` flag the engine
/// wrote. The record carries everything needed to rebuild the run — cell,
/// algorithm, workload label, goal, schedule — except the covering pairs,
/// so the replayed certificate is compared through its fingerprint (which
/// hashes the covering label along with every count).
fn cmd_verify(args: &[String]) -> ExitCode {
    let [path] = args else {
        return fail(format!("verify takes exactly one file\n{USAGE}"));
    };
    let records = match load_records(path) {
        Ok(records) => records,
        Err(message) => return fail(message),
    };
    let (mut replayed, mut failures, mut skipped) = (0u64, 0u64, 0u64);
    for record in &records {
        if record.mode != "adversary-search" || !record.witness_found {
            continue;
        }
        let describe = |what: &str| {
            format!(
                "scenario {} ({} {}): {what}",
                record.scenario,
                record.key(),
                record.goal
            )
        };
        let Some(goal) = SearchGoal::parse(&record.goal) else {
            return fail(describe(&format!("unknown goal {:?}", record.goal)));
        };
        let Some(schedule) = Witness::parse_schedule(&record.witness_schedule) else {
            return fail(describe(&format!(
                "unparseable schedule {:?}",
                record.witness_schedule
            )));
        };
        let params = match sa_model::Params::new(record.n, record.m, record.k) {
            Ok(params) => params,
            Err(e) => return fail(describe(&format!("invalid cell: {e}"))),
        };
        let Some(algorithm) = Algorithm::from_label(&record.algorithm, record.instances.max(1))
        else {
            return fail(describe(&format!(
                "unknown algorithm {:?}",
                record.algorithm
            )));
        };
        let workload = match WorkloadSpec::parse(&record.workload) {
            Ok(WorkloadSpec::Distinct) => Workload::all_distinct(params.n(), algorithm.instances()),
            Ok(WorkloadSpec::Uniform(value)) => {
                Workload::uniform(params.n(), algorithm.instances(), value)
            }
            // A random workload's inputs depend on a derived seed the
            // record does not carry — the witness cannot be replayed from
            // the file alone. Skip loudly rather than verify the wrong run.
            Ok(WorkloadSpec::Random { .. }) => {
                eprintln!(
                    "sweep: {}",
                    describe("random workload is not replayable from the record; skipped")
                );
                skipped += 1;
                continue;
            }
            Err(e) => return fail(describe(&format!("bad workload: {e}"))),
        };
        let witness = Witness {
            goal,
            schedule,
            certificate: Certificate {
                goal,
                depth: record.witness_depth,
                covering: Vec::new(), // not in the record; checked via the fingerprint
                registers_covered: record.registers_covered,
                registers_written: record.registers_written,
                registers: record.witness_registers,
                fingerprint: record.witness_fingerprint,
            },
        };
        let plan = ExecutionPlan::new(params)
            .algorithm(algorithm)
            .workload(workload);
        let found = match verify_witness(&plan, &witness) {
            Ok(found) => found,
            // The claimed certificate's covering list is empty by
            // construction, so a mismatch that agrees on the fingerprint is
            // still a successful replay — the fingerprint hashes the real
            // covering label.
            Err(VerifyError::CertificateMismatch { found, .. }) => *found,
            Err(e) => {
                eprintln!("sweep: FAILED {}", describe(&e.to_string()));
                failures += 1;
                continue;
            }
        };
        if found.fingerprint != record.witness_fingerprint
            || found.registers != record.witness_registers
            || found.registers_covered != record.registers_covered
            || found.depth != record.witness_depth
        {
            eprintln!(
                "sweep: FAILED {}",
                describe(&format!(
                    "replay measured [{found}], record claims fingerprint {:016x} with {} \
                     registers",
                    record.witness_fingerprint, record.witness_registers
                ))
            );
            failures += 1;
            continue;
        }
        replayed += 1;
    }
    println!(
        "verify: {replayed} witnesses replay-verified, {failures} failed, {skipped} skipped \
         ({} records)",
        records.len()
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Scans `.rs` files under each root for determinism hazards. The walk is
/// itself deterministic (directory entries sorted by name) so the finding
/// order — and therefore the CI log — is stable across machines.
fn cmd_lint(args: &[String]) -> ExitCode {
    let mut allow_path: Option<String> = None;
    let mut roots: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--allow" => match iter.next() {
                Some(path) => allow_path = Some(path.clone()),
                None => return fail("--allow needs a value"),
            },
            flag if flag.starts_with("--") => {
                return fail(format!("unknown flag {flag:?}\n{USAGE}"))
            }
            _ => roots.push(arg),
        }
    }
    if roots.is_empty() {
        return fail(format!("lint needs at least one root directory\n{USAGE}"));
    }
    let allow = match &allow_path {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => return fail(format!("cannot read {path}: {e}")),
            };
            match parse_allowlist(&text) {
                Ok(allow) => allow,
                Err(message) => return fail(format!("{path}: {message}")),
            }
        }
        None => Vec::new(),
    };
    let mut sources = Vec::new();
    for root in &roots {
        if let Err(message) = collect_rust_sources(std::path::Path::new(root), &mut sources) {
            return fail(message);
        }
    }
    let (mut findings, mut suppressed, mut scanned) = (Vec::new(), 0u64, 0u64);
    for path in &sources {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => return fail(format!("cannot read {}: {e}", path.display())),
        };
        let label = path.to_string_lossy();
        let (file_findings, file_suppressed) = lint_source(&label, &text, &allow);
        findings.extend(file_findings);
        suppressed += file_suppressed;
        scanned += 1;
    }
    for finding in &findings {
        println!("{finding}");
    }
    println!(
        "lint: {} files scanned, {} findings, {} suppressed by allowlist",
        scanned,
        findings.len(),
        suppressed
    );
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Collects every `.rs` file under `root`, depth-first with entries sorted
/// by name, skipping `target` build directories.
fn collect_rust_sources(
    root: &std::path::Path,
    out: &mut Vec<std::path::PathBuf>,
) -> Result<(), String> {
    let describe = |e: std::io::Error| format!("cannot walk {}: {e}", root.display());
    if root.is_file() {
        if root.extension().is_some_and(|ext| ext == "rs") {
            out.push(root.to_path_buf());
        }
        return Ok(());
    }
    let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(root)
        .map_err(describe)?
        .map(|entry| entry.map(|e| e.path()))
        .collect::<Result<_, _>>()
        .map_err(describe)?;
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            if entry.file_name().is_some_and(|name| name == "target") {
                continue;
            }
            collect_rust_sources(&entry, out)?;
        } else if entry.extension().is_some_and(|ext| ext == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let [old_path, new_path] = args else {
        return fail(format!("diff takes exactly two files\n{USAGE}"));
    };
    let (old, new) = match (load_records(old_path), load_records(new_path)) {
        (Ok(old), Ok(new)) => (old, new),
        (Err(message), _) | (_, Err(message)) => return fail(message),
    };
    let report = diff(&old, &new);
    print!("{}", report.render());
    if report.has_regressions() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
