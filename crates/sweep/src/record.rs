//! The per-scenario result record and its JSONL encoding.
//!
//! No JSON library is available offline, so this module hand-rolls exactly
//! what the sweep needs: a writer emitting one flat, field-ordered JSON
//! object per line (field order is fixed, which is what makes campaign
//! output byte-comparable), and a parser for those same flat objects used by
//! `sweep summarize` and `sweep diff`.

use crate::grid::ScenarioSpec;
use set_agreement::runtime::{ReductionMode, StopReason, SymmetryMode};
use set_agreement::{ExploreReport, ScenarioReport, ThreadedRunReport};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The result of one scenario, flattened for JSONL.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord {
    /// Campaign name.
    pub campaign: String,
    /// Scenario index within the campaign's deterministic order.
    pub scenario: u64,
    /// `n` of the cell.
    pub n: usize,
    /// `m` of the cell.
    pub m: usize,
    /// `k` of the cell.
    pub k: usize,
    /// Algorithm label.
    pub algorithm: String,
    /// Instances of repeated agreement run (1 for one-shot).
    pub instances: usize,
    /// Adversary template label (includes its parameters), `hardware` for
    /// threaded scenarios, or `exhaustive` for explore-mode scenarios.
    pub adversary: String,
    /// Execution mode: `sample` or `explore`.
    pub mode: String,
    /// Execution backend: `scheduled`, `threaded`, `explore` or
    /// `parallel-explore`. Encoded only for `threaded` and
    /// `parallel-explore` (the other two are implied by `mode`, and
    /// omitting them keeps pre-backend result files byte-identical).
    pub backend: String,
    /// Obstruction contention steps (0 for non-obstruction adversaries).
    pub contention_steps: u64,
    /// Survivor count the adversary restricts to (0 = never restricts;
    /// crashed survivors are not counted).
    pub survivors: usize,
    /// Processes given seed-derived crash points (0 = crash-free).
    pub crashes: usize,
    /// Campaign-level seed of this scenario.
    pub seed: u64,
    /// Workload label.
    pub workload: String,
    /// Step budget.
    pub max_steps: u64,
    /// Steps actually executed.
    pub steps: u64,
    /// Why the run stopped: `all-halted`, `step-limit` or
    /// `scheduler-exhausted`.
    pub stop: String,
    /// `true` if validity held.
    pub validity_ok: bool,
    /// `true` if k-agreement held.
    pub agreement_ok: bool,
    /// `true` if the adversary obliged the survivors to decide
    /// (`0 < survivors ≤ m`).
    pub progress_required: bool,
    /// `true` if every obligated survivor decided everything it ran.
    pub survivors_decided: bool,
    /// Total decisions recorded.
    pub decisions: u64,
    /// Max distinct outputs over all instances (the quantity k bounds).
    pub distinct_outputs_max: usize,
    /// Total shared-memory operations.
    pub total_ops: u64,
    /// Distinct base objects written.
    pub locations_written: usize,
    /// Distinct plain registers written.
    pub registers_written: usize,
    /// Distinct snapshot components written.
    pub components_written: usize,
    /// The paper's register bound for this algorithm and cell (Figure 1
    /// accounting).
    pub register_bound: usize,
    /// Base objects the implementation declares; `locations_written` may
    /// never exceed this.
    pub component_bound: usize,
    /// `locations_written ≤ component_bound`.
    pub bound_ok: bool,
    /// States visited by the exhaustive explorer (0 for sampled records).
    pub explored_states: u64,
    /// Deepest schedule prefix the explorer examined (0 for sampled
    /// records; encoded only for explore-mode records).
    pub explored_depth: u64,
    /// `true` only for explore-mode records whose state space was exhausted
    /// without finding a violation — "exhaustively verified", strictly
    /// stronger than "sampled, 0 violations".
    pub verified: bool,
    /// Peak frontier size of an exploration (widest BFS level for the
    /// parallel explorer; encoded only for parallel-explore records, whose
    /// memory statistics are deterministic at any worker count).
    pub frontier_peak: u64,
    /// Dedup seen-set entries when an exploration stopped (0 for sampled
    /// records; encoded only for parallel-explore records).
    pub seen_entries: u64,
    /// Deterministic rough estimate of the explorer's peak memory in bytes
    /// (0 for sampled records; encoded only for parallel-explore records).
    pub approx_bytes: u64,
    /// Symmetry status of an exploration: `off` (not requested),
    /// `process-ids` (requested and applied: `explored_states` counts orbit
    /// representatives) or `fallback-off` (requested, but the cell's
    /// automata could not establish the symmetry, so plain exploration ran
    /// instead). Encoded, together with the two orbit statistics below,
    /// only when the campaign requested symmetry — records of
    /// symmetry-off campaigns stay byte-identical to pre-symmetry releases.
    pub symmetry: String,
    /// Orbit representatives visited (= `explored_states`; 0 for sampled
    /// records). Encoded only when symmetry was requested.
    pub orbit_states: u64,
    /// Lower bound on the distinct reachable configurations the visited
    /// representatives stand for; `full_states_lower_bound / orbit_states`
    /// is the achieved reduction factor. Encoded only when symmetry was
    /// requested.
    pub full_states_lower_bound: u64,
    /// Partial-order-reduction status of an exploration or search: `off`
    /// (not requested), `sleep-set` (requested and applied: commuting
    /// sibling expansions were pruned) or `fallback-off` (requested, but
    /// the explorer could not honor it — dedup off or more than 64
    /// processes — so full expansion ran instead). Encoded, together with
    /// the two expansion statistics below, only when the campaign
    /// requested reduction — records of reduction-off campaigns stay
    /// byte-identical to pre-reduction releases.
    pub reduction: String,
    /// Successor expansions the exploration or search performed (0 for
    /// sampled records). Encoded only when reduction was requested;
    /// `(expansions + sleep_pruned) / expansions` is the multiplicative
    /// factor sleep sets achieved on top of symmetry.
    pub expansions: u64,
    /// Expansions skipped because a sleeping sibling order was provably
    /// commuting. Encoded only when reduction was requested.
    pub sleep_pruned: u64,
    /// Expansions performed from persistent/backtrack sets (the serial
    /// explorer counts every DPOR expansion; the breadth-first engines
    /// count expansions at states where the cut applied). Encoded only
    /// when `persistent-set` reduction was requested, so records of other
    /// campaigns stay byte-identical to earlier releases.
    pub persistent_expanded: u64,
    /// Enabled transitions left permanently unexpanded by persistent-set
    /// selection — the roots of subtrees the reduction proved redundant.
    /// Encoded only when `persistent-set` reduction was requested.
    pub states_cut: u64,
    /// Wall-clock microseconds of a threaded run (0 otherwise; encoded only
    /// for threaded records, whose output makes no byte-determinism claim).
    pub wall_us: u64,
    /// Aggregate throughput of a threaded run in shared-memory steps per
    /// second (0 otherwise; encoded only for serve and threaded records).
    pub steps_per_sec: u64,
    /// Proposals the service accepted (0 for non-serve records; this and
    /// the seven fields below are encoded only for serve records).
    pub proposals: u64,
    /// Batches the service cut (= agreement instances executed).
    pub batches: u64,
    /// Median proposal latency in microseconds.
    pub p50_us: u64,
    /// 90th-percentile proposal latency in microseconds.
    pub p90_us: u64,
    /// 99th-percentile proposal latency in microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile proposal latency in microseconds.
    pub p999_us: u64,
    /// Decided proposals per second (virtual-clock runs: deterministic).
    pub ops_per_sec: u64,
    /// FNV-1a fingerprint of the full decided-value log, in instance
    /// order. Byte-comparing this field across runs at different shard
    /// counts is the cheap form of comparing the logs themselves.
    pub decided_fingerprint: u64,
    /// Witness goal of an adversary-search record (`covering` or
    /// `block-write`; empty for other modes — this and the seven fields
    /// below are encoded only for adversary-search records, so every other
    /// mode's output stays byte-identical to pre-search releases).
    pub goal: String,
    /// Register target the search stops early at (0 = no target, search
    /// the whole budgeted space).
    pub target_registers: usize,
    /// `true` if the search found any witness at all.
    pub witness_found: bool,
    /// Schedule length of the best witness (0 when none was found).
    pub witness_depth: u64,
    /// Distinct locations covered by pending writes in the best witness.
    pub registers_covered: usize,
    /// `|written ∪ covered|` of the best witness — the count compared
    /// against the paper's `n + 2m − k`.
    pub witness_registers: usize,
    /// The best witness's schedule as a dotted label (`0.1.0`; `-` when no
    /// witness was found) — enough to replay and re-verify it from the
    /// JSONL alone.
    pub witness_schedule: String,
    /// FNV-1a fingerprint of the best witness's certificate.
    pub witness_fingerprint: u64,
}

impl SweepRecord {
    /// Builds the record for one completed scenario.
    pub fn from_report(campaign: &str, spec: &ScenarioSpec, report: &ScenarioReport) -> Self {
        let distinct_outputs_max = report
            .decisions
            .instances()
            .map(|t| report.decisions.distinct_outputs(t))
            .max()
            .unwrap_or(0);
        let registers_written = report.metrics.registers_written();
        let component_bound = spec.algorithm.component_bound(spec.params);
        SweepRecord {
            campaign: campaign.to_string(),
            scenario: spec.index,
            n: spec.params.n(),
            m: spec.params.m(),
            k: spec.params.k(),
            algorithm: spec.algorithm.label().to_string(),
            instances: spec.algorithm.instances(),
            adversary: spec.adversary_label.clone(),
            mode: spec.mode.label().to_string(),
            backend: spec.backend_label().to_string(),
            contention_steps: spec.contention_steps,
            survivors: spec.survivors,
            crashes: spec.crashes,
            seed: spec.seed,
            workload: spec.workload_label.clone(),
            max_steps: spec.max_steps,
            steps: report.steps,
            stop: match report.stop {
                StopReason::AllHalted => "all-halted",
                StopReason::StepLimit => "step-limit",
                StopReason::SchedulerExhausted => "scheduler-exhausted",
            }
            .to_string(),
            validity_ok: report.safety.validity.is_none(),
            agreement_ok: report.safety.agreement.is_none(),
            progress_required: spec.progress_required(),
            survivors_decided: report.survivors_decided,
            decisions: report.decisions.len() as u64,
            distinct_outputs_max,
            total_ops: report.metrics.total_ops(),
            locations_written: report.locations_written,
            registers_written,
            components_written: report.locations_written - registers_written,
            register_bound: spec.algorithm.register_bound(spec.params),
            component_bound,
            bound_ok: report.locations_written <= component_bound,
            explored_states: 0,
            explored_depth: 0,
            verified: false,
            frontier_peak: 0,
            seen_entries: 0,
            approx_bytes: 0,
            symmetry: "off".into(),
            orbit_states: 0,
            full_states_lower_bound: 0,
            reduction: "off".into(),
            expansions: 0,
            sleep_pruned: 0,
            persistent_expanded: 0,
            states_cut: 0,
            wall_us: 0,
            steps_per_sec: 0,
            proposals: 0,
            batches: 0,
            p50_us: 0,
            p90_us: 0,
            p99_us: 0,
            p999_us: 0,
            ops_per_sec: 0,
            decided_fingerprint: 0,
            goal: String::new(),
            target_registers: 0,
            witness_found: false,
            witness_depth: 0,
            registers_covered: 0,
            witness_registers: 0,
            witness_schedule: String::new(),
            witness_fingerprint: 0,
        }
    }

    /// Builds the record for one scenario executed on the threaded backend.
    /// Steps, decisions and throughput are whatever the hardware's
    /// interleaving produced — only the safety verdicts and the space
    /// accounting are meaningful to compare across runs.
    pub fn from_threaded(campaign: &str, spec: &ScenarioSpec, report: &ThreadedRunReport) -> Self {
        let distinct_outputs_max = report
            .decisions
            .instances()
            .map(|t| report.decisions.distinct_outputs(t))
            .max()
            .unwrap_or(0);
        let registers_written = report.metrics.registers_written();
        let component_bound = spec.algorithm.component_bound(spec.params);
        SweepRecord {
            campaign: campaign.to_string(),
            scenario: spec.index,
            n: spec.params.n(),
            m: spec.params.m(),
            k: spec.params.k(),
            algorithm: spec.algorithm.label().to_string(),
            instances: spec.algorithm.instances(),
            adversary: spec.adversary_label.clone(),
            mode: spec.mode.label().to_string(),
            backend: spec.backend_label().to_string(),
            contention_steps: 0,
            survivors: 0,
            crashes: 0,
            seed: spec.seed,
            workload: spec.workload_label.clone(),
            max_steps: spec.max_steps,
            steps: report.steps,
            stop: if report.all_halted() {
                "all-halted"
            } else {
                "step-limit"
            }
            .to_string(),
            validity_ok: report.safety.validity.is_none(),
            agreement_ok: report.safety.agreement.is_none(),
            // Nobody is obligated: all n threads may contend forever, which
            // the m-obstruction progress condition permits.
            progress_required: false,
            survivors_decided: true,
            decisions: report.decisions.len() as u64,
            distinct_outputs_max,
            total_ops: report.metrics.total_ops(),
            locations_written: report.locations_written,
            registers_written,
            components_written: report.locations_written - registers_written,
            register_bound: spec.algorithm.register_bound(spec.params),
            component_bound,
            bound_ok: report.locations_written <= component_bound,
            explored_states: 0,
            explored_depth: 0,
            verified: false,
            frontier_peak: 0,
            seen_entries: 0,
            approx_bytes: 0,
            symmetry: "off".into(),
            orbit_states: 0,
            full_states_lower_bound: 0,
            reduction: "off".into(),
            expansions: 0,
            sleep_pruned: 0,
            persistent_expanded: 0,
            states_cut: 0,
            wall_us: report.wall.as_micros() as u64,
            steps_per_sec: report.steps_per_sec() as u64,
            proposals: 0,
            batches: 0,
            p50_us: 0,
            p90_us: 0,
            p99_us: 0,
            p999_us: 0,
            ops_per_sec: 0,
            decided_fingerprint: 0,
            goal: String::new(),
            target_registers: 0,
            witness_found: false,
            witness_depth: 0,
            registers_covered: 0,
            witness_registers: 0,
            witness_schedule: String::new(),
            witness_fingerprint: 0,
        }
    }

    /// Builds the record for one exhaustively explored scenario. Space
    /// fields report the **maximum over all reachable states**, so
    /// `bound_ok` means no interleaving whatsoever exceeds the declared
    /// footprint.
    pub fn from_exploration(campaign: &str, spec: &ScenarioSpec, report: &ExploreReport) -> Self {
        let component_bound = spec.algorithm.component_bound(spec.params);
        SweepRecord {
            campaign: campaign.to_string(),
            scenario: spec.index,
            n: spec.params.n(),
            m: spec.params.m(),
            k: spec.params.k(),
            algorithm: spec.algorithm.label().to_string(),
            instances: spec.algorithm.instances(),
            adversary: spec.adversary_label.clone(),
            mode: spec.mode.label().to_string(),
            backend: spec.backend_label().to_string(),
            contention_steps: 0,
            survivors: 0,
            crashes: 0,
            seed: spec.seed,
            workload: spec.workload_label.clone(),
            max_steps: spec.max_steps,
            steps: 0,
            stop: if report.violation.is_some() {
                "violation-found"
            } else if report.truncated {
                "truncated"
            } else {
                "state-space-exhausted"
            }
            .to_string(),
            validity_ok: report.validity_ok,
            agreement_ok: report.agreement_ok,
            progress_required: false,
            survivors_decided: true,
            decisions: 0,
            distinct_outputs_max: 0,
            total_ops: 0,
            locations_written: report.max_locations_written,
            registers_written: report.max_registers_written,
            components_written: report.max_components_written,
            register_bound: spec.algorithm.register_bound(spec.params),
            component_bound,
            bound_ok: report.max_locations_written <= component_bound,
            explored_states: report.states_visited,
            explored_depth: report.max_depth_reached,
            verified: report.verified(),
            frontier_peak: report.frontier_peak,
            seen_entries: report.seen_entries,
            approx_bytes: report.approx_bytes,
            symmetry: match (spec.symmetry, report.symmetry_applied) {
                (SymmetryMode::Off, _) => "off".into(),
                (SymmetryMode::ProcessIds, true) => "process-ids".into(),
                // Requested but not established (e.g. the single-writer
                // emulation): the explorer fell back rather than prune
                // unsoundly, and the record says so.
                (SymmetryMode::ProcessIds, false) => "fallback-off".into(),
            },
            orbit_states: if spec.symmetry == SymmetryMode::Off {
                0
            } else {
                report.orbit_states
            },
            full_states_lower_bound: if spec.symmetry == SymmetryMode::Off {
                0
            } else {
                report.full_states_lower_bound
            },
            reduction: match (spec.reduction, report.reduction_applied) {
                (ReductionMode::Off, _) => "off".into(),
                (ReductionMode::SleepSets, true) => "sleep-set".into(),
                (ReductionMode::PersistentSets, true) => "persistent-set".into(),
                // Requested but not honorable (dedup off, > 64 processes):
                // the explorer expanded fully rather than prune unsoundly,
                // and the record says so.
                (ReductionMode::SleepSets | ReductionMode::PersistentSets, false) => {
                    "fallback-off".into()
                }
            },
            expansions: if spec.reduction == ReductionMode::Off {
                0
            } else {
                report.expansions
            },
            sleep_pruned: if spec.reduction == ReductionMode::Off {
                0
            } else {
                report.sleep_pruned
            },
            persistent_expanded: if spec.reduction == ReductionMode::PersistentSets {
                report.persistent_expanded
            } else {
                0
            },
            states_cut: if spec.reduction == ReductionMode::PersistentSets {
                report.states_cut
            } else {
                0
            },
            wall_us: 0,
            steps_per_sec: 0,
            proposals: 0,
            batches: 0,
            p50_us: 0,
            p90_us: 0,
            p99_us: 0,
            p999_us: 0,
            ops_per_sec: 0,
            decided_fingerprint: 0,
            goal: String::new(),
            target_registers: 0,
            witness_found: false,
            witness_depth: 0,
            registers_covered: 0,
            witness_registers: 0,
            witness_schedule: String::new(),
            witness_fingerprint: 0,
        }
    }

    /// Builds the record for one serve-mode scenario. Safety verdicts come
    /// from the per-batch checks (validity against the batch's own inputs,
    /// at most `k` distinct outputs per batch); the progress obligation is
    /// the service-level one — every accepted proposal must be answered by
    /// the drain. Latency percentiles come from the merged shard
    /// histograms, and `decided_fingerprint` hashes the full decided-value
    /// log so cross-shard-count equality is checkable from the JSONL alone.
    pub fn from_serve(
        campaign: &str,
        spec: &ScenarioSpec,
        report: &set_agreement::serve::ServeReport,
    ) -> Self {
        let (p50, p90, p99, p999) = report.histogram.summary();
        SweepRecord {
            campaign: campaign.to_string(),
            scenario: spec.index,
            n: spec.params.n(),
            m: spec.params.m(),
            k: spec.params.k(),
            algorithm: spec.algorithm.label().to_string(),
            instances: 1,
            adversary: spec.adversary_label.clone(),
            mode: spec.mode.label().to_string(),
            backend: spec.backend_label().to_string(),
            contention_steps: 0,
            survivors: 0,
            crashes: 0,
            seed: spec.seed,
            workload: spec.workload_label.clone(),
            max_steps: spec.max_steps,
            steps: report.steps,
            stop: if report.drained {
                "drained"
            } else {
                "step-limit"
            }
            .to_string(),
            validity_ok: report.validity_violations == 0,
            agreement_ok: report.agreement_violations == 0,
            progress_required: true,
            survivors_decided: report.drained && report.unfinished == 0,
            decisions: report.decided.len() as u64,
            distinct_outputs_max: report.distinct_outputs_max,
            // Every algorithm step in a batch is one shared-memory
            // operation on that batch's private instance.
            total_ops: report.steps,
            // Footprint accounting is per-instance and the service
            // discards each batch's memory; the space story belongs to
            // the sample and explore modes.
            locations_written: 0,
            registers_written: 0,
            components_written: 0,
            register_bound: spec.algorithm.register_bound(spec.params),
            component_bound: spec.algorithm.component_bound(spec.params),
            bound_ok: true,
            explored_states: 0,
            explored_depth: 0,
            verified: false,
            frontier_peak: 0,
            seen_entries: 0,
            approx_bytes: 0,
            symmetry: "off".into(),
            orbit_states: 0,
            full_states_lower_bound: 0,
            reduction: "off".into(),
            expansions: 0,
            sleep_pruned: 0,
            persistent_expanded: 0,
            states_cut: 0,
            wall_us: report.duration_us,
            steps_per_sec: report.steps_per_sec(),
            proposals: report.proposals,
            batches: report.batches,
            p50_us: p50,
            p90_us: p90,
            p99_us: p99,
            p999_us: p999,
            ops_per_sec: report.ops_per_sec(),
            decided_fingerprint: report.decided_fingerprint(),
            goal: String::new(),
            target_registers: 0,
            witness_found: false,
            witness_depth: 0,
            registers_covered: 0,
            witness_registers: 0,
            witness_schedule: String::new(),
            witness_fingerprint: 0,
        }
    }

    /// Builds the record for one adversary-search scenario. Safety fields
    /// are vacuously true (the search hunts witness structure, not
    /// violations); `verified` means the best witness — if any — replayed
    /// successfully through the shared verifier, and the witness fields
    /// carry enough of the artifact (schedule, certificate measures,
    /// fingerprint) to re-verify it from the JSONL alone.
    pub fn from_search(
        campaign: &str,
        spec: &ScenarioSpec,
        report: &set_agreement::search::SearchReport,
    ) -> Self {
        let witness = report.witness.as_ref();
        let certificate = witness.map(|w| &w.certificate);
        let witness_registers = certificate.map_or(0, |c| c.registers);
        SweepRecord {
            campaign: campaign.to_string(),
            scenario: spec.index,
            n: spec.params.n(),
            m: spec.params.m(),
            k: spec.params.k(),
            algorithm: spec.algorithm.label().to_string(),
            instances: spec.algorithm.instances(),
            adversary: spec.adversary_label.clone(),
            mode: spec.mode.label().to_string(),
            backend: spec.backend_label().to_string(),
            contention_steps: 0,
            survivors: 0,
            crashes: 0,
            seed: spec.seed,
            workload: spec.workload_label.clone(),
            max_steps: spec.max_steps,
            steps: 0,
            stop: report.stop.label().to_string(),
            validity_ok: true,
            agreement_ok: true,
            progress_required: false,
            survivors_decided: true,
            decisions: 0,
            distinct_outputs_max: 0,
            total_ops: 0,
            // For a search, the space story *is* the witness: `written ∪
            // covered` of the best configuration found.
            locations_written: witness_registers,
            registers_written: certificate.map_or(0, |c| c.registers_written),
            components_written: 0,
            register_bound: spec.algorithm.register_bound(spec.params),
            component_bound: spec.algorithm.component_bound(spec.params),
            bound_ok: true,
            explored_states: report.states_visited,
            explored_depth: report.max_depth_reached,
            verified: report.verified,
            frontier_peak: 0,
            seen_entries: 0,
            approx_bytes: 0,
            symmetry: match (spec.symmetry, report.symmetry_applied) {
                (SymmetryMode::Off, _) => "off".into(),
                (SymmetryMode::ProcessIds, true) => "process-ids".into(),
                (SymmetryMode::ProcessIds, false) => "fallback-off".into(),
            },
            orbit_states: if spec.symmetry == SymmetryMode::Off {
                0
            } else {
                report.states_visited
            },
            full_states_lower_bound: 0,
            reduction: match (spec.reduction, report.reduction_applied) {
                (ReductionMode::Off, _) => "off".into(),
                (ReductionMode::SleepSets, true) => "sleep-set".into(),
                (ReductionMode::PersistentSets, true) => "persistent-set".into(),
                (ReductionMode::SleepSets | ReductionMode::PersistentSets, false) => {
                    "fallback-off".into()
                }
            },
            expansions: if spec.reduction == ReductionMode::Off {
                0
            } else {
                report.expansions
            },
            sleep_pruned: if spec.reduction == ReductionMode::Off {
                0
            } else {
                report.sleep_pruned
            },
            persistent_expanded: if spec.reduction == ReductionMode::PersistentSets {
                report.persistent_expanded
            } else {
                0
            },
            states_cut: if spec.reduction == ReductionMode::PersistentSets {
                report.states_cut
            } else {
                0
            },
            wall_us: 0,
            steps_per_sec: 0,
            proposals: 0,
            batches: 0,
            p50_us: 0,
            p90_us: 0,
            p99_us: 0,
            p999_us: 0,
            ops_per_sec: 0,
            decided_fingerprint: 0,
            goal: report.goal.label().to_string(),
            target_registers: report.target_registers,
            witness_found: witness.is_some(),
            witness_depth: certificate.map_or(0, |c| c.depth),
            registers_covered: certificate.map_or(0, |c| c.registers_covered),
            witness_registers,
            witness_schedule: witness.map_or_else(|| "-".to_string(), |w| w.schedule_label()),
            witness_fingerprint: certificate.map_or(0, |c| c.fingerprint),
        }
    }

    /// `true` if both safety properties held.
    pub fn safe(&self) -> bool {
        self.validity_ok && self.agreement_ok
    }

    /// `true` if the progress obligation (if any) was met.
    pub fn progress_ok(&self) -> bool {
        !self.progress_required || self.survivors_decided
    }

    /// The identity of this record for cross-file comparison: everything
    /// that names the scenario, nothing that measures it.
    pub fn key(&self) -> String {
        format!(
            "n{} m{} k{} {} x{} {} seed{} {}",
            self.n,
            self.m,
            self.k,
            self.algorithm,
            self.instances,
            self.adversary,
            self.seed,
            self.workload
        )
    }

    /// Encodes the record as one JSON line (no trailing newline). Field
    /// order is fixed, so equal records encode to equal bytes.
    ///
    /// Backend-specific fields are encoded only where they carry
    /// information: `backend`, `wall_us` and `steps_per_sec` appear on
    /// threaded and serve records, `explored_depth` on explore-mode and
    /// adversary-search records, the service measurements (`proposals`
    /// through `decided_fingerprint`) on serve records, and the witness
    /// fields (`goal` through `witness_fingerprint`) on adversary-search
    /// records. Scheduled sampled output is therefore byte-identical to
    /// what pre-backend releases emitted.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        let mut first = true;
        let mut field = |out: &mut String, key: &str, value: &str| {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{key}\":{value}");
        };
        field(&mut out, "campaign", &json_string(&self.campaign));
        field(&mut out, "scenario", &self.scenario.to_string());
        field(&mut out, "n", &self.n.to_string());
        field(&mut out, "m", &self.m.to_string());
        field(&mut out, "k", &self.k.to_string());
        field(&mut out, "algorithm", &json_string(&self.algorithm));
        field(&mut out, "instances", &self.instances.to_string());
        field(&mut out, "adversary", &json_string(&self.adversary));
        field(&mut out, "mode", &json_string(&self.mode));
        if self.backend == "threaded"
            || self.backend == "parallel-explore"
            || self.backend == "serve"
        {
            field(&mut out, "backend", &json_string(&self.backend));
        }
        field(
            &mut out,
            "contention_steps",
            &self.contention_steps.to_string(),
        );
        field(&mut out, "survivors", &self.survivors.to_string());
        field(&mut out, "crashes", &self.crashes.to_string());
        field(&mut out, "seed", &self.seed.to_string());
        field(&mut out, "workload", &json_string(&self.workload));
        field(&mut out, "max_steps", &self.max_steps.to_string());
        field(&mut out, "steps", &self.steps.to_string());
        field(&mut out, "stop", &json_string(&self.stop));
        field(&mut out, "validity_ok", bool_str(self.validity_ok));
        field(&mut out, "agreement_ok", bool_str(self.agreement_ok));
        field(
            &mut out,
            "progress_required",
            bool_str(self.progress_required),
        );
        field(
            &mut out,
            "survivors_decided",
            bool_str(self.survivors_decided),
        );
        field(&mut out, "decisions", &self.decisions.to_string());
        field(
            &mut out,
            "distinct_outputs_max",
            &self.distinct_outputs_max.to_string(),
        );
        field(&mut out, "total_ops", &self.total_ops.to_string());
        field(
            &mut out,
            "locations_written",
            &self.locations_written.to_string(),
        );
        field(
            &mut out,
            "registers_written",
            &self.registers_written.to_string(),
        );
        field(
            &mut out,
            "components_written",
            &self.components_written.to_string(),
        );
        field(&mut out, "register_bound", &self.register_bound.to_string());
        field(
            &mut out,
            "component_bound",
            &self.component_bound.to_string(),
        );
        field(&mut out, "bound_ok", bool_str(self.bound_ok));
        field(
            &mut out,
            "explored_states",
            &self.explored_states.to_string(),
        );
        if self.mode == "explore" || self.mode == "adversary-search" {
            field(&mut out, "explored_depth", &self.explored_depth.to_string());
        }
        if self.backend == "parallel-explore" {
            field(&mut out, "frontier_peak", &self.frontier_peak.to_string());
            field(&mut out, "seen_entries", &self.seen_entries.to_string());
            field(&mut out, "approx_bytes", &self.approx_bytes.to_string());
        }
        if self.symmetry != "off" {
            field(&mut out, "symmetry", &json_string(&self.symmetry));
            field(&mut out, "orbit_states", &self.orbit_states.to_string());
            field(
                &mut out,
                "full_states_lower_bound",
                &self.full_states_lower_bound.to_string(),
            );
        }
        if self.reduction != "off" {
            field(&mut out, "reduction", &json_string(&self.reduction));
            field(&mut out, "expansions", &self.expansions.to_string());
            field(&mut out, "sleep_pruned", &self.sleep_pruned.to_string());
        }
        // Emitted only when the persistent-set tier actually ran, so
        // sleep-set (and fallback) records stay byte-identical to earlier
        // releases.
        if self.reduction == "persistent-set" {
            field(
                &mut out,
                "persistent_expanded",
                &self.persistent_expanded.to_string(),
            );
            field(&mut out, "states_cut", &self.states_cut.to_string());
        }
        field(&mut out, "verified", bool_str(self.verified));
        if self.mode == "adversary-search" {
            field(&mut out, "goal", &json_string(&self.goal));
            field(
                &mut out,
                "target_registers",
                &self.target_registers.to_string(),
            );
            field(&mut out, "witness_found", bool_str(self.witness_found));
            field(&mut out, "witness_depth", &self.witness_depth.to_string());
            field(
                &mut out,
                "registers_covered",
                &self.registers_covered.to_string(),
            );
            field(
                &mut out,
                "witness_registers",
                &self.witness_registers.to_string(),
            );
            field(
                &mut out,
                "witness_schedule",
                &json_string(&self.witness_schedule),
            );
            field(
                &mut out,
                "witness_fingerprint",
                &self.witness_fingerprint.to_string(),
            );
        }
        if self.backend == "threaded" || self.backend == "serve" {
            field(&mut out, "wall_us", &self.wall_us.to_string());
            field(&mut out, "steps_per_sec", &self.steps_per_sec.to_string());
        }
        if self.backend == "serve" {
            field(&mut out, "proposals", &self.proposals.to_string());
            field(&mut out, "batches", &self.batches.to_string());
            field(&mut out, "p50_us", &self.p50_us.to_string());
            field(&mut out, "p90_us", &self.p90_us.to_string());
            field(&mut out, "p99_us", &self.p99_us.to_string());
            field(&mut out, "p999_us", &self.p999_us.to_string());
            field(&mut out, "ops_per_sec", &self.ops_per_sec.to_string());
            field(
                &mut out,
                "decided_fingerprint",
                &self.decided_fingerprint.to_string(),
            );
        }
        out.push('}');
        out
    }

    /// Decodes one JSON line produced by [`SweepRecord::to_json`].
    ///
    /// The fields introduced after the first release (`mode`, `crashes`,
    /// `explored_states`, `verified`, the backend fields `backend`,
    /// `explored_depth`, `wall_us`, `steps_per_sec`, and the
    /// adversary-search witness fields) default to their crash-free
    /// scheduled values when absent, so result files written by older
    /// versions remain summarizable and diffable.
    pub fn parse(line: &str) -> Result<Self, ParseError> {
        let fields = parse_flat_object(line)?;
        let mode = fields.string_or("mode", "sample")?;
        // Absent backend is implied by the mode: explore-mode records run
        // on the explorer, serve-mode records on the service, everything
        // else on the simulator.
        let default_backend = match mode.as_str() {
            "explore" => "explore",
            "serve" => "serve",
            "adversary-search" => "adversary-search",
            _ => "scheduled",
        };
        let record = SweepRecord {
            campaign: fields.string("campaign")?,
            scenario: fields.u64("scenario")?,
            n: fields.u64("n")? as usize,
            m: fields.u64("m")? as usize,
            k: fields.u64("k")? as usize,
            algorithm: fields.string("algorithm")?,
            instances: fields.u64("instances")? as usize,
            adversary: fields.string("adversary")?,
            backend: fields.string_or("backend", default_backend)?,
            mode,
            contention_steps: fields.u64("contention_steps")?,
            survivors: fields.u64("survivors")? as usize,
            crashes: fields.u64_or("crashes", 0)? as usize,
            seed: fields.u64("seed")?,
            workload: fields.string("workload")?,
            max_steps: fields.u64("max_steps")?,
            steps: fields.u64("steps")?,
            stop: fields.string("stop")?,
            validity_ok: fields.bool("validity_ok")?,
            agreement_ok: fields.bool("agreement_ok")?,
            progress_required: fields.bool("progress_required")?,
            survivors_decided: fields.bool("survivors_decided")?,
            decisions: fields.u64("decisions")?,
            distinct_outputs_max: fields.u64("distinct_outputs_max")? as usize,
            total_ops: fields.u64("total_ops")?,
            locations_written: fields.u64("locations_written")? as usize,
            registers_written: fields.u64("registers_written")? as usize,
            components_written: fields.u64("components_written")? as usize,
            register_bound: fields.u64("register_bound")? as usize,
            component_bound: fields.u64("component_bound")? as usize,
            bound_ok: fields.bool("bound_ok")?,
            explored_states: fields.u64_or("explored_states", 0)?,
            explored_depth: fields.u64_or("explored_depth", 0)?,
            verified: fields.bool_or("verified", false)?,
            frontier_peak: fields.u64_or("frontier_peak", 0)?,
            seen_entries: fields.u64_or("seen_entries", 0)?,
            approx_bytes: fields.u64_or("approx_bytes", 0)?,
            symmetry: fields.string_or("symmetry", "off")?,
            orbit_states: fields.u64_or("orbit_states", 0)?,
            full_states_lower_bound: fields.u64_or("full_states_lower_bound", 0)?,
            reduction: fields.string_or("reduction", "off")?,
            expansions: fields.u64_or("expansions", 0)?,
            sleep_pruned: fields.u64_or("sleep_pruned", 0)?,
            persistent_expanded: fields.u64_or("persistent_expanded", 0)?,
            states_cut: fields.u64_or("states_cut", 0)?,
            wall_us: fields.u64_or("wall_us", 0)?,
            steps_per_sec: fields.u64_or("steps_per_sec", 0)?,
            proposals: fields.u64_or("proposals", 0)?,
            batches: fields.u64_or("batches", 0)?,
            p50_us: fields.u64_or("p50_us", 0)?,
            p90_us: fields.u64_or("p90_us", 0)?,
            p99_us: fields.u64_or("p99_us", 0)?,
            p999_us: fields.u64_or("p999_us", 0)?,
            ops_per_sec: fields.u64_or("ops_per_sec", 0)?,
            decided_fingerprint: fields.u64_or("decided_fingerprint", 0)?,
            goal: fields.string_or("goal", "")?,
            target_registers: fields.u64_or("target_registers", 0)? as usize,
            witness_found: fields.bool_or("witness_found", false)?,
            witness_depth: fields.u64_or("witness_depth", 0)?,
            registers_covered: fields.u64_or("registers_covered", 0)? as usize,
            witness_registers: fields.u64_or("witness_registers", 0)? as usize,
            witness_schedule: fields.string_or("witness_schedule", "")?,
            witness_fingerprint: fields.u64_or("witness_fingerprint", 0)?,
        };
        Ok(record)
    }
}

fn bool_str(b: bool) -> &'static str {
    if b {
        "true"
    } else {
        "false"
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Error from [`SweepRecord::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad record: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    String(String),
    Number(u64),
    Bool(bool),
}

#[derive(Debug, Default)]
struct Fields(BTreeMap<String, JsonValue>);

impl Fields {
    fn get(&self, key: &str) -> Result<&JsonValue, ParseError> {
        self.0
            .get(key)
            .ok_or_else(|| ParseError(format!("missing field {key:?}")))
    }

    fn string(&self, key: &str) -> Result<String, ParseError> {
        match self.get(key)? {
            JsonValue::String(s) => Ok(s.clone()),
            other => Err(ParseError(format!(
                "field {key:?} is not a string: {other:?}"
            ))),
        }
    }

    fn u64(&self, key: &str) -> Result<u64, ParseError> {
        match self.get(key)? {
            JsonValue::Number(n) => Ok(*n),
            other => Err(ParseError(format!(
                "field {key:?} is not a number: {other:?}"
            ))),
        }
    }

    fn bool(&self, key: &str) -> Result<bool, ParseError> {
        match self.get(key)? {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(ParseError(format!(
                "field {key:?} is not a bool: {other:?}"
            ))),
        }
    }

    // `_or` variants for fields added after the first release: absent means
    // the default (old files stay readable), present-but-mistyped is still
    // an error.

    fn string_or(&self, key: &str, default: &str) -> Result<String, ParseError> {
        if self.0.contains_key(key) {
            self.string(key)
        } else {
            Ok(default.to_string())
        }
    }

    fn u64_or(&self, key: &str, default: u64) -> Result<u64, ParseError> {
        if self.0.contains_key(key) {
            self.u64(key)
        } else {
            Ok(default)
        }
    }

    fn bool_or(&self, key: &str, default: bool) -> Result<bool, ParseError> {
        if self.0.contains_key(key) {
            self.bool(key)
        } else {
            Ok(default)
        }
    }
}

/// Parses a single-line flat JSON object with string, non-negative-integer
/// and boolean values — exactly the shape [`SweepRecord::to_json`] emits.
fn parse_flat_object(line: &str) -> Result<Fields, ParseError> {
    let mut chars = line.trim().chars().peekable();
    let mut fields = Fields::default();
    if chars.next() != Some('{') {
        return Err(ParseError("expected '{'".into()));
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some('"') => {}
            other => return Err(ParseError(format!("expected key, found {other:?}"))),
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(ParseError(format!("expected ':' after key {key:?}")));
        }
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => JsonValue::String(parse_string(&mut chars)?),
            Some('t') | Some('f') => {
                let word: String =
                    std::iter::from_fn(|| chars.next_if(|c| c.is_ascii_alphabetic())).collect();
                match word.as_str() {
                    "true" => JsonValue::Bool(true),
                    "false" => JsonValue::Bool(false),
                    other => return Err(ParseError(format!("bad literal {other:?}"))),
                }
            }
            Some(c) if c.is_ascii_digit() => {
                let digits: String =
                    std::iter::from_fn(|| chars.next_if(|c| c.is_ascii_digit())).collect();
                JsonValue::Number(
                    digits
                        .parse()
                        .map_err(|_| ParseError(format!("bad number {digits:?}")))?,
                )
            }
            other => return Err(ParseError(format!("unexpected value start {other:?}"))),
        };
        fields.0.insert(key, value);
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            other => return Err(ParseError(format!("expected ',' or '}}', found {other:?}"))),
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err(ParseError("trailing content after object".into()));
    }
    Ok(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.next_if(|c| c.is_whitespace()).is_some() {}
}

fn parse_string(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<String, ParseError> {
    if chars.next() != Some('"') {
        return Err(ParseError("expected '\"'".into()));
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|_| ParseError(format!("bad \\u escape {hex:?}")))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| ParseError(format!("bad codepoint {code:#x}")))?,
                    );
                }
                other => return Err(ParseError(format!("bad escape {other:?}"))),
            },
            Some(c) => out.push(c),
            None => return Err(ParseError("unterminated string".into())),
        }
    }
}

/// Merges sharded campaign result files into the single stream
/// `sweep run` (unsharded) would have produced: records are reordered by
/// scenario index, which is a pure function of the spec and therefore
/// globally unique and gap-free across a complete shard set.
///
/// # Errors
///
/// Rejects duplicate scenario indices (overlapping shards — merging them
/// would silently drop measurements), index gaps (an incomplete shard
/// set — a summary of it would claim campaign coverage it does not have),
/// and shards that disagree on the campaign name or step budget (shards of
/// *different* runs — their measurements are not comparable, e.g. one
/// shard re-run after changing `--max-steps` or `--name`).
pub fn merge_shards(shards: &[Vec<SweepRecord>]) -> Result<Vec<SweepRecord>, ParseError> {
    let mut by_index: BTreeMap<u64, SweepRecord> = BTreeMap::new();
    let mut run_identity: Option<(String, u64)> = None;
    for shard in shards {
        for record in shard {
            let identity = (record.campaign.clone(), record.max_steps);
            match &run_identity {
                None => run_identity = Some(identity),
                Some(expected) if *expected != identity => {
                    return Err(ParseError(format!(
                        "shards come from different campaign runs: \
                         campaign {:?} with max_steps {} vs campaign {:?} with max_steps {}",
                        expected.0, expected.1, identity.0, identity.1
                    )));
                }
                Some(_) => {}
            }
            if by_index.insert(record.scenario, record.clone()).is_some() {
                return Err(ParseError(format!(
                    "scenario index {} appears in more than one shard",
                    record.scenario
                )));
            }
        }
    }
    for (expected, actual) in by_index.keys().enumerate() {
        if expected as u64 != *actual {
            return Err(ParseError(format!(
                "scenario index {expected} is missing (shard set is incomplete)"
            )));
        }
    }
    Ok(by_index.into_values().collect())
}

/// Parses every non-empty line of a JSONL document.
pub fn parse_jsonl(text: &str) -> Result<Vec<SweepRecord>, ParseError> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(lineno, line)| {
            SweepRecord::parse(line)
                .map_err(|e| ParseError(format!("line {}: {}", lineno + 1, e.0)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SweepRecord {
        SweepRecord {
            campaign: "smoke \"quoted\"".into(),
            scenario: 17,
            n: 6,
            m: 2,
            k: 3,
            algorithm: "figure3-oneshot".into(),
            instances: 1,
            adversary: "obstruction:50".into(),
            mode: "sample".into(),
            backend: "scheduled".into(),
            contention_steps: 300,
            survivors: 2,
            crashes: 0,
            seed: 3,
            workload: "distinct".into(),
            max_steps: 1_000_000,
            steps: 812,
            stop: "scheduler-exhausted".into(),
            validity_ok: true,
            agreement_ok: true,
            progress_required: true,
            survivors_decided: true,
            decisions: 6,
            distinct_outputs_max: 3,
            total_ops: 1624,
            locations_written: 7,
            registers_written: 0,
            components_written: 7,
            register_bound: 6,
            component_bound: 7,
            bound_ok: true,
            explored_states: 0,
            explored_depth: 0,
            verified: false,
            frontier_peak: 0,
            seen_entries: 0,
            approx_bytes: 0,
            symmetry: "off".into(),
            orbit_states: 0,
            full_states_lower_bound: 0,
            reduction: "off".into(),
            expansions: 0,
            sleep_pruned: 0,
            persistent_expanded: 0,
            states_cut: 0,
            wall_us: 0,
            steps_per_sec: 0,
            proposals: 0,
            batches: 0,
            p50_us: 0,
            p90_us: 0,
            p99_us: 0,
            p999_us: 0,
            ops_per_sec: 0,
            decided_fingerprint: 0,
            goal: String::new(),
            target_registers: 0,
            witness_found: false,
            witness_depth: 0,
            registers_covered: 0,
            witness_registers: 0,
            witness_schedule: String::new(),
            witness_fingerprint: 0,
        }
    }

    #[test]
    fn symmetry_records_round_trip_and_off_stays_byte_compatible() {
        // Off: none of the three fields may leak into the line.
        let line = sample().to_json();
        for absent in ["symmetry", "orbit_states", "full_states_lower_bound"] {
            assert!(!line.contains(absent), "{absent} leaked into {line}");
        }
        // Requested + applied: all three round-trip.
        let mut reduced = sample();
        reduced.adversary = "exhaustive".into();
        reduced.mode = "explore".into();
        reduced.backend = "explore".into();
        reduced.symmetry = "process-ids".into();
        reduced.explored_states = 111;
        reduced.orbit_states = 111;
        reduced.full_states_lower_bound = 555;
        reduced.verified = true;
        let line = reduced.to_json();
        assert!(line.contains("\"symmetry\":\"process-ids\""), "{line}");
        assert!(line.contains("\"full_states_lower_bound\":555"), "{line}");
        assert_eq!(SweepRecord::parse(&line).unwrap(), reduced);
        // Requested + fell back: visible as fallback-off.
        let mut fallback = reduced;
        fallback.symmetry = "fallback-off".into();
        fallback.full_states_lower_bound = 111;
        let line = fallback.to_json();
        assert!(line.contains("\"symmetry\":\"fallback-off\""), "{line}");
        assert_eq!(SweepRecord::parse(&line).unwrap(), fallback);
    }

    #[test]
    fn reduction_records_round_trip_and_off_stays_byte_compatible() {
        // Off: none of the three fields may leak into the line.
        let line = sample().to_json();
        for absent in ["reduction", "expansions", "sleep_pruned"] {
            assert!(!line.contains(absent), "{absent} leaked into {line}");
        }
        // Requested + applied: all three round-trip, composed with symmetry.
        let mut reduced = sample();
        reduced.adversary = "exhaustive".into();
        reduced.mode = "explore".into();
        reduced.backend = "explore".into();
        reduced.symmetry = "process-ids".into();
        reduced.explored_states = 111;
        reduced.orbit_states = 111;
        reduced.full_states_lower_bound = 555;
        reduced.reduction = "sleep-set".into();
        reduced.expansions = 200;
        reduced.sleep_pruned = 400;
        reduced.verified = true;
        let line = reduced.to_json();
        assert!(line.contains("\"reduction\":\"sleep-set\""), "{line}");
        assert!(line.contains("\"expansions\":200"), "{line}");
        assert!(line.contains("\"sleep_pruned\":400"), "{line}");
        assert_eq!(SweepRecord::parse(&line).unwrap(), reduced);
        // Sleep-set records stay byte-identical to before the persistent-set
        // tier existed: the DPOR-only fields must not leak into them.
        for absent in ["persistent_expanded", "states_cut"] {
            assert!(!line.contains(absent), "{absent} leaked into {line}");
        }
        // Requested + fell back: visible as fallback-off, zero pruned.
        let mut fallback = reduced.clone();
        fallback.reduction = "fallback-off".into();
        fallback.sleep_pruned = 0;
        let line = fallback.to_json();
        assert!(line.contains("\"reduction\":\"fallback-off\""), "{line}");
        assert_eq!(SweepRecord::parse(&line).unwrap(), fallback);
        // Persistent sets: the two DPOR fields are emitted and round-trip.
        let mut dpor = reduced;
        dpor.reduction = "persistent-set".into();
        dpor.persistent_expanded = 150;
        dpor.states_cut = 37;
        let line = dpor.to_json();
        assert!(line.contains("\"reduction\":\"persistent-set\""), "{line}");
        assert!(line.contains("\"persistent_expanded\":150"), "{line}");
        assert!(line.contains("\"states_cut\":37"), "{line}");
        assert_eq!(SweepRecord::parse(&line).unwrap(), dpor);
    }

    #[test]
    fn explore_records_round_trip_and_carry_verification() {
        let mut record = sample();
        record.adversary = "exhaustive".into();
        record.mode = "explore".into();
        record.backend = "explore".into();
        record.stop = "state-space-exhausted".into();
        record.explored_states = 12345;
        record.explored_depth = 77;
        record.verified = true;
        let line = record.to_json();
        assert!(line.contains("\"explored_depth\":77"), "{line}");
        let parsed = SweepRecord::parse(&line).unwrap();
        assert_eq!(parsed, record);
        assert!(parsed.verified);
        assert_eq!(parsed.explored_states, 12345);
        assert_eq!(parsed.explored_depth, 77);
    }

    #[test]
    fn threaded_records_round_trip_with_wall_clock_fields() {
        let mut record = sample();
        record.adversary = "hardware".into();
        record.backend = "threaded".into();
        record.wall_us = 42_000;
        record.steps_per_sec = 1_000_000;
        let line = record.to_json();
        assert!(line.contains("\"backend\":\"threaded\""), "{line}");
        assert!(line.contains("\"wall_us\":42000"), "{line}");
        assert!(line.contains("\"steps_per_sec\":1000000"), "{line}");
        let parsed = SweepRecord::parse(&line).unwrap();
        assert_eq!(parsed, record);
    }

    #[test]
    fn serve_records_round_trip_with_latency_and_throughput_fields() {
        let mut record = sample();
        record.algorithm = "figure4-repeated".into();
        record.adversary = "open-loop".into();
        record.mode = "serve".into();
        record.backend = "serve".into();
        record.stop = "drained".into();
        record.wall_us = 1_000_000;
        record.steps_per_sec = 2_500_000;
        record.proposals = 100_000;
        record.batches = 12_500;
        record.p50_us = 1_050;
        record.p90_us = 1_110;
        record.p99_us = 1_160;
        record.p999_us = 1_200;
        record.ops_per_sec = 100_000;
        record.decided_fingerprint = 0xDEAD_BEEF;
        let line = record.to_json();
        assert!(line.contains("\"backend\":\"serve\""), "{line}");
        assert!(line.contains("\"p50_us\":1050"), "{line}");
        assert!(line.contains("\"ops_per_sec\":100000"), "{line}");
        assert!(
            line.contains("\"decided_fingerprint\":3735928559"),
            "{line}"
        );
        let parsed = SweepRecord::parse(&line).unwrap();
        assert_eq!(parsed, record);
        // A serve-mode line without an explicit backend implies the service.
        let stripped = line.replace(",\"backend\":\"serve\"", "");
        assert_eq!(SweepRecord::parse(&stripped).unwrap().backend, "serve");
    }

    #[test]
    fn adversary_search_records_round_trip_with_witness_fields() {
        let mut record = sample();
        record.adversary = "adversary-search:covering".into();
        record.mode = "adversary-search".into();
        record.backend = "adversary-search".into();
        record.stop = "target-reached".into();
        record.seed = 0;
        record.explored_states = 321;
        record.explored_depth = 6;
        record.verified = true;
        record.symmetry = "process-ids".into();
        record.orbit_states = 321;
        record.goal = "covering".into();
        record.target_registers = 3;
        record.witness_found = true;
        record.witness_depth = 6;
        record.registers_covered = 2;
        record.witness_registers = 3;
        record.witness_schedule = "0.1.0.1.2.2".into();
        record.witness_fingerprint = 0xFEED;
        let line = record.to_json();
        assert!(line.contains("\"goal\":\"covering\""), "{line}");
        assert!(line.contains("\"target_registers\":3"), "{line}");
        assert!(
            line.contains("\"witness_schedule\":\"0.1.0.1.2.2\""),
            "{line}"
        );
        assert!(line.contains("\"witness_fingerprint\":65261"), "{line}");
        let parsed = SweepRecord::parse(&line).unwrap();
        assert_eq!(parsed, record);
        // A search line without an explicit backend implies the search.
        let stripped = line.replace(",\"backend\":\"adversary-search\"", "");
        assert_eq!(stripped, line, "backend must be implied by the mode");
        assert_eq!(parsed.backend, "adversary-search");
    }

    #[test]
    fn non_search_records_omit_witness_fields_for_byte_compatibility() {
        for line in [sample().to_json(), {
            let mut explored = sample();
            explored.mode = "explore".into();
            explored.backend = "explore".into();
            explored.to_json()
        }] {
            for absent in [
                "\"goal\"",
                "target_registers",
                "witness_found",
                "witness_depth",
                "registers_covered",
                "witness_registers",
                "witness_schedule",
                "witness_fingerprint",
            ] {
                assert!(!line.contains(absent), "{absent} leaked into {line}");
            }
        }
    }

    #[test]
    fn scheduled_records_omit_backend_fields_for_byte_compatibility() {
        // A scheduled sampled record must encode exactly as before the
        // backend axis existed — no backend, wall-clock or depth fields.
        let line = sample().to_json();
        for absent in [
            "backend",
            "wall_us",
            "steps_per_sec",
            "explored_depth",
            "proposals",
            "batches",
            "p50_us",
            "ops_per_sec",
            "decided_fingerprint",
        ] {
            assert!(!line.contains(absent), "{absent} leaked into {line}");
        }
        let parsed = SweepRecord::parse(&line).unwrap();
        assert_eq!(parsed.backend, "scheduled");
        // Explore-mode lines without an explicit backend imply the explorer.
        let mut explored = sample();
        explored.mode = "explore".into();
        explored.backend = "explore".into();
        let reparsed = SweepRecord::parse(&explored.to_json()).unwrap();
        assert_eq!(reparsed.backend, "explore");
    }

    #[test]
    fn merge_shards_reassembles_the_unsharded_stream() {
        let records: Vec<SweepRecord> = (0..6)
            .map(|i| {
                let mut r = sample();
                r.scenario = i;
                r
            })
            .collect();
        let even: Vec<SweepRecord> = records.iter().step_by(2).cloned().collect();
        let odd: Vec<SweepRecord> = records.iter().skip(1).step_by(2).cloned().collect();
        // Shard order must not matter.
        let merged = merge_shards(&[odd.clone(), even.clone()]).unwrap();
        assert_eq!(merged, records);

        let overlapping = merge_shards(&[even.clone(), records.clone()]);
        assert!(overlapping.unwrap_err().0.contains("more than one shard"));
        let incomplete = merge_shards(std::slice::from_ref(&odd));
        assert!(incomplete.unwrap_err().0.contains("incomplete"));
        assert_eq!(merge_shards(&[]).unwrap(), Vec::<SweepRecord>::new());

        // Shards of different runs (here: a re-run with another step
        // budget) must be rejected — their measurements are incomparable.
        let mut rerun = odd;
        for record in &mut rerun {
            record.max_steps = 999;
        }
        let mixed = merge_shards(&[even, rerun]);
        assert!(mixed.unwrap_err().0.contains("different campaign runs"));
    }

    #[test]
    fn records_without_the_new_fields_parse_with_defaults() {
        // A line as written before mode/crashes/explored_states/verified
        // existed: strip those fields from a current encoding.
        let line = sample()
            .to_json()
            .replace(",\"mode\":\"sample\"", "")
            .replace(",\"crashes\":0", "")
            .replace(",\"explored_states\":0", "")
            .replace(",\"verified\":false", "");
        assert!(!line.contains("\"mode\""), "field stripping failed: {line}");
        let parsed = SweepRecord::parse(&line).expect("old-format lines must parse");
        assert_eq!(parsed, sample());
        // Mistyped (rather than absent) new fields are still rejected.
        let bad = sample()
            .to_json()
            .replace("\"crashes\":0", "\"crashes\":\"no\"");
        assert!(SweepRecord::parse(&bad).is_err());
    }

    #[test]
    fn json_round_trips() {
        let record = sample();
        let line = record.to_json();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(!line.contains('\n'));
        let parsed = SweepRecord::parse(&line).unwrap();
        assert_eq!(parsed, record);
    }

    #[test]
    fn encoding_is_stable() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn safe_and_progress_reflect_flags() {
        let mut record = sample();
        assert!(record.safe() && record.progress_ok());
        record.agreement_ok = false;
        assert!(!record.safe());
        record.agreement_ok = true;
        record.survivors_decided = false;
        assert!(!record.progress_ok());
        record.progress_required = false;
        assert!(record.progress_ok());
    }

    #[test]
    fn jsonl_parsing_reports_line_numbers() {
        let good = sample().to_json();
        let text = format!("{good}\n\n{good}\n");
        assert_eq!(parse_jsonl(&text).unwrap().len(), 2);
        let bad = format!("{good}\nnot json\n");
        let error = parse_jsonl(&bad).unwrap_err();
        assert!(error.0.contains("line 2"), "{error}");
    }

    #[test]
    fn malformed_objects_are_rejected() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1",
            "{\"a\":1}{",
            "{\"a\":-1}",
            "{\"a\":nope}",
        ] {
            assert!(SweepRecord::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn keys_identify_scenarios_not_measurements() {
        let mut a = sample();
        let mut b = sample();
        b.steps = 99999;
        b.scenario = 4;
        assert_eq!(a.key(), b.key());
        a.seed = 5;
        assert_ne!(a.key(), b.key());
    }
}
