//! **sa-sweep** — the parallel scenario-sweep engine of the set-agreement
//! reproduction.
//!
//! The paper's claims are parameterized over `(n, m, k)`, algorithms and
//! adversaries; checking them at scale means running *families* of
//! scenarios, not one [`Scenario`](set_agreement::Scenario) at a time. This
//! crate provides:
//!
//! * [`CampaignSpec`] — a declarative campaign: a parameter grid (or
//!   explicit cells), algorithms, adversary templates (including
//!   `crash:<inner>:<f>` crash-failure wrappers), seeds, workload, budget
//!   and execution [mode](CampaignMode), buildable in code or parsed from
//!   `key = value` text (and rendered back via `Display`, which
//!   round-trips).
//! * [`expand`] — deterministic expansion into an indexed work list with
//!   per-scenario derived seeds (crash points included).
//! * [`run_campaign`] — parallel execution over a thread pool, streaming
//!   one [`SweepRecord`] JSON line per scenario **in deterministic order**:
//!   the same campaign and seed produce byte-identical output at any thread
//!   count. `mode = explore` campaigns route each (cell, algorithm) pair
//!   through the bounded exhaustive explorer instead of sampling one
//!   schedule, upgrading "sampled, 0 violations" to "exhaustively
//!   verified"; `explore-threads = N` hands them to the work-stealing
//!   parallel explorer, whose records (including memory statistics) are
//!   byte-identical at any worker count. `mode = serve` campaigns run each
//!   cell as a batched, sharded set-agreement service (`sa-serve`) under an
//!   open-loop load generator and the virtual clock, recording latency
//!   percentiles, `ops_per_sec` and a fingerprint of the decided-value
//!   log — byte-identical at any shard count.
//! * [`Summary`] / [`diff`] — per-cell aggregation (pass/fail counts, crash
//!   accounting, exhaustive-vs-sampled coverage, max space used vs the
//!   Figure 1 accounting, bound-violation flags) and a scenario-level
//!   regression diff between two result files.
//! * the `sweep` CLI binary — `sweep run`, `sweep serve`, `sweep
//!   summarize`, `sweep diff`.
//!
//! # Example
//!
//! ```
//! use sa_sweep::{run_campaign_collect, CampaignSpec, EngineConfig, Summary};
//!
//! let spec = CampaignSpec::parse(
//!     "name = doc\n\
//!      n = 4..5\n\
//!      m = 1\n\
//!      k = 2\n\
//!      algorithms = oneshot\n\
//!      adversaries = obstruction:20\n\
//!      seeds = 2\n",
//! )?;
//! let (records, outcome) = run_campaign_collect(&spec, EngineConfig::default());
//! assert_eq!(records.len(), 4); // 2 cells x 1 algorithm x 1 adversary x 2 seeds
//! assert!(outcome.clean());
//! let summary = Summary::of(&records);
//! assert_eq!(summary.safety_violations, 0);
//! # Ok::<(), sa_sweep::SpecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod grid;
mod lint;
mod record;
mod spec;
mod summary;

pub use engine::{run_campaign, run_campaign_collect, run_scenario, CampaignOutcome, EngineConfig};
pub use grid::{derive_seed, expand, ExpansionStats, ScenarioSpec};
pub use lint::{lint_source, parse_allowlist, AllowEntry, LintFinding};
pub use record::{merge_shards, parse_jsonl, ParseError, SweepRecord};
pub use spec::{
    parse_algorithms, parse_seeds, parse_values, AdversarySpec, BackendSpec, CampaignMode,
    CampaignSpec, ParamsSpec, SearchTarget, SpecError, Survivors, WorkloadSpec,
};
pub use summary::{diff, CellKey, CellSummary, DiffEntry, DiffReport, Summary};

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::{
        diff, expand, merge_shards, run_campaign, run_campaign_collect, AdversarySpec, BackendSpec,
        CampaignMode, CampaignOutcome, CampaignSpec, EngineConfig, ParamsSpec, SearchTarget,
        Summary, Survivors, SweepRecord, WorkloadSpec,
    };
}
