//! A textual determinism lint over the workspace sources.
//!
//! The sweep's central guarantee is byte-identical output at any thread,
//! worker, or shard count. That guarantee is easy to break silently: one
//! iteration over a hash-keyed collection feeding a serialized stream, one
//! ambient clock read in a deterministic path, and the same campaign stops
//! reproducing. `sweep lint` scans the sources for the constructs that have
//! historically caused such breaks and fails CI on any unexplained use:
//!
//! * `hash-collections` — hash-keyed std collections. Their iteration order
//!   is arbitrary; any traversal that escapes into serialized output must
//!   go through a sorted or `BTreeMap`-backed path instead.
//! * `unstable-hasher` — the std hasher types. Their algorithm is
//!   explicitly unstable across toolchain releases, so hashes derived from
//!   them must never be compared across builds.
//! * `wall-clock` — ambient clock reads, which are only legitimate in the
//!   paths that *report* wall-clock time (the threaded backend, the
//!   service's wall-clock mode).
//! * `thread-id` — scheduling-dependent thread identity leaking into
//!   results.
//!
//! Deliberate uses are suppressed through an allowlist file: one
//! `rule path-suffix` pair per line, `#` comments, matching every finding
//! of `rule` in files whose path ends with `path-suffix`. The allowlist is
//! the audit trail — each entry documents *why* the use cannot reach
//! serialized output.
//!
//! The lint is textual, not type-aware: it cannot follow dataflow, so it
//! flags every mention and relies on the allowlist for precision. That
//! trade keeps it dependency-free and fast enough to run on every CI push.

use std::fmt;

// The lint's own pattern table would otherwise be its first finding; the
// split literals keep the scanner from seeing itself.
const HASH_MAP: &str = concat!("Hash", "Map");
const HASH_SET: &str = concat!("Hash", "Set");
const DEFAULT_HASHER: &str = concat!("Default", "Hasher");
const RANDOM_STATE: &str = concat!("Random", "State");
const SYSTEM_TIME_NOW: &str = concat!("System", "Time::now");
const INSTANT_NOW: &str = concat!("Instant", "::now");
const THREAD_ID: &str = concat!("Thread", "Id");
const CURRENT_ID: &str = concat!("thread::current()", ".id()");

/// Every rule the lint checks, with the substrings that trigger it.
fn rules() -> [(&'static str, [&'static str; 2]); 4] {
    [
        ("hash-collections", [HASH_MAP, HASH_SET]),
        ("unstable-hasher", [DEFAULT_HASHER, RANDOM_STATE]),
        ("wall-clock", [SYSTEM_TIME_NOW, INSTANT_NOW]),
        ("thread-id", [CURRENT_ID, THREAD_ID]),
    ]
}

/// One suppression: every finding of `rule` in files whose path ends with
/// `path_suffix` is allowed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// The rule being suppressed (must name a real rule).
    pub rule: String,
    /// Path suffix the suppression applies to.
    pub path_suffix: String,
}

/// One determinism-relevant construct found in a source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Path of the file, as given to [`lint_source`].
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Name of the violated rule.
    pub rule: &'static str,
    /// The offending line, trimmed.
    pub text: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.text
        )
    }
}

/// Parses an allowlist file: one `rule path-suffix` pair per line, blank
/// lines and `#` comments ignored. Rejects unknown rule names — a typo in
/// the allowlist must not silently stop suppressing.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let known: Vec<&str> = rules().iter().map(|(rule, _)| *rule).collect();
    let mut entries = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let Some((rule, suffix)) = line.split_once(char::is_whitespace) else {
            return Err(format!(
                "allowlist line {}: want `rule path-suffix`, got {line:?}",
                index + 1
            ));
        };
        if !known.contains(&rule) {
            return Err(format!(
                "allowlist line {}: unknown rule {rule:?} (want one of {})",
                index + 1,
                known.join(", ")
            ));
        }
        entries.push(AllowEntry {
            rule: rule.to_string(),
            path_suffix: suffix.trim().to_string(),
        });
    }
    Ok(entries)
}

fn allowed(allow: &[AllowEntry], rule: &str, path: &str) -> bool {
    allow
        .iter()
        .any(|entry| entry.rule == rule && path.ends_with(&entry.path_suffix))
}

/// Lints one source file. Returns the findings not covered by `allow` and
/// the number of findings the allowlist suppressed. Comment-only lines are
/// skipped — prose *about* a hash map is not a use of one.
pub fn lint_source(path: &str, source: &str, allow: &[AllowEntry]) -> (Vec<LintFinding>, u64) {
    let mut findings = Vec::new();
    let mut suppressed = 0u64;
    for (index, line) in source.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            continue;
        }
        for (rule, patterns) in rules() {
            if !patterns.iter().any(|pattern| trimmed.contains(pattern)) {
                continue;
            }
            if allowed(allow, rule, path) {
                suppressed += 1;
            } else {
                findings.push(LintFinding {
                    path: path.to_string(),
                    line: index + 1,
                    rule,
                    text: trimmed.trim_end().to_string(),
                });
            }
        }
    }
    (findings, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_each_rule_once_per_line() {
        let source = format!(
            "use std::collections::{HASH_MAP};\n\
             let h = {DEFAULT_HASHER}::new();\n\
             let t = {INSTANT_NOW}();\n\
             let id = std::{CURRENT_ID};\n\
             let fine = std::collections::BTreeMap::new();\n"
        );
        let (findings, suppressed) = lint_source("src/x.rs", &source, &[]);
        assert_eq!(suppressed, 0);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert_eq!(
            rules,
            vec![
                "hash-collections",
                "unstable-hasher",
                "wall-clock",
                "thread-id"
            ]
        );
        assert_eq!(findings[0].line, 1);
        assert!(findings[0]
            .to_string()
            .starts_with("src/x.rs:1: [hash-collections]"));
    }

    #[test]
    fn comments_about_hash_maps_are_not_findings() {
        let source = format!(
            "// a {HASH_MAP} would be wrong here\n\
             /// doc prose naming {DEFAULT_HASHER}\n\
             //! module prose naming {INSTANT_NOW}\n"
        );
        let (findings, _) = lint_source("src/x.rs", &source, &[]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn allowlist_suppresses_by_rule_and_path_suffix() {
        let allow_text = "# seen-set: iteration order never escapes\n\
             hash-collections runtime/src/explore.rs\n\
             wall-clock src/lib.rs # threaded timing\n";
        let allow = parse_allowlist(allow_text).unwrap();
        assert_eq!(allow.len(), 2);
        let source = format!("use std::collections::{HASH_SET};\n");
        let (findings, suppressed) = lint_source("crates/runtime/src/explore.rs", &source, &allow);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(suppressed, 1);
        // The suffix does not match a different file, and the rule does not
        // cover a different construct in the matching file.
        let (findings, _) = lint_source("crates/search/src/driver.rs", &source, &allow);
        assert_eq!(findings.len(), 1);
        let clock = format!("let t = {INSTANT_NOW}();\n");
        let (findings, _) = lint_source("crates/runtime/src/explore.rs", &clock, &allow);
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn allowlists_with_unknown_rules_or_shapes_are_rejected() {
        let err = parse_allowlist("ample-sets src/x.rs\n").unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
        let err = parse_allowlist("hash-collections\n").unwrap_err();
        assert!(err.contains("want `rule path-suffix`"), "{err}");
        assert!(parse_allowlist("# only comments\n\n").unwrap().is_empty());
    }
}
