//! Expansion of a [`CampaignSpec`] into a concrete, deterministically seeded
//! work list.
//!
//! Expansion is the single place where scenario *identity* is fixed: the
//! order of the returned list, every scenario's index and every derived seed
//! are pure functions of the spec, never of thread count or timing. The
//! engine exploits this to produce byte-identical JSONL output at any level
//! of parallelism.

use crate::spec::{
    AdversarySpec, BackendSpec, CampaignMode, CampaignSpec, Survivors, WorkloadSpec,
};
use sa_model::Params;
use set_agreement::runtime::{ReductionMode, SearchGoal, ServeLoad, SymmetryMode, Workload};
use set_agreement::{Adversary, Algorithm};

/// Mixes a campaign seed and a scenario's *identity* (its
/// [`SweepRecord::key`](crate::SweepRecord::key)-equivalent string) into an
/// independent per-scenario seed: FNV-1a over the identity, then a
/// SplitMix64 finalizer over the campaign seed.
///
/// Deriving from identity rather than list position means growing a
/// campaign (more seeds, cells, algorithms or adversaries) leaves every
/// pre-existing scenario's stream untouched, so `sweep diff` against an
/// older result file reports only genuine changes.
pub fn derive_seed(campaign_seed: u64, identity: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in identity.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = campaign_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(hash.wrapping_mul(0xA24B_AED4_963E_E407));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One fully concrete scenario of an expanded campaign.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Position in the campaign's deterministic order.
    pub index: u64,
    /// Parameter triple.
    pub params: Params,
    /// Algorithm to run.
    pub algorithm: Algorithm,
    /// How this scenario executes: one sampled schedule, or exhaustive
    /// exploration of every interleaving.
    pub mode: CampaignMode,
    /// Which backend runs a sampled scenario (the explorer always runs
    /// explore-mode scenarios; this field is [`BackendSpec::Scheduled`]
    /// there).
    pub backend: BackendSpec,
    /// The adversary template this scenario was expanded from (`None` for
    /// exhaustive and threaded scenarios: exploration quantifies over all
    /// schedules, and on real threads the hardware schedules).
    pub adversary_spec: Option<AdversarySpec>,
    /// The concrete, seeded adversary (`None` for exhaustive and threaded
    /// scenarios).
    pub adversary: Option<Adversary>,
    /// A stable label for the schedule source: the adversary template's
    /// label, `hardware` for threaded scenarios, or `exhaustive`.
    pub adversary_label: String,
    /// Contention steps of the obstruction phase (0 for other adversaries).
    pub contention_steps: u64,
    /// Survivor count the adversary restricts to (0 when it never
    /// restricts). For crash adversaries, survivors that crash are not
    /// counted.
    pub survivors: usize,
    /// Processes with a seed-derived crash point (0 for crash-free
    /// scenarios).
    pub crashes: usize,
    /// The campaign-level seed index this scenario belongs to.
    pub seed: u64,
    /// The seed actually driving the scenario's RNGs (derived).
    pub derived_seed: u64,
    /// The workload the processes propose.
    pub workload: Workload,
    /// A stable label for the workload.
    pub workload_label: String,
    /// Step budget (path depth bound for exhaustive scenarios).
    pub max_steps: u64,
    /// State budget for exhaustive scenarios (unused when sampling).
    pub max_states: u64,
    /// Worker threads for exhaustive scenarios: 0 = serial explorer, any
    /// other value = the work-stealing parallel explorer (unused when
    /// sampling). Not part of the scenario's identity — exploration output
    /// is byte-identical at any worker count.
    pub explore_threads: usize,
    /// Symmetry reduction for exhaustive scenarios (always
    /// [`SymmetryMode::Off`] when sampling). Like `explore_threads`, not
    /// part of the scenario's identity.
    pub symmetry: SymmetryMode,
    /// Sleep-set partial-order reduction for exhaustive and search
    /// scenarios (always [`ReductionMode::Off`] when sampling or serving).
    /// Like `symmetry`, not part of the scenario's identity: it changes
    /// how many expansions the explorer performs, never a verdict.
    pub reduction: ReductionMode,
    /// Spill frozen frontier levels and seen-set shards to disk when the
    /// explorer exceeds its resident budget (exhaustive scenarios only).
    /// Like `explore_threads`, not part of the scenario's identity —
    /// exploration output is byte-identical with spill on or off.
    pub spill: bool,
    /// Resident-memory budget in MiB for the explorer's spill decisions
    /// (0 = unlimited; unused when sampling). Not part of the scenario's
    /// identity.
    pub max_resident_mb: u64,
    /// Service worker threads for serve scenarios (0 in other modes).
    /// Like `explore_threads`, not part of the scenario's identity: serve
    /// records are byte-identical at any shard count.
    pub shards: usize,
    /// Batch cutoff for serve scenarios (0 in other modes).
    pub batch_max: usize,
    /// Simulated clients for serve scenarios (0 in other modes).
    pub clients: usize,
    /// Proposals per virtual tick for serve scenarios (0 in other modes).
    pub rate: u64,
    /// Virtual ticks before the drain for serve scenarios (0 in other
    /// modes).
    pub duration: u64,
    /// The campaign workload translated for the service's load generator
    /// ([`ServeLoad::Distinct`] in other modes, where [`Self::workload`]
    /// carries the inputs instead).
    pub serve_load: ServeLoad,
    /// The witness goal an adversary-search scenario hunts for
    /// ([`SearchGoal::Covering`] in other modes, where it is unused).
    pub goal: SearchGoal,
    /// The register count at which an adversary-search scenario stops early
    /// (0 = no target, and always 0 in other modes). Resolved from the
    /// spec's [`SearchTarget`](crate::spec::SearchTarget) per cell, so
    /// `auto` has already become this cell's `n + 2m − k` here.
    pub target_registers: usize,
    /// Maximum schedule depth for adversary-search scenarios (0 in other
    /// modes).
    pub search_depth: u64,
}

impl ScenarioSpec {
    /// `true` if the adversary eventually restricts to at most `m`
    /// processes, i.e. the paper's progress condition obliges the survivors
    /// to decide.
    pub fn progress_required(&self) -> bool {
        self.survivors > 0 && self.survivors <= self.params.m()
    }

    /// The execution-backend label recorded for this scenario: `scheduled`
    /// or `threaded` for sampled scenarios, `explore` or `parallel-explore`
    /// for exhaustive ones, `adversary-search` for goal-directed searches.
    pub fn backend_label(&self) -> &'static str {
        match self.mode {
            CampaignMode::Explore if self.explore_threads > 0 => "parallel-explore",
            CampaignMode::Explore => "explore",
            CampaignMode::Sample => self.backend.label(),
            CampaignMode::Serve => "serve",
            CampaignMode::AdversarySearch => "adversary-search",
        }
    }
}

/// Statistics of an expansion: how many combinations were generated and how
/// many were skipped as inapplicable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExpansionStats {
    /// Scenarios in the work list.
    pub scenarios: u64,
    /// Combinations skipped because the algorithm is undefined for the cell
    /// (e.g. the wide baseline with `n < k + 2m`).
    pub skipped_inapplicable: u64,
}

/// The result of instantiating an adversary template for one cell:
/// the concrete adversary, its contention steps, the survivor count it
/// eventually restricts to, and how many processes it crashes.
struct InstantiatedAdversary {
    adversary: Adversary,
    contention_steps: u64,
    survivors: usize,
    crashes: usize,
}

fn instantiate_adversary(
    spec: &AdversarySpec,
    params: Params,
    derived_seed: u64,
) -> InstantiatedAdversary {
    let plain = |adversary, contention_steps, survivors| InstantiatedAdversary {
        adversary,
        contention_steps,
        survivors,
        crashes: 0,
    };
    match spec {
        AdversarySpec::RoundRobin => plain(Adversary::RoundRobin, 0, 0),
        AdversarySpec::Random => plain(Adversary::Random { seed: derived_seed }, 0, 0),
        AdversarySpec::Solo => plain(
            Adversary::Solo {
                process: (derived_seed % params.n() as u64) as usize,
            },
            0,
            1,
        ),
        AdversarySpec::Bursts { burst_len } => plain(
            Adversary::Bursts {
                burst_len: *burst_len,
                seed: derived_seed,
            },
            0,
            0,
        ),
        AdversarySpec::Obstruction {
            contention_factor,
            survivors,
        } => {
            let contention_steps = contention_factor * params.n() as u64;
            let count = match survivors {
                Survivors::M => params.m(),
                Survivors::Count(c) => (*c).min(params.n()).max(1),
            };
            plain(
                Adversary::Obstruction {
                    contention_steps,
                    survivors: count,
                    seed: derived_seed,
                },
                contention_steps,
                count,
            )
        }
        AdversarySpec::Crash { inner, crashes } => {
            // Decorrelate the inner scheduler's stream from the crash
            // pattern: both derive from the adversary sub-seed, but via
            // distinct purposes.
            let base =
                instantiate_adversary(inner, params, derive_seed(derived_seed, "crash-inner"));
            // Always leave at least one process alive: crashing all n says
            // nothing about the algorithm.
            let count = (*crashes).min(params.n().saturating_sub(1));
            // Crash points are spread over a horizon of a few round-robin
            // rounds, so early, mid-run and never-reached crashes all occur
            // across a campaign's seeds. A point of 0 crashes the process
            // before its first step.
            let horizon = 8 * params.n() as u64 + 8;
            let mut pool: Vec<usize> = (0..params.n()).collect();
            let mut crash_after: Vec<(usize, u64)> = Vec::with_capacity(count);
            for i in 0..count {
                let pick = derive_seed(derived_seed, &format!("crash-pick-{i}")) as usize
                    % (pool.len() - i);
                pool.swap(i, i + pick);
                let step = derive_seed(derived_seed, &format!("crash-step-{i}")) % horizon;
                crash_after.push((pool[i], step));
            }
            crash_after.sort_unstable();
            let adversary = Adversary::Crash {
                inner: Box::new(base.adversary),
                crash_after,
            };
            // A crashed survivor is off the hook, so the progress obligation
            // covers exactly the adversary's obligated set.
            let survivors = adversary.obligated(params.n()).len();
            InstantiatedAdversary {
                adversary,
                contention_steps: base.contention_steps,
                survivors,
                crashes: count,
            }
        }
    }
}

fn instantiate_workload(
    spec: WorkloadSpec,
    params: Params,
    instances: usize,
    derived_seed: u64,
) -> Workload {
    match spec {
        WorkloadSpec::Distinct => Workload::all_distinct(params.n(), instances),
        WorkloadSpec::Uniform(value) => Workload::uniform(params.n(), instances, value),
        WorkloadSpec::Random { universe } => {
            Workload::random(params.n(), instances, universe, derived_seed)
        }
    }
}

/// Expands a campaign into its deterministic work list.
///
/// In [`CampaignMode::Sample`], iteration order is cells → algorithms →
/// backends → adversaries → seeds. Indices number that order, but
/// per-scenario seeds derive from scenario *identity*, so growing any axis
/// leaves pre-existing scenarios' streams unchanged (only their stream
/// position moves). Inapplicable (cell, algorithm) combinations are skipped
/// and counted.
///
/// The threaded backend collapses the adversary axis (the hardware
/// schedules, so adversary templates do not apply): one scenario per seed,
/// labelled `hardware`. Seeds still matter — they pin the workload and the
/// thread spawn order.
///
/// In [`CampaignMode::Explore`], the backend, adversary and seed axes all
/// collapse: exhaustive exploration quantifies over **all** schedules, so
/// one scenario per applicable (cell, algorithm) pair is produced, labelled
/// `exhaustive`.
///
/// In [`CampaignMode::Serve`], the algorithm, adversary and backend axes
/// all collapse too: a service run always executes batches of the Figure 4
/// repeated algorithm under the open-loop load generator. One scenario per
/// cell × seed is produced (the seed pins the generator's value stream),
/// labelled `open-loop`.
///
/// In [`CampaignMode::AdversarySearch`], the backend, adversary and seed
/// axes collapse exactly as in explore mode (the search quantifies over
/// all schedules), but the goal list becomes an axis: one scenario per
/// applicable (cell, algorithm, goal) triple, labelled
/// `adversary-search:<goal>`.
pub fn expand(spec: &CampaignSpec) -> (Vec<ScenarioSpec>, ExpansionStats) {
    let mut scenarios = Vec::new();
    let mut stats = ExpansionStats::default();
    let combinations_per_backend = |backend: &BackendSpec| match backend {
        BackendSpec::Scheduled => (spec.adversaries.len() * spec.seeds.len()) as u64,
        BackendSpec::Threaded => spec.seeds.len() as u64,
    };
    for params in spec.params.cells() {
        if spec.mode == CampaignMode::Serve {
            for &seed in &spec.seeds {
                scenarios.push(serve_scenario(spec, scenarios.len() as u64, params, seed));
            }
            continue;
        }
        for &algorithm in &spec.algorithms {
            if !algorithm.applicable(params) {
                stats.skipped_inapplicable += match spec.mode {
                    CampaignMode::Sample => {
                        spec.backends.iter().map(combinations_per_backend).sum()
                    }
                    CampaignMode::Explore => 1,
                    CampaignMode::AdversarySearch => spec.goals.len() as u64,
                    // Serve never reaches the algorithm loop.
                    CampaignMode::Serve => 0,
                };
                continue;
            }
            match spec.mode {
                CampaignMode::Sample => {
                    for backend in &spec.backends {
                        match backend {
                            BackendSpec::Scheduled => {
                                for adversary_spec in &spec.adversaries {
                                    for &seed in &spec.seeds {
                                        scenarios.push(sampled_scenario(
                                            spec,
                                            scenarios.len() as u64,
                                            params,
                                            algorithm,
                                            adversary_spec,
                                            seed,
                                        ));
                                    }
                                }
                            }
                            BackendSpec::Threaded => {
                                for &seed in &spec.seeds {
                                    scenarios.push(threaded_scenario(
                                        spec,
                                        scenarios.len() as u64,
                                        params,
                                        algorithm,
                                        seed,
                                    ));
                                }
                            }
                        }
                    }
                }
                CampaignMode::Explore => {
                    scenarios.push(explore_scenario(
                        spec,
                        scenarios.len() as u64,
                        params,
                        algorithm,
                    ));
                }
                CampaignMode::AdversarySearch => {
                    for &goal in &spec.goals {
                        scenarios.push(search_scenario(
                            spec,
                            scenarios.len() as u64,
                            params,
                            algorithm,
                            goal,
                        ));
                    }
                }
                CampaignMode::Serve => unreachable!("serve collapses the algorithm axis"),
            }
        }
    }
    stats.scenarios = scenarios.len() as u64;
    (scenarios, stats)
}

fn sampled_scenario(
    spec: &CampaignSpec,
    index: u64,
    params: Params,
    algorithm: Algorithm,
    adversary_spec: &AdversarySpec,
    seed: u64,
) -> ScenarioSpec {
    // Seed from the scenario's identity, never its index: extending the
    // campaign must not reseed existing scenarios (see `derive_seed`).
    let identity = format!(
        "n{} m{} k{} {} x{} {} seed{} {}",
        params.n(),
        params.m(),
        params.k(),
        algorithm.label(),
        algorithm.instances(),
        adversary_spec.label(),
        seed,
        spec.workload.label()
    );
    let derived_seed = derive_seed(spec.campaign_seed, &identity);
    // Distinct sub-seeds per purpose: a random workload and a random
    // scheduler must not consume the same stream, or inputs would
    // correlate with the schedule.
    let instantiated = instantiate_adversary(
        adversary_spec,
        params,
        derive_seed(derived_seed, "adversary"),
    );
    let workload = instantiate_workload(
        spec.workload,
        params,
        algorithm.instances(),
        derive_seed(derived_seed, "workload"),
    );
    ScenarioSpec {
        index,
        params,
        algorithm,
        mode: CampaignMode::Sample,
        backend: BackendSpec::Scheduled,
        adversary_label: adversary_spec.label(),
        adversary_spec: Some(adversary_spec.clone()),
        adversary: Some(instantiated.adversary),
        contention_steps: instantiated.contention_steps,
        survivors: instantiated.survivors,
        crashes: instantiated.crashes,
        seed,
        derived_seed,
        workload,
        workload_label: spec.workload.label(),
        max_steps: spec.max_steps,
        max_states: spec.max_states,
        explore_threads: 0,
        symmetry: SymmetryMode::Off,
        reduction: ReductionMode::Off,
        spill: false,
        max_resident_mb: 0,
        shards: 0,
        batch_max: 0,
        clients: 0,
        rate: 0,
        duration: 0,
        serve_load: ServeLoad::Distinct,
        goal: SearchGoal::Covering,
        target_registers: 0,
        search_depth: 0,
    }
}

/// A sampled scenario on the threaded backend. The adversary axis does not
/// apply (the hardware schedules — labelled `hardware`), no process is
/// obligated to decide (all `n` threads may contend forever, which the
/// paper's progress condition permits), and the derived seed pins the
/// workload and spawn order so the run is reproducible up to interleaving.
fn threaded_scenario(
    spec: &CampaignSpec,
    index: u64,
    params: Params,
    algorithm: Algorithm,
    seed: u64,
) -> ScenarioSpec {
    let identity = format!(
        "n{} m{} k{} {} x{} hardware seed{} {}",
        params.n(),
        params.m(),
        params.k(),
        algorithm.label(),
        algorithm.instances(),
        seed,
        spec.workload.label()
    );
    let derived_seed = derive_seed(spec.campaign_seed, &identity);
    let workload = instantiate_workload(
        spec.workload,
        params,
        algorithm.instances(),
        derive_seed(derived_seed, "workload"),
    );
    ScenarioSpec {
        index,
        params,
        algorithm,
        mode: CampaignMode::Sample,
        backend: BackendSpec::Threaded,
        adversary_label: "hardware".into(),
        adversary_spec: None,
        adversary: None,
        contention_steps: 0,
        survivors: 0,
        crashes: 0,
        seed,
        derived_seed,
        workload,
        workload_label: spec.workload.label(),
        max_steps: spec.max_steps,
        max_states: spec.max_states,
        explore_threads: 0,
        symmetry: SymmetryMode::Off,
        reduction: ReductionMode::Off,
        spill: false,
        max_resident_mb: 0,
        shards: 0,
        batch_max: 0,
        clients: 0,
        rate: 0,
        duration: 0,
        serve_load: ServeLoad::Distinct,
        goal: SearchGoal::Covering,
        target_registers: 0,
        search_depth: 0,
    }
}

fn explore_scenario(
    spec: &CampaignSpec,
    index: u64,
    params: Params,
    algorithm: Algorithm,
) -> ScenarioSpec {
    let identity = format!(
        "n{} m{} k{} {} x{} exhaustive seed0 {}",
        params.n(),
        params.m(),
        params.k(),
        algorithm.label(),
        algorithm.instances(),
        spec.workload.label()
    );
    let derived_seed = derive_seed(spec.campaign_seed, &identity);
    let workload = instantiate_workload(
        spec.workload,
        params,
        algorithm.instances(),
        derive_seed(derived_seed, "workload"),
    );
    ScenarioSpec {
        index,
        params,
        algorithm,
        mode: CampaignMode::Explore,
        backend: BackendSpec::Scheduled,
        adversary_label: "exhaustive".into(),
        adversary_spec: None,
        adversary: None,
        contention_steps: 0,
        survivors: 0,
        crashes: 0,
        seed: 0,
        derived_seed,
        workload,
        workload_label: spec.workload.label(),
        max_steps: spec.max_steps,
        max_states: spec.max_states,
        explore_threads: spec.explore_threads,
        symmetry: spec.symmetry,
        reduction: spec.reduction,
        spill: spec.spill,
        max_resident_mb: spec.max_resident_mb,
        shards: 0,
        batch_max: 0,
        clients: 0,
        rate: 0,
        duration: 0,
        serve_load: ServeLoad::Distinct,
        goal: SearchGoal::Covering,
        target_registers: 0,
        search_depth: 0,
    }
}

/// A serve-mode scenario. The cell's `m` and `k` parameterise every batch's
/// Figure 4 instance (`n` names the cell; batch width is dynamic, capped by
/// `batch-max`). The algorithm, adversary and backend axes collapse — a
/// service run is always repeated set agreement under the open-loop load
/// generator — while seeds remain an axis pinning the generator's value
/// stream. The shard count is deliberately *not* part of the identity:
/// under the virtual clock the record is byte-identical at any shard count.
fn serve_scenario(spec: &CampaignSpec, index: u64, params: Params, seed: u64) -> ScenarioSpec {
    let identity = format!(
        "n{} m{} k{} repeated serve seed{} {}",
        params.n(),
        params.m(),
        params.k(),
        seed,
        spec.workload.label()
    );
    let derived_seed = derive_seed(spec.campaign_seed, &identity);
    let workload = instantiate_workload(
        spec.workload,
        params,
        1,
        derive_seed(derived_seed, "workload"),
    );
    ScenarioSpec {
        index,
        params,
        algorithm: Algorithm::Repeated(1),
        mode: CampaignMode::Serve,
        backend: BackendSpec::Scheduled,
        adversary_label: "open-loop".into(),
        adversary_spec: None,
        adversary: None,
        contention_steps: 0,
        survivors: 0,
        crashes: 0,
        seed,
        derived_seed,
        workload,
        workload_label: spec.workload.label(),
        max_steps: spec.max_steps,
        max_states: spec.max_states,
        explore_threads: 0,
        symmetry: SymmetryMode::Off,
        reduction: ReductionMode::Off,
        spill: false,
        max_resident_mb: 0,
        shards: spec.shards,
        batch_max: spec.batch_max,
        clients: spec.clients,
        rate: spec.rate,
        duration: spec.duration,
        serve_load: match spec.workload {
            WorkloadSpec::Distinct => ServeLoad::Distinct,
            WorkloadSpec::Uniform(value) => ServeLoad::Uniform(value),
            WorkloadSpec::Random { universe } => ServeLoad::Random { universe },
        },
        goal: SearchGoal::Covering,
        target_registers: 0,
        search_depth: 0,
    }
}

/// An adversary-search scenario. Like explore mode, the backend, adversary
/// and seed axes collapse (the search quantifies over all schedules); the
/// goal joins the identity instead, labelled `adversary-search:<goal>`.
/// The spec's target is resolved to this cell's concrete register count
/// here, so `auto` pins `n + 2m − k` into the scenario. `explore-threads`,
/// `symmetry` and `reduction` carry over as the search's "how" knobs —
/// results are byte-identical at any worker count, symmetry
/// canonicalization prunes orbits without changing the best witness, and
/// sleep sets prune commuting expansions without changing the verdict.
fn search_scenario(
    spec: &CampaignSpec,
    index: u64,
    params: Params,
    algorithm: Algorithm,
    goal: SearchGoal,
) -> ScenarioSpec {
    let identity = format!(
        "n{} m{} k{} {} x{} adversary-search:{} seed0 {}",
        params.n(),
        params.m(),
        params.k(),
        algorithm.label(),
        algorithm.instances(),
        goal.label(),
        spec.workload.label()
    );
    let derived_seed = derive_seed(spec.campaign_seed, &identity);
    let workload = instantiate_workload(
        spec.workload,
        params,
        algorithm.instances(),
        derive_seed(derived_seed, "workload"),
    );
    ScenarioSpec {
        index,
        params,
        algorithm,
        mode: CampaignMode::AdversarySearch,
        backend: BackendSpec::Scheduled,
        adversary_label: format!("adversary-search:{}", goal.label()),
        adversary_spec: None,
        adversary: None,
        contention_steps: 0,
        survivors: 0,
        crashes: 0,
        seed: 0,
        derived_seed,
        workload,
        workload_label: spec.workload.label(),
        max_steps: spec.max_steps,
        max_states: spec.max_states,
        explore_threads: spec.explore_threads,
        symmetry: spec.symmetry,
        reduction: spec.reduction,
        spill: false,
        max_resident_mb: 0,
        shards: 0,
        batch_max: 0,
        clients: 0,
        rate: 0,
        duration: 0,
        serve_load: ServeLoad::Distinct,
        goal,
        target_registers: spec.target.for_params(&params),
        search_depth: spec.search_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ParamsSpec;

    fn small_spec() -> CampaignSpec {
        CampaignSpec {
            name: "test".into(),
            params: ParamsSpec::Grid {
                n: vec![4, 5],
                m: vec![1],
                k: vec![2],
            },
            algorithms: vec![Algorithm::OneShot, Algorithm::WideBaseline],
            adversaries: vec![AdversarySpec::RoundRobin, AdversarySpec::Random],
            seeds: vec![0, 1, 2],
            workload: WorkloadSpec::Distinct,
            max_steps: 1000,
            campaign_seed: 7,
            ..CampaignSpec::default()
        }
    }

    #[test]
    fn expansion_is_deterministic_and_indexed() {
        let (a, stats_a) = expand(&small_spec());
        let (b, stats_b) = expand(&small_spec());
        assert_eq!(stats_a, stats_b);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.derived_seed, y.derived_seed);
            assert_eq!(x.adversary, y.adversary);
        }
        for (i, s) in a.iter().enumerate() {
            assert_eq!(s.index, i as u64);
        }
    }

    #[test]
    fn inapplicable_combinations_are_skipped_and_counted() {
        // WideBaseline needs n >= k + 2m = 4: applicable for both n = 4, 5,
        // so nothing is skipped here...
        let (scenarios, stats) = expand(&small_spec());
        assert_eq!(stats.skipped_inapplicable, 0);
        assert_eq!(scenarios.len(), 2 * 2 * 2 * 3);

        // ...but shrinking to n = 4, m = 2, k = 2 (k + 2m = 6 > 4) skips it.
        let mut spec = small_spec();
        spec.params = ParamsSpec::Grid {
            n: vec![4],
            m: vec![2],
            k: vec![2],
        };
        let (scenarios, stats) = expand(&spec);
        assert_eq!(stats.skipped_inapplicable, 2 * 3);
        assert!(scenarios.iter().all(|s| s.algorithm == Algorithm::OneShot));
    }

    #[test]
    fn derived_seeds_differ_across_scenarios_and_campaign_seeds() {
        let (scenarios, _) = expand(&small_spec());
        let mut seeds: Vec<u64> = scenarios.iter().map(|s| s.derived_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), scenarios.len(), "derived seeds collide");

        let mut other = small_spec();
        other.campaign_seed = 8;
        let (reseeded, _) = expand(&other);
        assert!(scenarios
            .iter()
            .zip(&reseeded)
            .all(|(a, b)| a.derived_seed != b.derived_seed));
    }

    #[test]
    fn adversary_and_workload_streams_are_decorrelated() {
        let mut spec = small_spec();
        spec.workload = WorkloadSpec::Random { universe: 100 };
        let (scenarios, _) = expand(&spec);
        for s in &scenarios {
            if let Some(Adversary::Random { seed }) = s.adversary {
                // The scheduler's seed must be neither the base derived seed
                // nor the workload's sub-seed.
                assert_ne!(seed, s.derived_seed);
                assert_ne!(seed, derive_seed(s.derived_seed, "workload"));
            }
        }
    }

    #[test]
    fn growing_the_campaign_does_not_reseed_existing_scenarios() {
        let (before, _) = expand(&small_spec());
        let mut grown = small_spec();
        grown.seeds.push(9);
        grown.adversaries.push(AdversarySpec::Solo);
        grown.params = ParamsSpec::Grid {
            n: vec![4, 5, 6],
            m: vec![1],
            k: vec![2],
        };
        let (after, _) = expand(&grown);
        let after_seeds: std::collections::BTreeMap<String, u64> = after
            .iter()
            .map(|s| {
                (
                    format!(
                        "{:?} {:?} {:?} {}",
                        s.params, s.algorithm, s.adversary_spec, s.seed
                    ),
                    s.derived_seed,
                )
            })
            .collect();
        for s in &before {
            let key = format!(
                "{:?} {:?} {:?} {}",
                s.params, s.algorithm, s.adversary_spec, s.seed
            );
            assert_eq!(
                after_seeds.get(&key),
                Some(&s.derived_seed),
                "scenario {key} was reseeded by growing the campaign"
            );
        }
    }

    #[test]
    fn progress_obligation_tracks_survivor_counts() {
        let mut spec = small_spec();
        spec.adversaries = vec![
            AdversarySpec::Obstruction {
                contention_factor: 10,
                survivors: Survivors::M,
            },
            AdversarySpec::Obstruction {
                contention_factor: 10,
                survivors: Survivors::Count(3),
            },
            AdversarySpec::RoundRobin,
        ];
        let (scenarios, _) = expand(&spec);
        for s in &scenarios {
            match s.adversary_spec.as_ref().unwrap() {
                AdversarySpec::Obstruction {
                    survivors: Survivors::M,
                    ..
                } => {
                    assert!(s.progress_required());
                    assert_eq!(s.survivors, s.params.m());
                    assert_eq!(s.contention_steps, 10 * s.params.n() as u64);
                }
                AdversarySpec::Obstruction {
                    survivors: Survivors::Count(3),
                    ..
                } => {
                    // 3 survivors > m = 1: termination not guaranteed.
                    assert!(!s.progress_required());
                }
                _ => assert!(!s.progress_required()),
            }
        }
    }

    #[test]
    fn crash_templates_derive_deterministic_bounded_crash_points() {
        let mut spec = small_spec();
        spec.adversaries = vec![AdversarySpec::Crash {
            inner: Box::new(AdversarySpec::RoundRobin),
            crashes: 3,
        }];
        let (scenarios, _) = expand(&spec);
        let (again, _) = expand(&spec);
        assert!(!scenarios.is_empty());
        for (s, t) in scenarios.iter().zip(&again) {
            assert_eq!(s.adversary, t.adversary, "crash pattern not deterministic");
            assert_eq!(s.crashes, 3.min(s.params.n() - 1));
            let Some(Adversary::Crash { crash_after, .. }) = &s.adversary else {
                panic!("expected crash adversary");
            };
            assert_eq!(crash_after.len(), s.crashes);
            let mut processes: Vec<usize> = crash_after.iter().map(|(p, _)| *p).collect();
            processes.dedup();
            assert_eq!(processes.len(), s.crashes, "crash picks collide");
            assert!(processes.iter().all(|p| *p < s.params.n()));
            // Round-robin never restricts, so no process is obligated.
            assert_eq!(s.survivors, 0);
            assert!(!s.progress_required());
        }
        // Distinct seeds produce distinct crash patterns somewhere.
        assert!(
            scenarios
                .iter()
                .zip(scenarios.iter().skip(1))
                .any(|(a, b)| a.adversary != b.adversary),
            "all crash patterns identical"
        );
    }

    #[test]
    fn crashing_every_obstruction_survivor_lifts_the_obligation() {
        // n = 4, survivors = m = 1, crash up to 3 processes: across seeds
        // some scenarios crash the lone survivor (obligation lifted), and
        // any scenario that keeps it obligated has survivors <= m.
        let mut spec = small_spec();
        spec.seeds = (0..16).collect();
        spec.adversaries = vec![AdversarySpec::Crash {
            inner: Box::new(AdversarySpec::Obstruction {
                contention_factor: 10,
                survivors: Survivors::M,
            }),
            crashes: 3,
        }];
        let (scenarios, _) = expand(&spec);
        assert!(scenarios.iter().any(|s| s.survivors == 0));
        assert!(scenarios.iter().any(|s| s.survivors == 1));
        for s in &scenarios {
            assert!(s.survivors <= s.params.m());
            assert_eq!(s.contention_steps, 10 * s.params.n() as u64);
        }
    }

    #[test]
    fn threaded_backend_collapses_the_adversary_axis() {
        let mut spec = small_spec();
        spec.backends = vec![BackendSpec::Scheduled, BackendSpec::Threaded];
        let (scenarios, stats) = expand(&spec);
        // 2 cells x 2 algorithms x (2 adversaries x 3 seeds scheduled
        // + 3 seeds threaded).
        assert_eq!(scenarios.len(), 2 * 2 * (2 * 3 + 3));
        assert_eq!(stats.scenarios, scenarios.len() as u64);
        let threaded: Vec<_> = scenarios
            .iter()
            .filter(|s| s.backend == BackendSpec::Threaded)
            .collect();
        assert_eq!(threaded.len(), 2 * 2 * 3);
        for s in &threaded {
            assert_eq!(s.backend_label(), "threaded");
            assert_eq!(s.adversary_label, "hardware");
            assert!(s.adversary.is_none() && s.adversary_spec.is_none());
            assert_eq!((s.survivors, s.crashes, s.contention_steps), (0, 0, 0));
            assert!(!s.progress_required());
        }
        for s in &scenarios {
            if s.backend == BackendSpec::Scheduled {
                assert_eq!(s.backend_label(), "scheduled");
                assert!(s.adversary.is_some());
            }
        }
        // Indices still number the deterministic order.
        for (i, s) in scenarios.iter().enumerate() {
            assert_eq!(s.index, i as u64);
        }
    }

    #[test]
    fn adding_the_threaded_backend_does_not_reseed_scheduled_scenarios() {
        let (before, _) = expand(&small_spec());
        let mut grown = small_spec();
        grown.backends = vec![BackendSpec::Scheduled, BackendSpec::Threaded];
        let (after, _) = expand(&grown);
        let scheduled_after: Vec<_> = after
            .iter()
            .filter(|s| s.backend == BackendSpec::Scheduled)
            .collect();
        assert_eq!(before.len(), scheduled_after.len());
        for (b, a) in before.iter().zip(&scheduled_after) {
            assert_eq!(b.derived_seed, a.derived_seed, "scheduled run reseeded");
            assert_eq!(b.adversary, a.adversary);
        }
    }

    #[test]
    fn threaded_scenarios_have_deterministic_distinct_seeds() {
        let mut spec = small_spec();
        spec.backends = vec![BackendSpec::Threaded];
        let (scenarios, stats) = expand(&spec);
        // Adversary axis collapsed: 2 cells x 2 algorithms x 3 seeds.
        assert_eq!(scenarios.len(), 12);
        assert_eq!(stats.skipped_inapplicable, 0);
        let (again, _) = expand(&spec);
        let mut seeds = Vec::new();
        for (s, t) in scenarios.iter().zip(&again) {
            assert_eq!(s.derived_seed, t.derived_seed, "not deterministic");
            seeds.push(s.derived_seed);
        }
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), scenarios.len(), "derived seeds collide");
    }

    #[test]
    fn explore_mode_collapses_adversary_and_seed_axes() {
        let mut spec = small_spec();
        spec.mode = CampaignMode::Explore;
        spec.max_states = 1234;
        let (scenarios, stats) = expand(&spec);
        // 2 cells x 2 algorithms, adversaries and seeds ignored.
        assert_eq!(scenarios.len(), 4);
        assert_eq!(stats.scenarios, 4);
        for s in &scenarios {
            assert_eq!(s.mode, CampaignMode::Explore);
            assert_eq!(s.adversary_label, "exhaustive");
            assert!(s.adversary.is_none() && s.adversary_spec.is_none());
            assert_eq!(s.seed, 0);
            assert_eq!(s.max_states, 1234);
            assert!(!s.progress_required());
        }
    }

    #[test]
    fn adversary_search_mode_collapses_axes_and_sweeps_goals() {
        let mut spec = small_spec();
        spec.mode = CampaignMode::AdversarySearch;
        spec.goals = SearchGoal::all().to_vec();
        spec.search_depth = 40;
        let (scenarios, stats) = expand(&spec);
        // 2 cells x 2 algorithms x 2 goals; adversaries, backends and
        // seeds all collapse.
        assert_eq!(scenarios.len(), 2 * 2 * 2);
        assert_eq!(stats.scenarios, 8);
        for s in &scenarios {
            assert_eq!(s.mode, CampaignMode::AdversarySearch);
            assert_eq!(s.backend_label(), "adversary-search");
            assert_eq!(
                s.adversary_label,
                format!("adversary-search:{}", s.goal.label())
            );
            assert!(s.adversary.is_none() && s.adversary_spec.is_none());
            assert_eq!(s.seed, 0);
            assert_eq!(s.search_depth, 40);
            // target = auto resolves the cell's n + 2m - k.
            assert_eq!(s.target_registers, s.params.snapshot_components());
            assert!(!s.progress_required());
        }
        // Both goals appear for every (cell, algorithm) pair, covering
        // first (spec order).
        assert_eq!(scenarios[0].goal, SearchGoal::Covering);
        assert_eq!(scenarios[1].goal, SearchGoal::BlockWrite);
        // Distinct goals get distinct identities, hence distinct seeds.
        assert_ne!(scenarios[0].derived_seed, scenarios[1].derived_seed);
    }

    #[test]
    fn search_targets_resolve_against_the_spec() {
        use crate::spec::SearchTarget;
        let mut spec = small_spec();
        spec.mode = CampaignMode::AdversarySearch;
        spec.target = SearchTarget::None;
        let (scenarios, _) = expand(&spec);
        assert!(scenarios.iter().all(|s| s.target_registers == 0));
        spec.target = SearchTarget::Registers(5);
        let (scenarios, _) = expand(&spec);
        assert!(scenarios.iter().all(|s| s.target_registers == 5));
    }

    #[test]
    fn serve_mode_collapses_algorithm_adversary_and_backend_axes() {
        let mut spec = small_spec();
        spec.mode = CampaignMode::Serve;
        let (scenarios, stats) = expand(&spec);
        // 2 cells x 3 seeds; the algorithm, adversary and backend axes
        // (2 x 2 x 1 in `small_spec`) all collapse.
        assert_eq!(scenarios.len(), 2 * 3);
        assert_eq!(stats.skipped_inapplicable, 0);
        for s in &scenarios {
            assert_eq!(s.mode, CampaignMode::Serve);
            assert_eq!(s.backend_label(), "serve");
            assert_eq!(s.adversary_label, "open-loop");
            assert_eq!(s.algorithm, Algorithm::Repeated(1));
            assert_eq!(s.batch_max, spec.batch_max);
            assert_eq!(s.clients, spec.clients);
            assert_eq!(s.rate, spec.rate);
            assert_eq!(s.duration, spec.duration);
            assert!(!s.progress_required());
        }
    }

    #[test]
    fn serve_identities_ignore_the_shard_count() {
        let mut narrow = small_spec();
        narrow.mode = CampaignMode::Serve;
        let mut wide = narrow.clone();
        wide.shards = 7;
        let (a, _) = expand(&narrow);
        let (b, _) = expand(&wide);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.derived_seed, y.derived_seed);
            assert_eq!(y.shards, 7);
        }
    }

    #[test]
    fn solo_adversary_picks_a_process_in_range() {
        let mut spec = small_spec();
        spec.adversaries = vec![AdversarySpec::Solo];
        let (scenarios, _) = expand(&spec);
        for s in &scenarios {
            let Some(Adversary::Solo { process }) = s.adversary else {
                panic!("expected solo adversary");
            };
            assert!(process < s.params.n());
            assert_eq!(s.survivors, 1);
            assert!(s.progress_required());
        }
    }
}
