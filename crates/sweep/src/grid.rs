//! Expansion of a [`CampaignSpec`] into a concrete, deterministically seeded
//! work list.
//!
//! Expansion is the single place where scenario *identity* is fixed: the
//! order of the returned list, every scenario's index and every derived seed
//! are pure functions of the spec, never of thread count or timing. The
//! engine exploits this to produce byte-identical JSONL output at any level
//! of parallelism.

use crate::spec::{AdversarySpec, CampaignSpec, Survivors, WorkloadSpec};
use sa_model::Params;
use set_agreement::runtime::Workload;
use set_agreement::{Adversary, Algorithm};

/// Mixes a campaign seed and a scenario's *identity* (its
/// [`SweepRecord::key`](crate::SweepRecord::key)-equivalent string) into an
/// independent per-scenario seed: FNV-1a over the identity, then a
/// SplitMix64 finalizer over the campaign seed.
///
/// Deriving from identity rather than list position means growing a
/// campaign (more seeds, cells, algorithms or adversaries) leaves every
/// pre-existing scenario's stream untouched, so `sweep diff` against an
/// older result file reports only genuine changes.
pub fn derive_seed(campaign_seed: u64, identity: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in identity.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = campaign_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(hash.wrapping_mul(0xA24B_AED4_963E_E407));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One fully concrete scenario of an expanded campaign.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Position in the campaign's deterministic order.
    pub index: u64,
    /// Parameter triple.
    pub params: Params,
    /// Algorithm to run.
    pub algorithm: Algorithm,
    /// The adversary template this scenario was expanded from.
    pub adversary_spec: AdversarySpec,
    /// The concrete, seeded adversary.
    pub adversary: Adversary,
    /// Contention steps of the obstruction phase (0 for other adversaries).
    pub contention_steps: u64,
    /// Survivor count the adversary restricts to (0 when it never
    /// restricts).
    pub survivors: usize,
    /// The campaign-level seed index this scenario belongs to.
    pub seed: u64,
    /// The seed actually driving the scenario's RNGs (derived).
    pub derived_seed: u64,
    /// The workload the processes propose.
    pub workload: Workload,
    /// A stable label for the workload.
    pub workload_label: String,
    /// Step budget.
    pub max_steps: u64,
}

impl ScenarioSpec {
    /// `true` if the adversary eventually restricts to at most `m`
    /// processes, i.e. the paper's progress condition obliges the survivors
    /// to decide.
    pub fn progress_required(&self) -> bool {
        self.survivors > 0 && self.survivors <= self.params.m()
    }
}

/// Statistics of an expansion: how many combinations were generated and how
/// many were skipped as inapplicable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExpansionStats {
    /// Scenarios in the work list.
    pub scenarios: u64,
    /// Combinations skipped because the algorithm is undefined for the cell
    /// (e.g. the wide baseline with `n < k + 2m`).
    pub skipped_inapplicable: u64,
}

fn instantiate_adversary(
    spec: &AdversarySpec,
    params: Params,
    derived_seed: u64,
) -> (Adversary, u64, usize) {
    match spec {
        AdversarySpec::RoundRobin => (Adversary::RoundRobin, 0, 0),
        AdversarySpec::Random => (Adversary::Random { seed: derived_seed }, 0, 0),
        AdversarySpec::Solo => (
            Adversary::Solo {
                process: (derived_seed % params.n() as u64) as usize,
            },
            0,
            1,
        ),
        AdversarySpec::Bursts { burst_len } => (
            Adversary::Bursts {
                burst_len: *burst_len,
                seed: derived_seed,
            },
            0,
            0,
        ),
        AdversarySpec::Obstruction {
            contention_factor,
            survivors,
        } => {
            let contention_steps = contention_factor * params.n() as u64;
            let count = match survivors {
                Survivors::M => params.m(),
                Survivors::Count(c) => (*c).min(params.n()).max(1),
            };
            (
                Adversary::Obstruction {
                    contention_steps,
                    survivors: count,
                    seed: derived_seed,
                },
                contention_steps,
                count,
            )
        }
    }
}

fn instantiate_workload(
    spec: WorkloadSpec,
    params: Params,
    instances: usize,
    derived_seed: u64,
) -> Workload {
    match spec {
        WorkloadSpec::Distinct => Workload::all_distinct(params.n(), instances),
        WorkloadSpec::Uniform(value) => Workload::uniform(params.n(), instances, value),
        WorkloadSpec::Random { universe } => {
            Workload::random(params.n(), instances, universe, derived_seed)
        }
    }
}

/// Expands a campaign into its deterministic work list.
///
/// Iteration order is cells → algorithms → adversaries → seeds. Indices
/// number that order, but per-scenario seeds derive from scenario
/// *identity*, so growing any axis leaves pre-existing scenarios' streams
/// unchanged (only their stream position moves). Inapplicable
/// (cell, algorithm) combinations are skipped and counted.
pub fn expand(spec: &CampaignSpec) -> (Vec<ScenarioSpec>, ExpansionStats) {
    let mut scenarios = Vec::new();
    let mut stats = ExpansionStats::default();
    for params in spec.params.cells() {
        for &algorithm in &spec.algorithms {
            if !algorithm.applicable(params) {
                stats.skipped_inapplicable += (spec.adversaries.len() * spec.seeds.len()) as u64;
                continue;
            }
            for adversary_spec in &spec.adversaries {
                for &seed in &spec.seeds {
                    let index = scenarios.len() as u64;
                    // Seed from the scenario's identity, never its index:
                    // extending the campaign must not reseed existing
                    // scenarios (see `derive_seed`).
                    let identity = format!(
                        "n{} m{} k{} {} x{} {} seed{} {}",
                        params.n(),
                        params.m(),
                        params.k(),
                        algorithm.label(),
                        algorithm.instances(),
                        adversary_spec.label(),
                        seed,
                        spec.workload.label()
                    );
                    let derived_seed = derive_seed(spec.campaign_seed, &identity);
                    // Distinct sub-seeds per purpose: a random workload and
                    // a random scheduler must not consume the same stream,
                    // or inputs would correlate with the schedule.
                    let (adversary, contention_steps, survivors) = instantiate_adversary(
                        adversary_spec,
                        params,
                        derive_seed(derived_seed, "adversary"),
                    );
                    let workload = instantiate_workload(
                        spec.workload,
                        params,
                        algorithm.instances(),
                        derive_seed(derived_seed, "workload"),
                    );
                    scenarios.push(ScenarioSpec {
                        index,
                        params,
                        algorithm,
                        adversary_spec: adversary_spec.clone(),
                        adversary,
                        contention_steps,
                        survivors,
                        seed,
                        derived_seed,
                        workload,
                        workload_label: spec.workload.label(),
                        max_steps: spec.max_steps,
                    });
                }
            }
        }
    }
    stats.scenarios = scenarios.len() as u64;
    (scenarios, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ParamsSpec;

    fn small_spec() -> CampaignSpec {
        CampaignSpec {
            name: "test".into(),
            params: ParamsSpec::Grid {
                n: vec![4, 5],
                m: vec![1],
                k: vec![2],
            },
            algorithms: vec![Algorithm::OneShot, Algorithm::WideBaseline],
            adversaries: vec![AdversarySpec::RoundRobin, AdversarySpec::Random],
            seeds: vec![0, 1, 2],
            workload: WorkloadSpec::Distinct,
            max_steps: 1000,
            campaign_seed: 7,
        }
    }

    #[test]
    fn expansion_is_deterministic_and_indexed() {
        let (a, stats_a) = expand(&small_spec());
        let (b, stats_b) = expand(&small_spec());
        assert_eq!(stats_a, stats_b);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.derived_seed, y.derived_seed);
            assert_eq!(x.adversary, y.adversary);
        }
        for (i, s) in a.iter().enumerate() {
            assert_eq!(s.index, i as u64);
        }
    }

    #[test]
    fn inapplicable_combinations_are_skipped_and_counted() {
        // WideBaseline needs n >= k + 2m = 4: applicable for both n = 4, 5,
        // so nothing is skipped here...
        let (scenarios, stats) = expand(&small_spec());
        assert_eq!(stats.skipped_inapplicable, 0);
        assert_eq!(scenarios.len(), 2 * 2 * 2 * 3);

        // ...but shrinking to n = 4, m = 2, k = 2 (k + 2m = 6 > 4) skips it.
        let mut spec = small_spec();
        spec.params = ParamsSpec::Grid {
            n: vec![4],
            m: vec![2],
            k: vec![2],
        };
        let (scenarios, stats) = expand(&spec);
        assert_eq!(stats.skipped_inapplicable, 2 * 3);
        assert!(scenarios.iter().all(|s| s.algorithm == Algorithm::OneShot));
    }

    #[test]
    fn derived_seeds_differ_across_scenarios_and_campaign_seeds() {
        let (scenarios, _) = expand(&small_spec());
        let mut seeds: Vec<u64> = scenarios.iter().map(|s| s.derived_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), scenarios.len(), "derived seeds collide");

        let mut other = small_spec();
        other.campaign_seed = 8;
        let (reseeded, _) = expand(&other);
        assert!(scenarios
            .iter()
            .zip(&reseeded)
            .all(|(a, b)| a.derived_seed != b.derived_seed));
    }

    #[test]
    fn adversary_and_workload_streams_are_decorrelated() {
        let mut spec = small_spec();
        spec.workload = WorkloadSpec::Random { universe: 100 };
        let (scenarios, _) = expand(&spec);
        for s in &scenarios {
            if let Adversary::Random { seed } = s.adversary {
                // The scheduler's seed must be neither the base derived seed
                // nor the workload's sub-seed.
                assert_ne!(seed, s.derived_seed);
                assert_ne!(seed, derive_seed(s.derived_seed, "workload"));
            }
        }
    }

    #[test]
    fn growing_the_campaign_does_not_reseed_existing_scenarios() {
        let (before, _) = expand(&small_spec());
        let mut grown = small_spec();
        grown.seeds.push(9);
        grown.adversaries.push(AdversarySpec::Solo);
        grown.params = ParamsSpec::Grid {
            n: vec![4, 5, 6],
            m: vec![1],
            k: vec![2],
        };
        let (after, _) = expand(&grown);
        let after_seeds: std::collections::BTreeMap<String, u64> = after
            .iter()
            .map(|s| {
                (
                    format!(
                        "{:?} {:?} {:?} {}",
                        s.params, s.algorithm, s.adversary_spec, s.seed
                    ),
                    s.derived_seed,
                )
            })
            .collect();
        for s in &before {
            let key = format!(
                "{:?} {:?} {:?} {}",
                s.params, s.algorithm, s.adversary_spec, s.seed
            );
            assert_eq!(
                after_seeds.get(&key),
                Some(&s.derived_seed),
                "scenario {key} was reseeded by growing the campaign"
            );
        }
    }

    #[test]
    fn progress_obligation_tracks_survivor_counts() {
        let mut spec = small_spec();
        spec.adversaries = vec![
            AdversarySpec::Obstruction {
                contention_factor: 10,
                survivors: Survivors::M,
            },
            AdversarySpec::Obstruction {
                contention_factor: 10,
                survivors: Survivors::Count(3),
            },
            AdversarySpec::RoundRobin,
        ];
        let (scenarios, _) = expand(&spec);
        for s in &scenarios {
            match &s.adversary_spec {
                AdversarySpec::Obstruction {
                    survivors: Survivors::M,
                    ..
                } => {
                    assert!(s.progress_required());
                    assert_eq!(s.survivors, s.params.m());
                    assert_eq!(s.contention_steps, 10 * s.params.n() as u64);
                }
                AdversarySpec::Obstruction {
                    survivors: Survivors::Count(3),
                    ..
                } => {
                    // 3 survivors > m = 1: termination not guaranteed.
                    assert!(!s.progress_required());
                }
                _ => assert!(!s.progress_required()),
            }
        }
    }

    #[test]
    fn solo_adversary_picks_a_process_in_range() {
        let mut spec = small_spec();
        spec.adversaries = vec![AdversarySpec::Solo];
        let (scenarios, _) = expand(&spec);
        for s in &scenarios {
            let Adversary::Solo { process } = s.adversary else {
                panic!("expected solo adversary");
            };
            assert!(process < s.params.n());
            assert_eq!(s.survivors, 1);
            assert!(s.progress_required());
        }
    }
}
