//! The `Automaton` step-machine trait and decision events.

use crate::ids::{InputValue, InstanceId};
use crate::layout::MemoryLayout;
use crate::op::{Op, OpKind, Response};
use crate::symmetry::{IdRelabeling, SymmetryClass};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;
use std::hash::{Hash, Hasher};

/// An output event of a `Propose` operation: in instance `instance` the
/// process decided `value`.
///
/// One-shot algorithms always report `instance == 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Decision {
    /// The (1-based) instance of repeated set agreement this decision belongs to.
    pub instance: InstanceId,
    /// The decided value.
    pub value: InputValue,
}

impl Decision {
    /// Convenience constructor.
    pub fn new(instance: InstanceId, value: InputValue) -> Self {
        Decision { instance, value }
    }
}

/// A process automaton: the algorithm of one process, expressed as an
/// explicit state machine performing **one shared-memory operation per
/// step**.
///
/// This is exactly the granularity of the paper's model, and it is what makes
/// adversarial scheduling possible: a scheduler (or the Theorem 2 covering
/// adversary) can inspect the operation a process is *poised* to perform via
/// [`Automaton::poised`] before deciding whether to let it run.
///
/// The driving loop is always:
///
/// ```text
/// while let Some(op) = a.poised() {
///     let resp = memory.apply(op);      // atomic
///     let decisions = a.apply(resp);    // local computation
/// }
/// ```
///
/// The same automaton runs unchanged on the deterministic simulator
/// (`sa-runtime`) and on real threads (`sa-runtime::threaded`), because all
/// shared state lives behind the `Op`/`Response` exchange.
///
/// Implementations must be deterministic: the next poised operation is a
/// function of the local state only (the paper considers deterministic
/// algorithms).
pub trait Automaton {
    /// The type of values this algorithm stores in shared memory.
    type Value: Clone + Eq + Debug;

    /// The shared objects this automaton expects to exist.
    ///
    /// All automata participating in one execution must declare compatible
    /// layouts (the runtime uses the union).
    fn layout(&self) -> MemoryLayout;

    /// The shared-memory operation this process is poised to perform, or
    /// `None` if the process has halted (it has completed all the `Propose`
    /// operations it was configured to perform).
    fn poised(&self) -> Option<Op<Self::Value>>;

    /// Delivers the response of the poised operation and performs the local
    /// computation that follows it, returning any decisions produced by this
    /// step.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called while [`Automaton::poised`]
    /// returns `None` or with a response of the wrong shape; both indicate a
    /// bug in the driver, not in user code.
    fn apply(&mut self, response: Response<Self::Value>) -> Vec<Decision>;

    /// `true` once the process has halted.
    fn is_halted(&self) -> bool {
        self.poised().is_none()
    }

    /// How this automaton transforms under process-id relabeling — what a
    /// symmetry-reduced explorer may assume about it.
    ///
    /// The default is [`SymmetryClass::Opaque`]: nothing is known, and a
    /// symmetry-reduced exploration must fall back to plain exploration
    /// rather than risk an unsound prune. Automata opting in declare
    /// [`SymmetryClass::Anonymous`] (no ids anywhere) or
    /// [`SymmetryClass::IdCarrying`] (ids rewritten completely by
    /// [`Automaton::relabeled`] and [`Automaton::relabel_value`]).
    fn symmetry_class(&self) -> SymmetryClass {
        SymmetryClass::Opaque
    }

    /// A copy of this automaton with every embedded process id written
    /// through `relabel` (which must be a bijection).
    ///
    /// The default returns an unchanged clone, which is correct only for
    /// automata whose local state embeds no process id
    /// ([`SymmetryClass::Anonymous`]); [`SymmetryClass::IdCarrying`]
    /// automata must override it.
    fn relabeled(&self, relabel: &IdRelabeling) -> Self
    where
        Self: Sized + Clone,
    {
        let _ = relabel;
        self.clone()
    }

    /// Hashes the automaton's **behavioral** state — every field that can
    /// still influence a future [`Automaton::poised`] or
    /// [`Automaton::apply`] — with every embedded process id first mapped
    /// through `relabel`.
    ///
    /// This is the per-slot ingredient of the explorers' canonical state
    /// keys. Two contracts, checked by the orbit-soundness test battery:
    ///
    /// * **completeness** — together with the (relabeled) memory contents
    ///   and decisions, the hashed projection must determine all future
    ///   behavior. Fields that are provably dead (e.g. an input already
    ///   consumed into the preference) *may* be omitted, which is what lets
    ///   anonymous processes that have converged merge even when their
    ///   original inputs differed;
    /// * **relabel-consistency** — hashing `self.relabeled(σ)` under
    ///   `relabel` must equal hashing `self` under `relabel ∘ σ`.
    ///
    /// The default hashes the full state and ignores `relabel`, which is
    /// correct only for [`SymmetryClass::Anonymous`] automata without dead
    /// fields.
    fn hash_behavior<H: Hasher>(&self, relabel: &IdRelabeling, state: &mut H)
    where
        Self: Sized + Hash,
    {
        let _ = relabel;
        self.hash(state);
    }

    /// A copy of a shared-memory value with every embedded process id
    /// written through `relabel`.
    ///
    /// The default returns an unchanged clone, correct only for value types
    /// that embed no process id; [`SymmetryClass::IdCarrying`] automata
    /// whose values carry ids (e.g. Figure 3's `(pref, id)` pairs) must
    /// override it.
    fn relabel_value(value: &Self::Value, relabel: &IdRelabeling) -> Self::Value
    where
        Self: Sized,
    {
        let _ = relabel;
        value.clone()
    }

    /// A **length-based** estimate of the heap bytes owned by this
    /// automaton's local state beyond `size_of::<Self>()` — the deep-size
    /// hook behind the explorers' memory accounting.
    ///
    /// The default of 0 is correct for automata whose state is entirely
    /// inline (no `Vec`, `Arc` or other owned allocations). Automata with
    /// heap-owning fields must override it, or the explorers' resident-byte
    /// estimates undercount by the dominant term (the bug this hook fixes:
    /// a 4/1/3 cell reported ~430 MB while actually peaking near 3.8 GB).
    ///
    /// Estimates must be computed from **lengths, never capacities**, so
    /// they are pure functions of the configuration — that is what keeps
    /// the explorers' reports byte-identical at any worker count.
    fn approx_heap_bytes(&self) -> usize {
        0
    }

    /// A length-based estimate of the heap bytes owned by one shared-memory
    /// value beyond `size_of::<Self::Value>()`; the per-value counterpart
    /// of [`Automaton::approx_heap_bytes`], applied by the explorers to
    /// every occupied register and snapshot component. Same contract:
    /// lengths, never capacities. The default of 0 is correct for inline
    /// value types.
    fn value_heap_bytes(value: &Self::Value) -> usize
    where
        Self: Sized,
    {
        let _ = value;
        0
    }
}

/// The result of driving an automaton through a single step against some
/// memory. Produced by runtime drivers; bundled here so that both the
/// simulated and the threaded driver report the same shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepOutcome {
    /// The kind of operation performed.
    pub op_kind: OpKind,
    /// Decisions produced by this step.
    pub decisions: Vec<Decision>,
    /// Whether the automaton is halted after this step.
    pub halted: bool,
}

/// An accumulator of decisions grouped by instance, used by property checkers
/// and experiments to evaluate Validity and k-Agreement.
///
/// ```
/// use sa_model::{Decision, DecisionSet, ProcessId};
/// let mut set = DecisionSet::new();
/// set.record(ProcessId(0), Decision::new(1, 10));
/// set.record(ProcessId(1), Decision::new(1, 20));
/// set.record(ProcessId(0), Decision::new(2, 10));
/// assert_eq!(set.distinct_outputs(1), 2);
/// assert_eq!(set.distinct_outputs(2), 1);
/// assert_eq!(set.instances().count(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct DecisionSet {
    by_instance: BTreeMap<InstanceId, BTreeMap<crate::ProcessId, InputValue>>,
}

impl DecisionSet {
    /// Creates an empty decision set.
    pub fn new() -> Self {
        DecisionSet::default()
    }

    /// Records that `process` decided `decision.value` in `decision.instance`.
    ///
    /// A well-formed execution never has a process decide twice in the same
    /// instance; if it does (a protocol bug), the later value overwrites the
    /// earlier one and [`DecisionSet::double_decisions`] reports it.
    pub fn record(&mut self, process: crate::ProcessId, decision: Decision) {
        self.by_instance
            .entry(decision.instance)
            .or_default()
            .insert(process, decision.value);
    }

    /// Records every decision of an iterator for one process.
    pub fn record_all(
        &mut self,
        process: crate::ProcessId,
        decisions: impl IntoIterator<Item = Decision>,
    ) {
        for d in decisions {
            self.record(process, d);
        }
    }

    /// The instances for which at least one decision was recorded.
    pub fn instances(&self) -> impl Iterator<Item = InstanceId> + '_ {
        self.by_instance.keys().copied()
    }

    /// The set of distinct values output in `instance`.
    pub fn outputs(&self, instance: InstanceId) -> BTreeSet<InputValue> {
        self.by_instance
            .get(&instance)
            .map(|m| m.values().copied().collect())
            .unwrap_or_default()
    }

    /// The number of distinct values output in `instance`.
    pub fn distinct_outputs(&self, instance: InstanceId) -> usize {
        self.outputs(instance).len()
    }

    /// The value decided by `process` in `instance`, if any.
    pub fn decision_of(
        &self,
        process: crate::ProcessId,
        instance: InstanceId,
    ) -> Option<InputValue> {
        self.by_instance
            .get(&instance)
            .and_then(|m| m.get(&process))
            .copied()
    }

    /// The number of processes that decided in `instance`.
    pub fn deciders(&self, instance: InstanceId) -> usize {
        self.by_instance.get(&instance).map_or(0, |m| m.len())
    }

    /// Processes that decided more than once in some instance are impossible
    /// with this representation, but a driver can use this to double-check by
    /// re-recording: always empty here; kept for interface symmetry with
    /// trace-based checkers.
    pub fn double_decisions(&self) -> usize {
        0
    }

    /// Total number of recorded decisions across all instances.
    pub fn len(&self) -> usize {
        self.by_instance.values().map(|m| m.len()).sum()
    }

    /// `true` if no decision has been recorded.
    pub fn is_empty(&self) -> bool {
        self.by_instance.is_empty()
    }

    /// Merges another decision set into this one.
    pub fn merge(&mut self, other: &DecisionSet) {
        for (instance, decisions) in &other.by_instance {
            let entry = self.by_instance.entry(*instance).or_default();
            for (p, v) in decisions {
                entry.insert(*p, *v);
            }
        }
    }

    /// A length-based estimate of the heap bytes this set owns: its BTree
    /// nodes, charged per instance and per recorded decision. Part of the
    /// explorers' deep-size accounting; like every such estimate it is a
    /// pure function of the contents (lengths, never capacities).
    pub fn approx_heap_bytes(&self) -> usize {
        // A BTree entry costs its payload plus roughly three words of node
        // bookkeeping amortized across the node's occupancy.
        let per_instance = std::mem::size_of::<InstanceId>() + 24;
        let per_decision = std::mem::size_of::<(crate::ProcessId, InputValue)>() + 24;
        self.by_instance.len() * per_instance + self.len() * per_decision
    }

    /// A copy of this set with every process id written through `relabel`
    /// (which must be a bijection): the decisions of process `p` become the
    /// decisions of `relabel.apply(p)`. Used by the symmetry-reduced
    /// explorers' canonical state keys and the orbit-soundness tests.
    pub fn relabeled(&self, relabel: &crate::symmetry::IdRelabeling) -> DecisionSet {
        debug_assert!(relabel.is_bijection(), "relabeling a set needs a bijection");
        let mut relabeled = DecisionSet::new();
        for (instance, decisions) in &self.by_instance {
            for (p, v) in decisions {
                relabeled.record(relabel.apply(*p), Decision::new(*instance, *v));
            }
        }
        relabeled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProcessId;

    #[test]
    fn decision_ordering_is_by_instance_then_value() {
        let a = Decision::new(1, 5);
        let b = Decision::new(2, 0);
        assert!(a < b);
    }

    #[test]
    fn decision_set_groups_by_instance() {
        let mut set = DecisionSet::new();
        set.record(ProcessId(0), Decision::new(1, 7));
        set.record(ProcessId(1), Decision::new(1, 7));
        set.record(ProcessId(2), Decision::new(1, 9));
        assert_eq!(set.distinct_outputs(1), 2);
        assert_eq!(set.deciders(1), 3);
        assert_eq!(set.outputs(1).into_iter().collect::<Vec<_>>(), vec![7, 9]);
        assert_eq!(set.decision_of(ProcessId(1), 1), Some(7));
        assert_eq!(set.decision_of(ProcessId(1), 2), None);
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
    }

    #[test]
    fn empty_instance_has_no_outputs() {
        let set = DecisionSet::new();
        assert_eq!(set.distinct_outputs(3), 0);
        assert!(set.outputs(3).is_empty());
        assert!(set.is_empty());
    }

    #[test]
    fn merge_combines_instances() {
        let mut a = DecisionSet::new();
        a.record(ProcessId(0), Decision::new(1, 1));
        let mut b = DecisionSet::new();
        b.record(ProcessId(1), Decision::new(2, 2));
        b.record(ProcessId(1), Decision::new(1, 3));
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.instances().count(), 2);
    }

    #[test]
    fn record_all_collects_iterator() {
        let mut set = DecisionSet::new();
        set.record_all(
            ProcessId(4),
            vec![
                Decision::new(1, 1),
                Decision::new(2, 2),
                Decision::new(3, 3),
            ],
        );
        assert_eq!(set.len(), 3);
        assert_eq!(set.decision_of(ProcessId(4), 2), Some(2));
    }
}
