//! Problem parameters `(n, m, k)` and derived quantities.

use crate::error::ParamsError;
use std::fmt;

/// The parameters of an `m`-obstruction-free `k`-set agreement problem among
/// `n` processes.
///
/// The paper (and therefore this library) restricts attention to the regime
/// `1 ≤ m ≤ k < n`:
///
/// * for `m > k` the problem is unsolvable from registers (Lemma 1 of the
///   paper, via the wait-free set-agreement impossibility),
/// * for `k ≥ n` it is trivial (every process outputs its own input), so no
///   registers are needed and the bounds do not apply.
///
/// All derived quantities used throughout the paper are exposed as methods so
/// that algorithms, bounds and benchmarks agree on a single definition.
///
/// ```
/// use sa_model::Params;
/// let p = Params::new(10, 2, 4)?;
/// assert_eq!(p.n(), 10);
/// assert_eq!(p.m(), 2);
/// assert_eq!(p.k(), 4);
/// assert_eq!(p.snapshot_components(), 10 + 2 * 2 - 4);
/// assert_eq!(p.ell(), 10 - 4 + 2);
/// # Ok::<(), sa_model::ParamsError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Params {
    n: usize,
    m: usize,
    k: usize,
}

impl Params {
    /// Creates a parameter set, validating `1 ≤ m ≤ k < n` and `n ≥ 2`.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamsError`] describing the violated constraint.
    pub fn new(n: usize, m: usize, k: usize) -> Result<Self, ParamsError> {
        if n < 2 {
            return Err(ParamsError::TooFewProcesses { n });
        }
        if m == 0 {
            return Err(ParamsError::ZeroObstruction);
        }
        if k == 0 {
            return Err(ParamsError::ZeroAgreement);
        }
        if m > k {
            return Err(ParamsError::ObstructionExceedsAgreement { m, k });
        }
        if k >= n {
            return Err(ParamsError::AgreementNotBelowProcesses { k, n });
        }
        Ok(Params { n, m, k })
    }

    /// Parameters for classical obstruction-free consensus (`m = k = 1`).
    ///
    /// # Errors
    ///
    /// Returns an error if `n < 2`.
    pub fn consensus(n: usize) -> Result<Self, ParamsError> {
        Params::new(n, 1, 1)
    }

    /// The number of processes `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The obstruction degree `m`: termination is required whenever at most
    /// `m` processes take infinitely many steps.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The agreement degree `k`: at most `k` distinct values may be output
    /// per instance.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// `r = n + 2m − k`, the number of snapshot components used by the
    /// paper's non-anonymous algorithms (Figures 3 and 4).
    #[inline]
    pub fn snapshot_components(&self) -> usize {
        self.n + 2 * self.m - self.k
    }

    /// `ℓ = n − k + m`, the number of "late" processes that must agree on at
    /// most `m` values in the k-agreement proofs.
    #[inline]
    pub fn ell(&self) -> usize {
        self.n - self.k + self.m
    }

    /// `min(n + 2m − k, n)`: the paper's upper bound on the number of MWMR
    /// registers for (repeated and one-shot) non-anonymous set agreement
    /// (Theorems 7 and 8).
    #[inline]
    pub fn register_upper_bound(&self) -> usize {
        self.snapshot_components().min(self.n)
    }

    /// `n + m − k`: the paper's lower bound on the number of registers for
    /// repeated set agreement (Theorem 2).
    #[inline]
    pub fn repeated_lower_bound(&self) -> usize {
        self.n + self.m - self.k
    }

    /// `(m + 1)(n − k) + m²`: the number of snapshot components used by the
    /// anonymous algorithm (Figure 5).
    #[inline]
    pub fn anonymous_snapshot_components(&self) -> usize {
        (self.m + 1) * (self.n - self.k) + self.m * self.m
    }

    /// `(m + 1)(n − k) + m² + 1`: registers used by the anonymous *repeated*
    /// algorithm (Theorem 11) — the extra register is `H`.
    #[inline]
    pub fn anonymous_repeated_registers(&self) -> usize {
        self.anonymous_snapshot_components() + 1
    }

    /// `c = ⌈(k + 1) / m⌉`, the number of process groups used by the
    /// Theorem 2 lower-bound construction.
    #[inline]
    pub fn covering_groups(&self) -> usize {
        (self.k + 1).div_ceil(self.m)
    }

    /// `√(m(n/k − 2))` — any anonymous one-shot algorithm must use strictly
    /// more registers than this (Theorem 10). Returned as a float; use
    /// [`Params::anonymous_oneshot_lower_bound`] for the integer form.
    #[inline]
    pub fn anonymous_oneshot_lower_bound_raw(&self) -> f64 {
        let n = self.n as f64;
        let m = self.m as f64;
        let k = self.k as f64;
        let inner = m * (n / k - 2.0);
        if inner <= 0.0 {
            0.0
        } else {
            inner.sqrt()
        }
    }

    /// The smallest register count *not excluded* by Theorem 10, i.e.
    /// `⌊√(m(n/k − 2))⌋ + 1` (the theorem states strictly more than the square
    /// root are required).
    #[inline]
    pub fn anonymous_oneshot_lower_bound(&self) -> usize {
        self.anonymous_oneshot_lower_bound_raw().floor() as usize + 1
    }

    /// `true` when these parameters describe consensus (`k = 1`).
    #[inline]
    pub fn is_consensus(&self) -> bool {
        self.k == 1
    }

    /// `true` when the progress condition is plain obstruction-freedom
    /// (`m = 1`).
    #[inline]
    pub fn is_obstruction_free(&self) -> bool {
        self.m == 1
    }

    /// `true` when the progress condition is wait-freedom restricted to the
    /// solvable regime (`m = k`).
    #[inline]
    pub fn is_maximal_obstruction(&self) -> bool {
        self.m == self.k
    }
}

impl fmt::Debug for Params {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Params(n={}, m={}, k={})", self.n, self.m, self.k)
    }
}

impl fmt::Display for Params {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-obstruction-free {}-set agreement among {} processes",
            self.m, self.k, self.n
        )
    }
}

/// An iterator over all valid parameter triples `(n, m, k)` within the given
/// inclusive bounds, useful for sweeps in tests and benchmarks.
///
/// ```
/// use sa_model::ParamSweep;
/// // All valid (n, m, k) with n ≤ 4.
/// let all: Vec<_> = ParamSweep::up_to(4).collect();
/// assert!(all.iter().all(|p| p.m() <= p.k() && p.k() < p.n()));
/// assert!(!all.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct ParamSweep {
    max_n: usize,
    min_n: usize,
    current: Option<(usize, usize, usize)>,
}

impl ParamSweep {
    /// Sweeps every valid triple with `min_n ≤ n ≤ max_n`.
    pub fn new(min_n: usize, max_n: usize) -> Self {
        ParamSweep {
            max_n,
            min_n: min_n.max(2),
            current: None,
        }
    }

    /// Sweeps every valid triple with `2 ≤ n ≤ max_n`.
    pub fn up_to(max_n: usize) -> Self {
        ParamSweep::new(2, max_n)
    }

    fn advance(&mut self) -> Option<(usize, usize, usize)> {
        match self.current {
            None => {
                if self.min_n > self.max_n {
                    return None;
                }
                // First valid triple for n = min_n is (n, 1, 1).
                self.current = Some((self.min_n, 1, 1));
                self.current
            }
            Some((n, m, k)) => {
                // Order: increase m up to k, then k up to n-1, then n.
                let next = if m < k {
                    Some((n, m + 1, k))
                } else if k < n - 1 {
                    Some((n, 1, k + 1))
                } else if n < self.max_n {
                    Some((n + 1, 1, 1))
                } else {
                    None
                };
                self.current = next;
                next
            }
        }
    }
}

impl Iterator for ParamSweep {
    type Item = Params;

    fn next(&mut self) -> Option<Params> {
        let (n, m, k) = self.advance()?;
        Some(Params::new(n, m, k).expect("sweep generates only valid triples"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_params_accepted() {
        let p = Params::new(5, 2, 3).unwrap();
        assert_eq!((p.n(), p.m(), p.k()), (5, 2, 3));
    }

    #[test]
    fn invalid_params_rejected() {
        assert_eq!(
            Params::new(1, 1, 1),
            Err(ParamsError::TooFewProcesses { n: 1 })
        );
        assert_eq!(Params::new(4, 0, 1), Err(ParamsError::ZeroObstruction));
        assert_eq!(Params::new(4, 1, 0), Err(ParamsError::ZeroAgreement));
        assert_eq!(
            Params::new(4, 3, 2),
            Err(ParamsError::ObstructionExceedsAgreement { m: 3, k: 2 })
        );
        assert_eq!(
            Params::new(4, 2, 4),
            Err(ParamsError::AgreementNotBelowProcesses { k: 4, n: 4 })
        );
    }

    #[test]
    fn derived_quantities_match_paper_formulas() {
        let p = Params::new(10, 2, 4).unwrap();
        assert_eq!(p.snapshot_components(), 10);
        assert_eq!(p.ell(), 8);
        assert_eq!(p.register_upper_bound(), 10);
        assert_eq!(p.repeated_lower_bound(), 8);
        assert_eq!(p.anonymous_snapshot_components(), 3 * 6 + 4);
        assert_eq!(p.anonymous_repeated_registers(), 3 * 6 + 4 + 1);
        assert_eq!(p.covering_groups(), 3); // ceil(5 / 2)
    }

    #[test]
    fn consensus_case_matches_paper_special_cases() {
        // For m = k = 1 the paper shows repeated consensus needs exactly n registers.
        let p = Params::consensus(7).unwrap();
        assert!(p.is_consensus());
        assert!(p.is_obstruction_free());
        assert_eq!(p.repeated_lower_bound(), 7);
        assert_eq!(p.register_upper_bound(), 7);
        // n + 2m - k = n + 1 exceeds n, so the min kicks in.
        assert_eq!(p.snapshot_components(), 8);
    }

    #[test]
    fn upper_bound_never_below_lower_bound() {
        for p in ParamSweep::up_to(12) {
            assert!(
                p.register_upper_bound() >= p.repeated_lower_bound(),
                "upper < lower for {p:?}"
            );
            assert!(p.snapshot_components() >= p.repeated_lower_bound());
        }
    }

    #[test]
    fn m1_case_improves_prior_work() {
        // Paper: for m = 1 the algorithm uses n - k + 2 components, improving 2(n - k)
        // whenever n - k >= 2.
        let p = Params::new(10, 1, 3).unwrap();
        assert_eq!(p.snapshot_components(), 10 - 3 + 2);
        assert!(p.snapshot_components() <= 2 * (p.n() - p.k()));
    }

    #[test]
    fn anonymous_lower_bound_generalizes_fhs() {
        // m = k = 1 recovers the Omega(sqrt(n)) bound of Fich, Herlihy, Shavit.
        let p = Params::consensus(100).unwrap();
        let raw = p.anonymous_oneshot_lower_bound_raw();
        assert!((raw - (98f64).sqrt()).abs() < 1e-9);
        assert_eq!(p.anonymous_oneshot_lower_bound(), 10);
    }

    #[test]
    fn covering_groups_at_least_two() {
        for p in ParamSweep::up_to(10) {
            assert!(p.covering_groups() >= 2, "c < 2 for {p:?}");
        }
    }

    #[test]
    fn sweep_is_exhaustive_and_valid() {
        let all: Vec<Params> = ParamSweep::up_to(6).collect();
        // Count triples directly: for each n, sum over k in 1..n of k choices for m.
        let expected: usize = (2..=6).map(|n: usize| (1..n).sum::<usize>()).sum();
        assert_eq!(all.len(), expected);
        for p in &all {
            assert!(p.m() >= 1 && p.m() <= p.k() && p.k() < p.n());
        }
    }

    #[test]
    fn display_mentions_all_parameters() {
        let p = Params::new(6, 2, 3).unwrap();
        let s = p.to_string();
        assert!(s.contains('6') && s.contains('2') && s.contains('3'));
    }
}
