//! Memory layouts: how many registers and snapshot objects an algorithm uses.

use crate::error::LayoutError;

/// The index of a plain MWMR register within a [`MemoryLayout`].
pub type RegisterId = usize;

/// The index of a snapshot object within a [`MemoryLayout`].
pub type SnapshotId = usize;

/// A declaration of the shared objects an algorithm uses: some number of
/// plain multi-writer multi-reader registers plus some number of multi-writer
/// snapshot objects, each with a fixed number of components.
///
/// The paper accounts space in *registers*; a snapshot object with `r`
/// components costs `min(r, n)` registers in the non-anonymous setting
/// (Theorem 7) and `r` registers in the anonymous setting (via the
/// non-blocking construction of Guerraoui–Ruppert). [`MemoryLayout`] exposes
/// both the component-level and the register-level accounting so experiments
/// can report either.
///
/// ```
/// use sa_model::MemoryLayout;
/// // Figure 5 uses one snapshot object of r components plus register H.
/// let layout = MemoryLayout::new(1, vec![12]);
/// assert_eq!(layout.register_count(), 1);
/// assert_eq!(layout.snapshot_count(), 1);
/// assert_eq!(layout.snapshot_width(0), Some(12));
/// assert_eq!(layout.total_components(), 13);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemoryLayout {
    registers: usize,
    snapshots: Vec<usize>,
}

impl MemoryLayout {
    /// Creates a layout with `registers` plain registers and one snapshot
    /// object per entry of `snapshot_widths` (the entry is the number of
    /// components of that object).
    pub fn new(registers: usize, snapshot_widths: Vec<usize>) -> Self {
        MemoryLayout {
            registers,
            snapshots: snapshot_widths,
        }
    }

    /// A layout consisting only of plain registers.
    pub fn registers_only(registers: usize) -> Self {
        MemoryLayout::new(registers, Vec::new())
    }

    /// A layout consisting of a single snapshot object of the given width and
    /// no plain registers — the shape used by Figures 3 and 4 of the paper.
    pub fn with_snapshot(width: usize) -> Self {
        MemoryLayout::new(0, vec![width])
    }

    /// A layout with one snapshot object plus `registers` plain registers —
    /// the shape used by Figure 5 (`registers = 1` for the shared register `H`).
    pub fn with_snapshot_and_registers(width: usize, registers: usize) -> Self {
        MemoryLayout::new(registers, vec![width])
    }

    /// The number of plain registers.
    #[inline]
    pub fn register_count(&self) -> usize {
        self.registers
    }

    /// The number of snapshot objects.
    #[inline]
    pub fn snapshot_count(&self) -> usize {
        self.snapshots.len()
    }

    /// The width (component count) of snapshot object `obj`, if it exists.
    #[inline]
    pub fn snapshot_width(&self, obj: SnapshotId) -> Option<usize> {
        self.snapshots.get(obj).copied()
    }

    /// The widths of all snapshot objects.
    #[inline]
    pub fn snapshot_widths(&self) -> &[usize] {
        &self.snapshots
    }

    /// Plain registers plus all snapshot components: the total number of
    /// atomic base-object "slots" in the layout.
    #[inline]
    pub fn total_components(&self) -> usize {
        self.registers + self.snapshots.iter().sum::<usize>()
    }

    /// The register cost of this layout when each snapshot object of width
    /// `w` is implemented from `min(w, n)` registers (the non-anonymous
    /// accounting of Theorem 7, valid because `n` single-writer registers can
    /// implement any number of MWMR registers).
    pub fn register_cost_non_anonymous(&self, n: usize) -> usize {
        self.registers + self.snapshots.iter().map(|w| (*w).min(n)).sum::<usize>()
    }

    /// The register cost of this layout when each snapshot object of width
    /// `w` is implemented from exactly `w` registers (the anonymous
    /// accounting used by Theorem 11).
    pub fn register_cost_anonymous(&self) -> usize {
        self.total_components()
    }

    /// Validates that a register index is within the layout.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::RegisterOutOfRange`] if not.
    pub fn check_register(&self, register: RegisterId) -> Result<(), LayoutError> {
        if register < self.registers {
            Ok(())
        } else {
            Err(LayoutError::RegisterOutOfRange {
                register,
                registers: self.registers,
            })
        }
    }

    /// Validates that a snapshot component reference is within the layout.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::SnapshotOutOfRange`] or
    /// [`LayoutError::ComponentOutOfRange`] if not.
    pub fn check_component(
        &self,
        snapshot: SnapshotId,
        component: usize,
    ) -> Result<(), LayoutError> {
        match self.snapshots.get(snapshot) {
            None => Err(LayoutError::SnapshotOutOfRange {
                snapshot,
                snapshots: self.snapshots.len(),
            }),
            Some(&width) if component >= width => Err(LayoutError::ComponentOutOfRange {
                snapshot,
                component,
                width,
            }),
            Some(_) => Ok(()),
        }
    }

    /// Validates that a snapshot object reference is within the layout.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::SnapshotOutOfRange`] if not.
    pub fn check_snapshot(&self, snapshot: SnapshotId) -> Result<(), LayoutError> {
        if snapshot < self.snapshots.len() {
            Ok(())
        } else {
            Err(LayoutError::SnapshotOutOfRange {
                snapshot,
                snapshots: self.snapshots.len(),
            })
        }
    }

    /// Returns the layout that can serve both `self` and `other`: the
    /// component-wise maximum. Useful when co-scheduling heterogeneous
    /// automata in tests.
    pub fn union(&self, other: &MemoryLayout) -> MemoryLayout {
        let registers = self.registers.max(other.registers);
        let len = self.snapshots.len().max(other.snapshots.len());
        let snapshots = (0..len)
            .map(|i| {
                self.snapshots
                    .get(i)
                    .copied()
                    .unwrap_or(0)
                    .max(other.snapshots.get(i).copied().unwrap_or(0))
            })
            .collect();
        MemoryLayout {
            registers,
            snapshots,
        }
    }
}

impl Default for MemoryLayout {
    fn default() -> Self {
        MemoryLayout::registers_only(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_report_declared_shape() {
        let layout = MemoryLayout::new(2, vec![5, 3]);
        assert_eq!(layout.register_count(), 2);
        assert_eq!(layout.snapshot_count(), 2);
        assert_eq!(layout.snapshot_width(0), Some(5));
        assert_eq!(layout.snapshot_width(1), Some(3));
        assert_eq!(layout.snapshot_width(2), None);
        assert_eq!(layout.total_components(), 10);
    }

    #[test]
    fn register_cost_accounting() {
        // A 12-component snapshot among 8 processes costs min(12, 8) = 8 registers
        // non-anonymously, but 12 registers anonymously.
        let layout = MemoryLayout::with_snapshot(12);
        assert_eq!(layout.register_cost_non_anonymous(8), 8);
        assert_eq!(layout.register_cost_anonymous(), 12);
        let with_h = MemoryLayout::with_snapshot_and_registers(12, 1);
        assert_eq!(with_h.register_cost_anonymous(), 13);
    }

    #[test]
    fn bounds_checks() {
        let layout = MemoryLayout::new(1, vec![4]);
        assert!(layout.check_register(0).is_ok());
        assert!(layout.check_register(1).is_err());
        assert!(layout.check_snapshot(0).is_ok());
        assert!(layout.check_snapshot(1).is_err());
        assert!(layout.check_component(0, 3).is_ok());
        assert!(layout.check_component(0, 4).is_err());
        assert!(layout.check_component(1, 0).is_err());
    }

    #[test]
    fn union_takes_componentwise_maximum() {
        let a = MemoryLayout::new(1, vec![4]);
        let b = MemoryLayout::new(0, vec![6, 2]);
        let u = a.union(&b);
        assert_eq!(u, MemoryLayout::new(1, vec![6, 2]));
    }

    #[test]
    fn default_is_empty() {
        let layout = MemoryLayout::default();
        assert_eq!(layout.total_components(), 0);
    }
}
