//! Identifiers and basic value types.

use std::fmt;

/// An input (and output) value of set agreement.
///
/// The paper takes the input domain `D` to be the natural numbers, so a
/// 64-bit unsigned integer is a faithful, convenient representation.
pub type InputValue = u64;

/// The index of an instance of *repeated* set agreement (1-based, as in the
/// paper: a process's `t`-th invocation of `Propose` belongs to instance `t`).
pub type InstanceId = u64;

/// The identifier of a process, in the range `0..n`.
///
/// Anonymous algorithms never inspect their own `ProcessId`; the runtime still
/// uses one to address processes when scheduling.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// Returns the raw index of this process.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }

    /// Returns an iterator over the process ids `0..n`.
    ///
    /// ```
    /// use sa_model::ProcessId;
    /// let ids: Vec<_> = ProcessId::all(3).collect();
    /// assert_eq!(ids, vec![ProcessId(0), ProcessId(1), ProcessId(2)]);
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = ProcessId> {
        (0..n).map(ProcessId)
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(index: usize) -> Self {
        ProcessId(index)
    }
}

impl From<ProcessId> for usize {
    fn from(id: ProcessId) -> usize {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrip() {
        let id = ProcessId::from(7usize);
        assert_eq!(usize::from(id), 7);
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn process_id_display() {
        assert_eq!(ProcessId(3).to_string(), "p3");
        assert_eq!(format!("{:?}", ProcessId(3)), "p3");
    }

    #[test]
    fn all_yields_n_ids() {
        assert_eq!(ProcessId::all(5).count(), 5);
        assert_eq!(ProcessId::all(0).count(), 0);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ProcessId(1) < ProcessId(2));
        assert_eq!(ProcessId::default(), ProcessId(0));
    }
}
