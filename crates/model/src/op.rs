//! Shared-memory operations and responses.

use crate::independence::{Access, Footprint, Location};
use crate::layout::{RegisterId, SnapshotId};
use std::fmt;

/// A shared-memory operation a process is poised to perform.
///
/// The paper's model (Section 2) has processes applying atomic reads and
/// writes to MWMR registers; its algorithms are additionally expressed over
/// multi-writer snapshot objects (update/scan), which are implementable from
/// registers. Both levels are first-class here so that algorithms can be run
/// either over atomic snapshot objects (the default, as in the pseudocode) or
/// over register-level snapshot constructions.
///
/// `Nop` represents a purely local step; it exists so that adversaries and
/// traces can still observe that a process was scheduled even when it had no
/// pending shared-memory work (for example while an anonymous process is
/// switching between its two threads).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Op<V> {
    /// Read the register `register`.
    Read {
        /// Index of the register to read.
        register: RegisterId,
    },
    /// Write `value` to register `register`.
    Write {
        /// Index of the register to write.
        register: RegisterId,
        /// The value to store.
        value: V,
    },
    /// `update(component, value)` on snapshot object `snapshot`.
    Update {
        /// Index of the snapshot object.
        snapshot: SnapshotId,
        /// Component to overwrite.
        component: usize,
        /// The value to store.
        value: V,
    },
    /// `scan()` on snapshot object `snapshot`.
    Scan {
        /// Index of the snapshot object.
        snapshot: SnapshotId,
    },
    /// A purely local step; the memory is not touched.
    Nop,
}

impl<V> Op<V> {
    /// The kind of this operation, with the payload erased.
    pub fn kind(&self) -> OpKind {
        match self {
            Op::Read { .. } => OpKind::Read,
            Op::Write { .. } => OpKind::Write,
            Op::Update { .. } => OpKind::Update,
            Op::Scan { .. } => OpKind::Scan,
            Op::Nop => OpKind::Nop,
        }
    }

    /// `true` if this operation modifies shared memory (a register write or a
    /// snapshot update).
    pub fn is_write_like(&self) -> bool {
        matches!(self, Op::Write { .. } | Op::Update { .. })
    }

    /// `true` if this operation only observes shared memory (a register read
    /// or a snapshot scan).
    pub fn is_read_like(&self) -> bool {
        matches!(self, Op::Read { .. } | Op::Scan { .. })
    }

    /// The read and write access sets of this operation — the footprint the
    /// interference analysis ([`crate::independence`]) reasons over.
    ///
    /// A read touches its register on the read side; a write or update
    /// touches its cell on the write side; a scan reads its whole snapshot
    /// object; `Nop` touches nothing. The footprint is a pure function of
    /// the op (never of the memory contents), which is what makes the
    /// derived independence relation state-independent.
    pub fn footprint(&self) -> Footprint {
        match self {
            Op::Read { register } => Footprint {
                read: Some(Access::Cell(Location::Register(*register))),
                write: None,
            },
            Op::Write { register, .. } => Footprint {
                read: None,
                write: Some(Access::Cell(Location::Register(*register))),
            },
            Op::Update {
                snapshot,
                component,
                ..
            } => Footprint {
                read: None,
                write: Some(Access::Cell(Location::Component {
                    snapshot: *snapshot,
                    component: *component,
                })),
            },
            Op::Scan { snapshot } => Footprint {
                read: Some(Access::WholeSnapshot(*snapshot)),
                write: None,
            },
            Op::Nop => Footprint::default(),
        }
    }

    /// For write-like operations, the *location* written: `(None, register)`
    /// for a register write, `(Some(snapshot), component)` for an update.
    /// Returns `None` for read-like operations and `Nop`.
    #[deprecated(
        note = "use `Op::footprint().write_cell()`, which speaks the shared `Location` vocabulary"
    )]
    pub fn write_target(&self) -> Option<(Option<SnapshotId>, usize)> {
        match self {
            Op::Write { register, .. } => Some((None, *register)),
            Op::Update {
                snapshot,
                component,
                ..
            } => Some((Some(*snapshot), *component)),
            _ => None,
        }
    }

    /// Maps the value payload of this operation, preserving the shape.
    pub fn map_value<W>(self, f: impl FnOnce(V) -> W) -> Op<W> {
        match self {
            Op::Read { register } => Op::Read { register },
            Op::Write { register, value } => Op::Write {
                register,
                value: f(value),
            },
            Op::Update {
                snapshot,
                component,
                value,
            } => Op::Update {
                snapshot,
                component,
                value: f(value),
            },
            Op::Scan { snapshot } => Op::Scan { snapshot },
            Op::Nop => Op::Nop,
        }
    }
}

/// The kind of an [`Op`], with payloads erased. Useful for metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// A register read.
    Read,
    /// A register write.
    Write,
    /// A snapshot update.
    Update,
    /// A snapshot scan.
    Scan,
    /// A local step.
    Nop,
}

impl OpKind {
    /// All operation kinds, in a fixed order (useful for tabulating metrics).
    pub const ALL: [OpKind; 5] = [
        OpKind::Read,
        OpKind::Write,
        OpKind::Update,
        OpKind::Scan,
        OpKind::Nop,
    ];
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Update => "update",
            OpKind::Scan => "scan",
            OpKind::Nop => "nop",
        };
        f.write_str(s)
    }
}

/// The response to a shared-memory [`Op`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Response<V> {
    /// The value read from a register (`None` encodes the initial value `⊥`).
    Read(Option<V>),
    /// Acknowledgement of a register write.
    Written,
    /// Acknowledgement of a snapshot update.
    Updated,
    /// The vector returned by a snapshot scan; `None` entries are `⊥`.
    Snapshot(Vec<Option<V>>),
    /// Acknowledgement of a local step.
    Nop,
}

impl<V> Response<V> {
    /// Extracts the scan vector, panicking with a protocol-error message if
    /// this response is not a snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the response is not [`Response::Snapshot`]. Algorithms use
    /// this only right after issuing a [`Op::Scan`]; a mismatch indicates a
    /// runtime bug, not a user error.
    pub fn expect_snapshot(self) -> Vec<Option<V>> {
        match self {
            Response::Snapshot(v) => v,
            other => panic!(
                "protocol error: expected snapshot response, got {:?}",
                ResponseKindOf(&other)
            ),
        }
    }

    /// Extracts the read value, panicking with a protocol-error message if
    /// this response is not a read.
    ///
    /// # Panics
    ///
    /// Panics if the response is not [`Response::Read`].
    pub fn expect_read(self) -> Option<V> {
        match self {
            Response::Read(v) => v,
            other => panic!(
                "protocol error: expected read response, got {:?}",
                ResponseKindOf(&other)
            ),
        }
    }
}

/// Helper for panic messages that does not require `V: Debug`.
struct ResponseKindOf<'a, V>(&'a Response<V>);

impl<V> fmt::Debug for ResponseKindOf<'_, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self.0 {
            Response::Read(_) => "Read",
            Response::Written => "Written",
            Response::Updated => "Updated",
            Response::Snapshot(_) => "Snapshot",
            Response::Nop => "Nop",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_kind_classification() {
        let read: Op<u64> = Op::Read { register: 0 };
        let write = Op::Write {
            register: 1,
            value: 7u64,
        };
        let update = Op::Update {
            snapshot: 0,
            component: 2,
            value: 7u64,
        };
        let scan: Op<u64> = Op::Scan { snapshot: 0 };
        assert_eq!(read.kind(), OpKind::Read);
        assert!(read.is_read_like() && !read.is_write_like());
        assert!(write.is_write_like());
        assert!(update.is_write_like());
        assert!(scan.is_read_like());
        assert_eq!(Op::<u64>::Nop.kind(), OpKind::Nop);
    }

    #[test]
    #[allow(deprecated)]
    fn write_target_identifies_poised_location() {
        let write = Op::Write {
            register: 3,
            value: 1u64,
        };
        assert_eq!(write.write_target(), Some((None, 3)));
        let update = Op::Update {
            snapshot: 1,
            component: 4,
            value: 1u64,
        };
        assert_eq!(update.write_target(), Some((Some(1), 4)));
        assert_eq!(Op::<u64>::Scan { snapshot: 0 }.write_target(), None);
        assert_eq!(Op::<u64>::Nop.write_target(), None);
        // The deprecated accessor and the footprint agree on every shape.
        assert_eq!(
            write.footprint().write_cell(),
            Some(crate::Location::Register(3))
        );
        assert_eq!(
            update.footprint().write_cell(),
            Some(crate::Location::Component {
                snapshot: 1,
                component: 4
            })
        );
    }

    #[test]
    fn map_value_preserves_shape() {
        let op = Op::Update {
            snapshot: 0,
            component: 1,
            value: 5u32,
        };
        let mapped = op.map_value(|v| v as u64 * 2);
        assert_eq!(
            mapped,
            Op::Update {
                snapshot: 0,
                component: 1,
                value: 10u64
            }
        );
    }

    #[test]
    fn response_extractors() {
        let r: Response<u64> = Response::Snapshot(vec![Some(1), None]);
        assert_eq!(r.expect_snapshot(), vec![Some(1), None]);
        let r: Response<u64> = Response::Read(Some(9));
        assert_eq!(r.expect_read(), Some(9));
    }

    #[test]
    #[should_panic(expected = "protocol error")]
    fn expect_snapshot_panics_on_mismatch() {
        let r: Response<u64> = Response::Written;
        let _ = r.expect_snapshot();
    }

    #[test]
    fn op_kind_display_and_all() {
        assert_eq!(OpKind::ALL.len(), 5);
        assert_eq!(OpKind::Scan.to_string(), "scan");
    }
}
