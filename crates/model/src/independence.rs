//! Static interference analysis over [`Op`] footprints.
//!
//! The paper's lower-bound argument (Theorem 2) hinges on which operations
//! can be reordered invisibly; the explorers' partial-order reduction hinges
//! on exactly the same structure. This module makes it first-class:
//!
//! * [`Location`] — a single writable cell of the shared memory (a plain
//!   register or one snapshot component), the vocabulary shared by the
//!   metrics, the covering adversary and the interference analysis.
//! * [`Access`] — one entry of an op's footprint: a single cell, or a whole
//!   snapshot object (a scan observes every component at once).
//! * [`Footprint`] — the read and write access sets of one operation, via
//!   [`Op::footprint`].
//! * [`independent`] — the sound commutation relation: two operations are
//!   independent iff executing them in either order from any configuration
//!   yields the same memory contents **and** the same responses.
//!
//! The relation is *state-independent* (it looks only at the ops, never at
//! the memory contents) and conservative: declaring a commuting pair
//! dependent costs reduction, never soundness. The runtime backs it with a
//! dynamic commutation checker (`sa_runtime::check_commutation`) that
//! executes both orders of every statically-independent enabled pair and
//! compares successor state keys, so an unsound footprint can never silently
//! prune.

use crate::layout::{RegisterId, SnapshotId};
use crate::op::Op;

/// A single cell of the shared memory: either a plain register or one
/// component of a snapshot object.
///
/// Registers and snapshot components are disjoint address spaces — a
/// register write can never touch a snapshot component, whatever the
/// indices. This is the location vocabulary used by the usage metrics
/// (`sa_memory::MemoryMetrics`), the Theorem 2 covering adversary
/// (`sa_search::goal`) and the interference analysis below.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Location {
    /// A plain MWMR register.
    Register(RegisterId),
    /// One component of a snapshot object.
    Component {
        /// The snapshot object.
        snapshot: SnapshotId,
        /// The component within the object.
        component: usize,
    },
}

/// One entry of an operation's footprint: the region of shared memory an
/// access touches.
///
/// A scan observes *every* component of its snapshot object atomically —
/// including components the layout may declare but no one has written — so
/// its read footprint is the whole object, not a cell set. Keeping the
/// whole-object case explicit (instead of expanding it against a layout)
/// keeps footprints a pure function of the op, which is what makes the
/// independence relation state-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Access {
    /// A single cell.
    Cell(Location),
    /// Every component of one snapshot object at once (a scan).
    WholeSnapshot(SnapshotId),
}

impl Access {
    /// `true` if the two accesses can touch a common cell.
    pub fn overlaps(self, other: Access) -> bool {
        match (self, other) {
            (Access::Cell(a), Access::Cell(b)) => a == b,
            (Access::WholeSnapshot(s), Access::Cell(cell))
            | (Access::Cell(cell), Access::WholeSnapshot(s)) => {
                matches!(cell, Location::Component { snapshot, .. } if snapshot == s)
            }
            (Access::WholeSnapshot(a), Access::WholeSnapshot(b)) => a == b,
        }
    }
}

/// The read and write access sets of one operation — see [`Op::footprint`].
///
/// Every operation in the current vocabulary touches at most one region per
/// side, so each set is an `Option`; a future read-modify-write primitive
/// (swap, test-and-set, CAS) declares both sides on the same cell and the
/// analysis extends without change. `Nop` has the empty footprint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Footprint {
    /// The region this operation reads, if any.
    pub read: Option<Access>,
    /// The region this operation writes, if any.
    pub write: Option<Access>,
}

impl Footprint {
    /// `true` if the two footprints interfere: some write of one overlaps a
    /// read or write of the other. Read/read overlap is *not* a conflict —
    /// observations commute.
    pub fn conflicts_with(&self, other: &Footprint) -> bool {
        let against = |w: Option<Access>, o: &Footprint| {
            w.is_some_and(|w| {
                o.write.is_some_and(|x| w.overlaps(x)) || o.read.is_some_and(|x| w.overlaps(x))
            })
        };
        against(self.write, other) || against(other.write, self)
    }

    /// The single cell this footprint writes, if the write is cell-granular:
    /// the location a write-like op is poised to modify. The successor of
    /// [`Op::write_target`], in [`Location`] vocabulary.
    pub fn write_cell(&self) -> Option<Location> {
        match self.write {
            Some(Access::Cell(cell)) => Some(cell),
            _ => None,
        }
    }
}

/// The sound independence relation over operations: `true` iff executing
/// `a` and `b` in either order from **any** configuration produces the same
/// memory contents and the same two responses.
///
/// The rules (equivalently: `!a.footprint().conflicts_with(&b.footprint())`,
/// pinned by a test):
///
/// * `Nop` is independent of everything — it touches nothing.
/// * Read-like pairs (read/read, read/scan, scan/scan) are always
///   independent, even on the same cell — observations commute.
/// * Pairs touching disjoint locations are independent; registers and
///   snapshot components are disjoint address spaces, so a register op and
///   a snapshot op never interfere.
/// * `Write`/`Write` and `Write`/`Read` on the same register conflict.
/// * `Update`/`Update` on the same `(snapshot, component)` conflicts.
/// * `Scan` conservatively conflicts with every `Update` on the same
///   snapshot object, whatever the component — the scan observes all of it.
///
/// Same-register writes of *equal* values do commute on memory, but this
/// relation deliberately ignores payloads: state-independence is what lets
/// it hold in **every** configuration, and conservatism never costs
/// soundness. The payload- and state-sensitive cases (same-value writes to
/// one cell; a write of the value a cell already holds against a concurrent
/// reader) are recovered by `sa-memory`'s `SimMemory::invisibly_independent`
/// refinement, which the sleep-set explorers evaluate per configuration and
/// the dynamic commutation checker audits alongside this relation.
pub fn independent<V, W>(a: &Op<V>, b: &Op<W>) -> bool {
    match (a, b) {
        (Op::Nop, _) | (_, Op::Nop) => true,
        // Read-like pairs always commute.
        (Op::Read { .. } | Op::Scan { .. }, Op::Read { .. } | Op::Scan { .. }) => true,
        // Register ops against snapshot ops: disjoint address spaces.
        (Op::Read { .. } | Op::Write { .. }, Op::Update { .. } | Op::Scan { .. })
        | (Op::Update { .. } | Op::Scan { .. }, Op::Read { .. } | Op::Write { .. }) => true,
        (Op::Write { register: a, .. }, Op::Write { register: b, .. })
        | (Op::Write { register: a, .. }, Op::Read { register: b })
        | (Op::Read { register: a }, Op::Write { register: b, .. }) => a != b,
        (
            Op::Update {
                snapshot: sa,
                component: ca,
                ..
            },
            Op::Update {
                snapshot: sb,
                component: cb,
                ..
            },
        ) => sa != sb || ca != cb,
        (Op::Update { snapshot: a, .. }, Op::Scan { snapshot: b })
        | (Op::Scan { snapshot: a }, Op::Update { snapshot: b, .. }) => a != b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small catalog covering every op shape and the colliding/disjoint
    /// index combinations.
    fn catalog() -> Vec<Op<u64>> {
        vec![
            Op::Nop,
            Op::Read { register: 0 },
            Op::Read { register: 1 },
            Op::Write {
                register: 0,
                value: 7,
            },
            Op::Write {
                register: 1,
                value: 7,
            },
            Op::Update {
                snapshot: 0,
                component: 0,
                value: 7,
            },
            Op::Update {
                snapshot: 0,
                component: 1,
                value: 7,
            },
            Op::Update {
                snapshot: 1,
                component: 0,
                value: 7,
            },
            Op::Scan { snapshot: 0 },
            Op::Scan { snapshot: 1 },
        ]
    }

    #[test]
    fn independence_agrees_with_footprint_overlap() {
        for a in &catalog() {
            for b in &catalog() {
                assert_eq!(
                    independent(a, b),
                    !a.footprint().conflicts_with(&b.footprint()),
                    "relation and footprints disagree on {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn independence_is_symmetric() {
        for a in &catalog() {
            for b in &catalog() {
                assert_eq!(independent(a, b), independent(b, a), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn dependent_pairs_per_conflict_rule() {
        // Write/Write, same register.
        let w0 = Op::Write {
            register: 0,
            value: 1u64,
        };
        assert!(!independent(
            &w0,
            &Op::Write {
                register: 0,
                value: 2
            }
        ));
        // Write/Read, same register.
        assert!(!independent(&w0, &Op::<u64>::Read { register: 0 }));
        // Update/Update, same component.
        let u00 = Op::Update {
            snapshot: 0,
            component: 0,
            value: 1u64,
        };
        assert!(!independent(
            &u00,
            &Op::Update {
                snapshot: 0,
                component: 0,
                value: 2
            }
        ));
        // Update/Scan, same snapshot — any component.
        assert!(!independent(&u00, &Op::<u64>::Scan { snapshot: 0 }));
        assert!(!independent(
            &Op::Update {
                snapshot: 0,
                component: 5,
                value: 1u64
            },
            &Op::<u64>::Scan { snapshot: 0 }
        ));
    }

    #[test]
    fn independent_pairs_per_commutation_rule() {
        let w0 = Op::Write {
            register: 0,
            value: 1u64,
        };
        // Disjoint registers.
        assert!(independent(
            &w0,
            &Op::Write {
                register: 1,
                value: 2
            }
        ));
        assert!(independent(&w0, &Op::<u64>::Read { register: 1 }));
        // Read/read, same register.
        assert!(independent(
            &Op::<u64>::Read { register: 0 },
            &Op::<u64>::Read { register: 0 }
        ));
        // Scan/scan, same snapshot.
        assert!(independent(
            &Op::<u64>::Scan { snapshot: 0 },
            &Op::<u64>::Scan { snapshot: 0 }
        ));
        // Register space vs snapshot space, colliding indices.
        assert!(independent(
            &w0,
            &Op::Update {
                snapshot: 0,
                component: 0,
                value: 2
            }
        ));
        assert!(independent(&w0, &Op::<u64>::Scan { snapshot: 0 }));
        // Disjoint components, disjoint snapshots.
        let u00 = Op::Update {
            snapshot: 0,
            component: 0,
            value: 1u64,
        };
        assert!(independent(
            &u00,
            &Op::Update {
                snapshot: 0,
                component: 1,
                value: 2
            }
        ));
        assert!(independent(&u00, &Op::<u64>::Scan { snapshot: 1 }));
        // Nop against a write.
        assert!(independent(&Op::<u64>::Nop, &w0));
    }

    #[test]
    fn whole_snapshot_access_overlaps_only_its_object() {
        let scan0 = Access::WholeSnapshot(0);
        assert!(scan0.overlaps(Access::Cell(Location::Component {
            snapshot: 0,
            component: 3
        })));
        assert!(!scan0.overlaps(Access::Cell(Location::Component {
            snapshot: 1,
            component: 0
        })));
        assert!(!scan0.overlaps(Access::Cell(Location::Register(0))));
        assert!(scan0.overlaps(Access::WholeSnapshot(0)));
        assert!(!scan0.overlaps(Access::WholeSnapshot(1)));
    }

    #[test]
    fn write_cell_recovers_the_poised_location() {
        let write = Op::Write {
            register: 3,
            value: 1u64,
        };
        assert_eq!(write.footprint().write_cell(), Some(Location::Register(3)));
        let update = Op::Update {
            snapshot: 1,
            component: 4,
            value: 1u64,
        };
        assert_eq!(
            update.footprint().write_cell(),
            Some(Location::Component {
                snapshot: 1,
                component: 4
            })
        );
        assert_eq!(
            Op::<u64>::Scan { snapshot: 0 }.footprint().write_cell(),
            None
        );
        assert_eq!(Op::<u64>::Nop.footprint().write_cell(), None);
    }

    #[test]
    fn location_ordering_groups_registers_before_components() {
        let a = Location::Register(5);
        let b = Location::Component {
            snapshot: 0,
            component: 0,
        };
        assert!(a < b);
    }
}
