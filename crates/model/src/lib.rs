//! Core vocabulary shared by every crate in the set-agreement reproduction.
//!
//! This crate defines the *model* of computation used by the paper
//! "On the Space Complexity of Set Agreement" (Delporte-Gallet, Fauconnier,
//! Kuznetsov, Ruppert — PODC 2015):
//!
//! * [`Params`] — the problem parameters `(n, m, k)`: `n` processes solving
//!   `m`-obstruction-free `k`-set agreement.
//! * [`Op`] / [`Response`] — the shared-memory operations a process may be
//!   *poised* to perform (register read/write, snapshot update/scan) and their
//!   responses.
//! * [`MemoryLayout`] — how many registers and snapshot objects (and of what
//!   width) an algorithm declares.
//! * [`Automaton`] — the step-machine interface every algorithm implements:
//!   one shared-memory operation per step, exactly the granularity of the
//!   paper's formal model (Section 2).
//! * [`Decision`] — an output event `(instance, value)` of a `Propose`
//!   operation.
//! * [`Location`] / [`independent`] — the shared location vocabulary and the
//!   static interference analysis over op footprints (module
//!   [`independence`]) that feeds the explorers' partial-order reduction.
//!
//! The input domain of set agreement is the natural numbers (`D = IN` in the
//! paper); we represent input values as [`InputValue`] (`u64`).
//!
//! # Example
//!
//! ```
//! use sa_model::{Params, MemoryLayout};
//!
//! let params = Params::new(8, 2, 3)?;          // n = 8, m = 2, k = 3
//! assert_eq!(params.snapshot_components(), 9); // n + 2m - k
//! assert_eq!(params.register_upper_bound(), 8); // min(n + 2m - k, n)
//! let layout = MemoryLayout::with_snapshot(params.snapshot_components());
//! assert_eq!(layout.snapshot_width(0), Some(9));
//! # Ok::<(), sa_model::ParamsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod automaton;
mod error;
mod ids;
pub mod independence;
mod layout;
mod op;
mod params;
mod symmetry;

pub use automaton::{Automaton, Decision, DecisionSet, StepOutcome};
pub use error::{LayoutError, ParamsError};
pub use ids::{InputValue, InstanceId, ProcessId};
pub use independence::{independent, Access, Footprint, Location};
pub use layout::{MemoryLayout, RegisterId, SnapshotId};
pub use op::{Op, OpKind, Response};
pub use params::{ParamSweep, Params};
pub use symmetry::{IdRelabeling, SymmetryClass};
