//! Error types for parameter and layout validation.

use std::error::Error;
use std::fmt;

/// An error produced when constructing [`Params`](crate::Params) with values
/// that do not satisfy the paper's constraints `1 ≤ m ≤ k < n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamsError {
    /// Fewer than two processes: the paper assumes `n > 1`.
    TooFewProcesses {
        /// The offending process count.
        n: usize,
    },
    /// `m` was zero; obstruction degrees start at one.
    ZeroObstruction,
    /// `k` was zero; agreement degrees start at one.
    ZeroAgreement,
    /// `m > k`: by Lemma 1 of the paper no algorithm exists in this regime.
    ObstructionExceedsAgreement {
        /// The obstruction degree `m`.
        m: usize,
        /// The agreement degree `k`.
        k: usize,
    },
    /// `k ≥ n`: the problem is trivial (each process outputs its own input)
    /// and the paper's bounds do not apply.
    AgreementNotBelowProcesses {
        /// The agreement degree `k`.
        k: usize,
        /// The process count `n`.
        n: usize,
    },
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamsError::TooFewProcesses { n } => {
                write!(f, "need at least 2 processes, got n = {n}")
            }
            ParamsError::ZeroObstruction => write!(f, "obstruction degree m must be at least 1"),
            ParamsError::ZeroAgreement => write!(f, "agreement degree k must be at least 1"),
            ParamsError::ObstructionExceedsAgreement { m, k } => write!(
                f,
                "m-obstruction-free k-set agreement is unsolvable for m > k (m = {m}, k = {k})"
            ),
            ParamsError::AgreementNotBelowProcesses { k, n } => write!(
                f,
                "k-set agreement is trivial for k >= n (k = {k}, n = {n}); bounds require k < n"
            ),
        }
    }
}

impl Error for ParamsError {}

/// An error produced when an operation refers to a register or snapshot
/// component outside the declared [`MemoryLayout`](crate::MemoryLayout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// A register index was out of range.
    RegisterOutOfRange {
        /// The requested register index.
        register: usize,
        /// The number of registers in the layout.
        registers: usize,
    },
    /// A snapshot object index was out of range.
    SnapshotOutOfRange {
        /// The requested snapshot object index.
        snapshot: usize,
        /// The number of snapshot objects in the layout.
        snapshots: usize,
    },
    /// A snapshot component index was out of range for its object.
    ComponentOutOfRange {
        /// The snapshot object index.
        snapshot: usize,
        /// The requested component index.
        component: usize,
        /// The width (number of components) of the snapshot object.
        width: usize,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::RegisterOutOfRange {
                register,
                registers,
            } => write!(
                f,
                "register {register} out of range (layout has {registers} registers)"
            ),
            LayoutError::SnapshotOutOfRange {
                snapshot,
                snapshots,
            } => write!(
                f,
                "snapshot object {snapshot} out of range (layout has {snapshots} snapshot objects)"
            ),
            LayoutError::ComponentOutOfRange {
                snapshot,
                component,
                width,
            } => write!(
                f,
                "component {component} out of range for snapshot object {snapshot} of width {width}"
            ),
        }
    }
}

impl Error for LayoutError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_error_messages_are_lowercase_and_informative() {
        let msgs = [
            ParamsError::TooFewProcesses { n: 1 }.to_string(),
            ParamsError::ZeroObstruction.to_string(),
            ParamsError::ZeroAgreement.to_string(),
            ParamsError::ObstructionExceedsAgreement { m: 3, k: 2 }.to_string(),
            ParamsError::AgreementNotBelowProcesses { k: 4, n: 4 }.to_string(),
        ];
        for msg in msgs {
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn layout_error_messages_mention_indices() {
        let err = LayoutError::ComponentOutOfRange {
            snapshot: 0,
            component: 9,
            width: 4,
        };
        let msg = err.to_string();
        assert!(msg.contains('9') && msg.contains('4'));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ParamsError>();
        assert_error::<LayoutError>();
    }
}
