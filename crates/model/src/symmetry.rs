//! Process-id symmetry: relabelings and the symmetry classes automata
//! declare.
//!
//! The paper's anonymous algorithms (Figure 5) are invariant under arbitrary
//! permutations of the processes, and the id-carrying algorithms (Figures 3
//! and 4) are invariant under permutations that are applied *consistently*:
//! to the process slots, to the `id` fields inside local states, and to
//! every id embedded in a shared-memory value. The explorers exploit this to
//! deduplicate reachable configurations up to such relabelings — but only
//! for automata that opt in, because an unsound prune is worse than no
//! reduction at all. [`SymmetryClass::Opaque`] (the default) makes
//! symmetry-reduced exploration fall back to plain exploration.

use crate::ids::ProcessId;

/// A total map from old process ids to new process ids.
///
/// Canonicalization uses two kinds of maps: **bijections** (genuine
/// relabelings, produced by sorting slots into canonical order) and the
/// **erasure** [`IdRelabeling::erase`], which maps every id to `p0` so that
/// per-slot signatures become id-blind. Erasure is only used to *order*
/// slots; the final canonical key always applies a bijection, so distinct
/// ids never collapse in a dedup key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdRelabeling {
    map: Vec<ProcessId>,
}

impl IdRelabeling {
    /// The identity relabeling on `n` processes.
    pub fn identity(n: usize) -> Self {
        IdRelabeling {
            map: ProcessId::all(n).collect(),
        }
    }

    /// The erasing map on `n` processes: every id goes to `p0`. Not a
    /// bijection; used only for id-blind slot signatures, never for keys.
    pub fn erase(n: usize) -> Self {
        IdRelabeling {
            map: vec![ProcessId(0); n],
        }
    }

    /// A relabeling from an explicit old→new table.
    pub fn from_map(map: Vec<ProcessId>) -> Self {
        IdRelabeling { map }
    }

    /// The identity on `n` processes with `a` and `b` swapped.
    pub fn swap(n: usize, a: ProcessId, b: ProcessId) -> Self {
        let mut relabeling = IdRelabeling::identity(n);
        relabeling.map.swap(a.index(), b.index());
        relabeling
    }

    /// The number of processes this relabeling covers.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if the relabeling covers no processes.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `true` if every id maps to itself.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, p)| p.index() == i)
    }

    /// The new id of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the covered range.
    #[inline]
    pub fn apply(&self, id: ProcessId) -> ProcessId {
        self.map[id.index()]
    }

    /// The underlying old→new table.
    pub fn as_slice(&self) -> &[ProcessId] {
        &self.map
    }

    /// `true` if the map is a bijection on `0..len()` — the property a map
    /// must have before it may be used to relabel a state (as opposed to
    /// signing one).
    pub fn is_bijection(&self) -> bool {
        let mut seen = vec![false; self.map.len()];
        for p in &self.map {
            if p.index() >= self.map.len() || seen[p.index()] {
                return false;
            }
            seen[p.index()] = true;
        }
        true
    }
}

/// How an automaton's state (and the values it writes) transform under a
/// process-id relabeling — what a symmetry-reduced explorer is allowed to
/// assume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymmetryClass {
    /// The automaton embeds **no process id anywhere**: not in its local
    /// state, not in the values it writes, and not in the *addresses* of
    /// the shared objects it uses. Any permutation of the process slots is
    /// an automorphism of the transition system (the paper's Figure 5
    /// algorithms are the canonical case).
    Anonymous,
    /// Process ids appear in the local state and/or in written values, and
    /// [`Automaton::relabeled`](crate::Automaton::relabeled) /
    /// [`Automaton::relabel_value`](crate::Automaton::relabel_value)
    /// rewrite **all** of them; shared-object addresses never depend on the
    /// id. Permutations are automorphisms when applied consistently through
    /// local states, memory contents and decisions (Figures 3 and 4).
    IdCarrying,
    /// Nothing is known (the trait default). A symmetry-reduced explorer
    /// must fall back to plain exploration rather than risk an unsound
    /// prune — e.g. the single-writer emulation, whose *register addresses*
    /// are process ids, which value relabeling cannot fix.
    Opaque,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_every_id_to_itself() {
        let id = IdRelabeling::identity(4);
        assert_eq!(id.len(), 4);
        assert!(!id.is_empty());
        assert!(id.is_identity());
        assert!(id.is_bijection());
        for p in ProcessId::all(4) {
            assert_eq!(id.apply(p), p);
        }
    }

    #[test]
    fn swap_exchanges_exactly_two_ids() {
        let swap = IdRelabeling::swap(4, ProcessId(1), ProcessId(3));
        assert!(!swap.is_identity());
        assert!(swap.is_bijection());
        assert_eq!(swap.apply(ProcessId(1)), ProcessId(3));
        assert_eq!(swap.apply(ProcessId(3)), ProcessId(1));
        assert_eq!(swap.apply(ProcessId(0)), ProcessId(0));
        assert_eq!(swap.apply(ProcessId(2)), ProcessId(2));
    }

    #[test]
    fn erasure_is_not_a_bijection() {
        let erase = IdRelabeling::erase(3);
        assert!(!erase.is_bijection());
        assert!(!erase.is_identity());
        for p in ProcessId::all(3) {
            assert_eq!(erase.apply(p), ProcessId(0));
        }
        assert!(IdRelabeling::erase(0).is_empty());
    }

    #[test]
    fn from_map_detects_non_bijections() {
        let good = IdRelabeling::from_map(vec![ProcessId(2), ProcessId(0), ProcessId(1)]);
        assert!(good.is_bijection());
        assert_eq!(good.as_slice().len(), 3);
        let out_of_range = IdRelabeling::from_map(vec![ProcessId(3), ProcessId(0), ProcessId(1)]);
        assert!(!out_of_range.is_bijection());
        let duplicate = IdRelabeling::from_map(vec![ProcessId(0), ProcessId(0), ProcessId(1)]);
        assert!(!duplicate.is_bijection());
    }
}
