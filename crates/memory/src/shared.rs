//! The thread-safe shared memory used when running algorithms on real OS
//! threads.
//!
//! [`SharedMemory`] provides the same `apply` interface as
//! [`SimMemory`](crate::SimMemory) but takes `&self`, so many threads can
//! drive their automata against it concurrently. Every operation is atomic
//! (registers and snapshot objects are individually locked), which matches
//! the atomic-object semantics assumed by the paper; the snapshot object is
//! an atomic object here, exactly as in the pseudocode of Figures 3–5.

use crate::metrics::{Location, MemoryMetrics};
use parking_lot::Mutex;
use sa_model::{LayoutError, MemoryLayout, Op, ProcessId, Response};
use std::fmt::Debug;

/// A thread-safe implementation of the shared objects declared by a
/// [`MemoryLayout`].
///
/// ```
/// use sa_memory::SharedMemory;
/// use sa_model::{MemoryLayout, Op, ProcessId, Response};
/// use std::sync::Arc;
///
/// let mem = Arc::new(SharedMemory::<u64>::for_layout(&MemoryLayout::with_snapshot(2)));
/// let m = Arc::clone(&mem);
/// let handle = std::thread::spawn(move || {
///     m.apply(ProcessId(0), Op::Update { snapshot: 0, component: 0, value: 1 }).unwrap();
/// });
/// handle.join().unwrap();
/// let resp = mem.apply(ProcessId(1), Op::Scan { snapshot: 0 })?;
/// assert_eq!(resp, Response::Snapshot(vec![Some(1), None]));
/// # Ok::<(), sa_model::LayoutError>(())
/// ```
#[derive(Debug)]
pub struct SharedMemory<V> {
    layout: MemoryLayout,
    registers: Vec<Mutex<Option<V>>>,
    snapshots: Vec<Mutex<Vec<Option<V>>>>,
    metrics: Mutex<MemoryMetrics>,
}

impl<V: Clone + Eq + Debug> SharedMemory<V> {
    /// Creates a memory with every register and component initialized to `⊥`.
    pub fn for_layout(layout: &MemoryLayout) -> Self {
        SharedMemory {
            layout: layout.clone(),
            registers: (0..layout.register_count())
                .map(|_| Mutex::new(None))
                .collect(),
            snapshots: layout
                .snapshot_widths()
                .iter()
                .map(|w| Mutex::new(vec![None; *w]))
                .collect(),
            metrics: Mutex::new(MemoryMetrics::new()),
        }
    }

    /// The layout this memory was created for.
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// Applies one atomic operation on behalf of `process` and returns its
    /// response.
    ///
    /// # Errors
    ///
    /// Returns a [`LayoutError`] if the operation refers to a register or
    /// component outside the layout.
    pub fn apply(&self, process: ProcessId, op: Op<V>) -> Result<Response<V>, LayoutError> {
        let kind = op.kind();
        let (response, written) = match op {
            Op::Read { register } => {
                self.layout.check_register(register)?;
                let value = self.registers[register].lock().clone();
                (Response::Read(value), None)
            }
            Op::Write { register, value } => {
                self.layout.check_register(register)?;
                *self.registers[register].lock() = Some(value);
                (Response::Written, Some(Location::Register(register)))
            }
            Op::Update {
                snapshot,
                component,
                value,
            } => {
                self.layout.check_component(snapshot, component)?;
                self.snapshots[snapshot].lock()[component] = Some(value);
                (
                    Response::Updated,
                    Some(Location::Component {
                        snapshot,
                        component,
                    }),
                )
            }
            Op::Scan { snapshot } => {
                self.layout.check_snapshot(snapshot)?;
                let view = self.snapshots[snapshot].lock().clone();
                (Response::Snapshot(view), None)
            }
            Op::Nop => (Response::Nop, None),
        };
        self.metrics.lock().record(process, kind, written);
        Ok(response)
    }

    /// A copy of the usage metrics accumulated so far.
    pub fn metrics(&self) -> MemoryMetrics {
        self.metrics.lock().clone()
    }

    /// Clears the usage metrics without touching register contents.
    pub fn reset_metrics(&self) {
        self.metrics.lock().reset();
    }

    /// Reads register `register` without recording a metric.
    pub fn peek_register(&self, register: usize) -> Option<V> {
        self.registers.get(register).and_then(|r| r.lock().clone())
    }

    /// Reads the current contents of snapshot object `snapshot` without
    /// recording a metric.
    pub fn peek_snapshot(&self, snapshot: usize) -> Vec<Option<V>> {
        self.snapshots[snapshot].lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn concurrent_updates_are_all_visible() {
        let layout = MemoryLayout::with_snapshot(8);
        let mem = Arc::new(SharedMemory::<u64>::for_layout(&layout));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let mem = Arc::clone(&mem);
                std::thread::spawn(move || {
                    mem.apply(
                        ProcessId(i),
                        Op::Update {
                            snapshot: 0,
                            component: i,
                            value: i as u64,
                        },
                    )
                    .unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let view = mem.peek_snapshot(0);
        for (i, v) in view.iter().enumerate() {
            assert_eq!(*v, Some(i as u64));
        }
        assert_eq!(mem.metrics().distinct_locations_written(), 8);
    }

    #[test]
    fn register_read_write_roundtrip() {
        let mem = SharedMemory::<u64>::for_layout(&MemoryLayout::registers_only(2));
        assert_eq!(
            mem.apply(ProcessId(0), Op::Read { register: 0 }).unwrap(),
            Response::Read(None)
        );
        mem.apply(
            ProcessId(0),
            Op::Write {
                register: 0,
                value: 11,
            },
        )
        .unwrap();
        assert_eq!(
            mem.apply(ProcessId(1), Op::Read { register: 0 }).unwrap(),
            Response::Read(Some(11))
        );
        assert_eq!(mem.peek_register(1), None);
    }

    #[test]
    fn layout_violations_are_reported() {
        let mem = SharedMemory::<u64>::for_layout(&MemoryLayout::with_snapshot(2));
        assert!(mem.apply(ProcessId(0), Op::Read { register: 0 }).is_err());
        assert!(mem
            .apply(
                ProcessId(0),
                Op::Update {
                    snapshot: 0,
                    component: 2,
                    value: 0
                }
            )
            .is_err());
    }

    #[test]
    fn scans_are_atomic_under_concurrent_updates() {
        // A scan must never observe a "torn" state where a later write is
        // visible but an earlier write by the same process (to a different
        // component) is not. With one writer alternating two components in
        // lockstep (always writing c0 then c1 with the same sequence number),
        // every scan must see c0 >= c1.
        let layout = MemoryLayout::with_snapshot(2);
        let mem = Arc::new(SharedMemory::<u64>::for_layout(&layout));
        let writer = {
            let mem = Arc::clone(&mem);
            std::thread::spawn(move || {
                for seq in 1..500u64 {
                    mem.apply(
                        ProcessId(0),
                        Op::Update {
                            snapshot: 0,
                            component: 0,
                            value: seq,
                        },
                    )
                    .unwrap();
                    mem.apply(
                        ProcessId(0),
                        Op::Update {
                            snapshot: 0,
                            component: 1,
                            value: seq,
                        },
                    )
                    .unwrap();
                }
            })
        };
        let reader = {
            let mem = Arc::clone(&mem);
            std::thread::spawn(move || {
                for _ in 0..500 {
                    if let Response::Snapshot(view) =
                        mem.apply(ProcessId(1), Op::Scan { snapshot: 0 }).unwrap()
                    {
                        let c0 = view[0].unwrap_or(0);
                        let c1 = view[1].unwrap_or(0);
                        assert!(c0 >= c1, "scan observed torn state: {c0} < {c1}");
                    }
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
    }

    #[test]
    fn metrics_accumulate_across_threads() {
        let mem = Arc::new(SharedMemory::<u64>::for_layout(
            &MemoryLayout::registers_only(1),
        ));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let mem = Arc::clone(&mem);
                std::thread::spawn(move || {
                    for _ in 0..10 {
                        mem.apply(
                            ProcessId(i),
                            Op::Write {
                                register: 0,
                                value: 1,
                            },
                        )
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let metrics = mem.metrics();
        assert_eq!(metrics.total_ops(), 40);
        assert_eq!(metrics.writers_of(Location::Register(0)).len(), 4);
        mem.reset_metrics();
        assert_eq!(mem.metrics().total_ops(), 0);
    }
}
