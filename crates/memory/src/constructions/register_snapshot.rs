//! Non-blocking multi-writer snapshot from `r` registers (double collect with
//! unique write tags).

use crate::shared::SharedMemory;
use crate::DEFAULT_SCAN_ATTEMPTS;
use sa_model::{MemoryLayout, Op, ProcessId, Response};
use std::fmt::Debug;
use std::sync::Arc;

/// A register cell written by the construction: the client value plus a tag
/// that is unique across all writes to the object.
///
/// Tag uniqueness is what makes the double collect sound: a register can
/// never return to an earlier tag, so two identical consecutive collects
/// certify that no write was linearized between them.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tagged<V> {
    /// The client value stored by the most recent `update`.
    pub value: V,
    /// The identity part of the tag (a process id or a nonce).
    pub origin: u64,
    /// The per-origin sequence number of the write.
    pub seq: u64,
}

/// A source of unique write tags. Implementations differ only in whether the
/// identity part of the tag reveals the writer's identifier.
pub trait TagSource: Debug + Send {
    /// The identity component of tags produced by this source.
    fn origin(&self) -> u64;
    /// Returns the next sequence number (strictly increasing per source).
    fn next_seq(&mut self) -> u64;
}

/// Tags that embed the writer's process identifier — the standard
/// non-anonymous construction.
#[derive(Debug, Clone)]
pub struct IdTags {
    id: ProcessId,
    seq: u64,
}

impl IdTags {
    /// Creates a tag source for the given process.
    pub fn new(id: ProcessId) -> Self {
        IdTags { id, seq: 0 }
    }
}

impl TagSource for IdTags {
    fn origin(&self) -> u64 {
        self.id.index() as u64
    }
    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }
}

/// Tags that embed a caller-supplied nonce instead of a process identifier,
/// keeping the construction anonymous (the handle never learns or uses an
/// id). This substitutes for the weak-counter construction of
/// Guerraoui–Ruppert \[7\]; see the module documentation.
#[derive(Debug, Clone)]
pub struct NonceTags {
    nonce: u64,
    seq: u64,
}

impl NonceTags {
    /// Creates a tag source from a nonce. Callers should derive the nonce
    /// from a seeded random source so that distinct handles get distinct
    /// nonces.
    pub fn new(nonce: u64) -> Self {
        NonceTags { nonce, seq: 0 }
    }
}

impl TagSource for NonceTags {
    fn origin(&self) -> u64 {
        self.nonce
    }
    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }
}

/// A non-blocking multi-writer snapshot object with `width` components built
/// from exactly `width` MWMR registers.
///
/// * `update(c, v)` is a single register write (wait-free).
/// * `scan()` repeatedly collects all registers until two consecutive
///   collects are identical (non-blocking: it can be starved only if updates
///   keep interfering, in which case some other process is making progress).
///
/// ```
/// use sa_memory::{RegisterSnapshot, IdTags};
/// use sa_model::ProcessId;
///
/// let object = RegisterSnapshot::<u64>::new(4);
/// let mut writer = object.handle(IdTags::new(ProcessId(0)), ProcessId(0));
/// let mut reader = object.handle(IdTags::new(ProcessId(1)), ProcessId(1));
/// writer.update(2, 99);
/// assert_eq!(reader.scan(), vec![None, None, Some(99), None]);
/// ```
#[derive(Debug)]
pub struct RegisterSnapshot<V> {
    memory: Arc<SharedMemory<Tagged<V>>>,
    width: usize,
}

impl<V: Clone + Eq + Debug> RegisterSnapshot<V> {
    /// Creates a snapshot object with `width` components (and `width`
    /// underlying registers).
    pub fn new(width: usize) -> Self {
        RegisterSnapshot {
            memory: Arc::new(SharedMemory::for_layout(&MemoryLayout::registers_only(
                width,
            ))),
            width,
        }
    }

    /// The number of components.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The number of underlying registers — always equal to the width, which
    /// is the space accounting the paper relies on.
    pub fn register_count(&self) -> usize {
        self.memory.layout().register_count()
    }

    /// The underlying register memory (for metrics inspection in tests and
    /// experiments).
    pub fn memory(&self) -> &SharedMemory<Tagged<V>> {
        &self.memory
    }

    /// Creates a per-process handle. `process` is only used for metrics
    /// attribution in the underlying memory; anonymous callers can pass any
    /// placeholder id and a [`NonceTags`] source.
    pub fn handle<T: TagSource>(&self, tags: T, process: ProcessId) -> SnapshotHandle<V, T> {
        SnapshotHandle {
            memory: Arc::clone(&self.memory),
            width: self.width,
            tags,
            process,
        }
    }
}

/// A per-process handle to a [`RegisterSnapshot`].
#[derive(Debug)]
pub struct SnapshotHandle<V, T: TagSource> {
    memory: Arc<SharedMemory<Tagged<V>>>,
    width: usize,
    tags: T,
    process: ProcessId,
}

impl<V: Clone + Eq + Debug, T: TagSource> SnapshotHandle<V, T> {
    /// Writes `value` to component `component` (one register write).
    ///
    /// # Panics
    ///
    /// Panics if `component` is out of range.
    pub fn update(&mut self, component: usize, value: V) {
        assert!(
            component < self.width,
            "component {component} out of range for snapshot of width {}",
            self.width
        );
        let cell = Tagged {
            value,
            origin: self.tags.origin(),
            seq: self.tags.next_seq(),
        };
        self.memory
            .apply(
                self.process,
                Op::Write {
                    register: component,
                    value: cell,
                },
            )
            .expect("component index validated above");
    }

    fn collect(&self) -> Vec<Option<Tagged<V>>> {
        (0..self.width)
            .map(|i| {
                match self
                    .memory
                    .apply(self.process, Op::Read { register: i })
                    .expect("register index in range")
                {
                    Response::Read(v) => v,
                    _ => unreachable!("read returns a read response"),
                }
            })
            .collect()
    }

    /// Attempts a scan with at most `attempts` collect rounds.
    ///
    /// Returns `None` if every pair of consecutive collects differed, i.e.
    /// the scanner was interfered with `attempts` times — in that case some
    /// other process completed an update each round, so the system as a whole
    /// made progress (this is the non-blocking guarantee).
    pub fn try_scan(&self, attempts: usize) -> Option<Vec<Option<V>>> {
        let mut previous = self.collect();
        for _ in 0..attempts {
            let current = self.collect();
            if current == previous {
                return Some(
                    current
                        .into_iter()
                        .map(|cell| cell.map(|c| c.value))
                        .collect(),
                );
            }
            previous = current;
        }
        None
    }

    /// Scans until successful. May spin for as long as concurrent updates
    /// keep interfering (non-blocking, not wait-free).
    pub fn scan(&self) -> Vec<Option<V>> {
        loop {
            if let Some(view) = self.try_scan(DEFAULT_SCAN_ATTEMPTS) {
                return view;
            }
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    #[test]
    fn empty_object_scans_to_bottoms() {
        let object = RegisterSnapshot::<u64>::new(3);
        let reader = object.handle(IdTags::new(ProcessId(0)), ProcessId(0));
        assert_eq!(reader.scan(), vec![None, None, None]);
    }

    #[test]
    fn update_is_visible_to_scan() {
        let object = RegisterSnapshot::<u64>::new(3);
        let mut writer = object.handle(IdTags::new(ProcessId(0)), ProcessId(0));
        writer.update(0, 7);
        writer.update(2, 8);
        assert_eq!(writer.scan(), vec![Some(7), None, Some(8)]);
    }

    #[test]
    fn space_accounting_equals_width() {
        let object = RegisterSnapshot::<u64>::new(5);
        assert_eq!(object.register_count(), 5);
        let mut writer = object.handle(IdTags::new(ProcessId(0)), ProcessId(0));
        for c in 0..5 {
            writer.update(c, c as u64);
        }
        assert_eq!(object.memory().metrics().registers_written(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_out_of_range_panics() {
        let object = RegisterSnapshot::<u64>::new(2);
        let mut writer = object.handle(IdTags::new(ProcessId(0)), ProcessId(0));
        writer.update(2, 1);
    }

    #[test]
    fn nonce_tags_do_not_expose_ids() {
        let object = RegisterSnapshot::<u64>::new(2);
        let mut writer = object.handle(NonceTags::new(0xDEAD_BEEF), ProcessId(0));
        writer.update(0, 1);
        // The stored tag origin is the nonce, not the process id.
        let raw = object.memory().peek_register(0).unwrap();
        assert_eq!(raw.origin, 0xDEAD_BEEF);
        assert_eq!(raw.value, 1);
    }

    #[test]
    fn try_scan_reports_interference() {
        // With zero attempts allowed the scan cannot certify anything.
        let object = RegisterSnapshot::<u64>::new(1);
        let reader = object.handle(IdTags::new(ProcessId(0)), ProcessId(0));
        assert_eq!(reader.try_scan(0), None);
        assert!(reader.try_scan(1).is_some());
    }

    #[test]
    fn concurrent_scans_never_observe_torn_state() {
        // Writer alternates components 0 and 1, writing the same sequence
        // number to both (0 first). Scans must never see component 1 ahead of
        // component 0.
        let object = StdArc::new(RegisterSnapshot::<u64>::new(2));
        let writer_obj = StdArc::clone(&object);
        let writer = std::thread::spawn(move || {
            let mut h = writer_obj.handle(IdTags::new(ProcessId(0)), ProcessId(0));
            for seq in 1..400u64 {
                h.update(0, seq);
                h.update(1, seq);
            }
        });
        let reader_obj = StdArc::clone(&object);
        let reader = std::thread::spawn(move || {
            let h = reader_obj.handle(IdTags::new(ProcessId(1)), ProcessId(1));
            for _ in 0..200 {
                let view = h.scan();
                let c0 = view[0].unwrap_or(0);
                let c1 = view[1].unwrap_or(0);
                assert!(c0 >= c1, "snapshot tore: c0={c0} c1={c1}");
            }
        });
        writer.join().unwrap();
        reader.join().unwrap();
    }

    #[test]
    fn distinct_handles_produce_distinct_tags() {
        let mut a = IdTags::new(ProcessId(0));
        let mut b = IdTags::new(ProcessId(1));
        assert_ne!(
            (a.origin(), a.next_seq()),
            (b.origin(), b.next_seq()),
            "tags from different processes must differ"
        );
        let mut n = NonceTags::new(42);
        assert_eq!(n.origin(), 42);
        assert_eq!(n.next_seq(), 1);
        assert_eq!(n.next_seq(), 2);
    }
}
