//! Snapshot objects built *from registers*.
//!
//! The paper's algorithms are written over multi-writer snapshot objects and
//! then account space in registers by appealing to known constructions:
//! a snapshot object with `r` components can be implemented from `r` MWMR
//! registers (\[5\] in the paper), from `n` single-writer registers (\[1, 13\]),
//! and anonymously (non-blocking) from `r` registers (\[7\]).
//!
//! This module provides runnable constructions with the same space accounting
//! and progress properties used by the paper:
//!
//! * [`RegisterSnapshot`] — a non-blocking multi-writer snapshot from `r`
//!   registers using double collects with unique write tags. With
//!   [`IdTags`] the tags embed the writer's identifier (non-anonymous
//!   setting); with [`NonceTags`] they embed a per-handle nonce instead,
//!   which keeps the construction anonymous (a documented substitution for
//!   the weak-counter construction of Guerraoui–Ruppert \[7\] — the space and
//!   the non-blocking progress guarantee are identical).
//! * [`SwmrSnapshot`] — a wait-free single-writer snapshot from `n`
//!   registers in the style of Afek et al. \[1\] (double collect plus embedded
//!   scans for helping), the building block behind the paper's trivial
//!   `n`-register upper bound.
//!
//! All constructions are expressed against [`SharedMemory`](crate::SharedMemory) using only
//! register reads and writes, so "built from registers" is literal: the
//! metrics of the underlying memory show exactly `r` (respectively `n`)
//! registers being written.

mod register_snapshot;
mod swmr;

pub use register_snapshot::{
    IdTags, NonceTags, RegisterSnapshot, SnapshotHandle, TagSource, Tagged,
};
pub use swmr::{SwmrCell, SwmrHandle, SwmrSnapshot};

/// How many collect rounds a bounded scan is willing to attempt before
/// reporting interference. Non-blocking scans may retry forever under
/// continuous updates; bounded variants let callers implement back-off.
pub const DEFAULT_SCAN_ATTEMPTS: usize = 1_000;
