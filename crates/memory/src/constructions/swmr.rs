//! Wait-free single-writer snapshot from `n` registers (Afek et al. style).

use crate::shared::SharedMemory;
use sa_model::{MemoryLayout, Op, ProcessId, Response};
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::sync::Arc;

/// The contents of one single-writer register of the construction: the
/// writer's latest value, a sequence number, and the *embedded scan* the
/// writer took just before writing (used to help starving scanners).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwmrCell<V> {
    value: V,
    seq: u64,
    embedded: Vec<Option<V>>,
}

/// A wait-free snapshot object with one component per process, built from
/// `n` single-writer registers in the style of Afek, Attiya, Dolev, Gafni,
/// Merritt and Shavit ("Atomic snapshots of shared memory", JACM 1993).
///
/// * `update(v)` by process `i` writes only register `i` (single-writer),
///   embedding a scan taken immediately before the write.
/// * `scan()` double-collects; if a process is seen to move twice, the
///   scanner borrows that process's embedded scan. Every scan therefore
///   terminates within `O(n)` collects: wait-free.
///
/// This is the substrate behind the paper's trivial `n`-register upper bound
/// (`n` single-writer registers can implement any number of MWMR registers
/// \[13\], and in particular a snapshot object).
///
/// ```
/// use sa_memory::SwmrSnapshot;
/// use sa_model::ProcessId;
///
/// let object = SwmrSnapshot::<u64>::new(3);
/// let mut p0 = object.handle(ProcessId(0));
/// let p1 = object.handle(ProcessId(1));
/// p0.update(10);
/// assert_eq!(p1.scan(), vec![Some(10), None, None]);
/// ```
#[derive(Debug)]
pub struct SwmrSnapshot<V> {
    memory: Arc<SharedMemory<SwmrCell<V>>>,
    processes: usize,
}

impl<V: Clone + Eq + Debug> SwmrSnapshot<V> {
    /// Creates a snapshot object for `processes` processes (`processes`
    /// single-writer registers).
    pub fn new(processes: usize) -> Self {
        SwmrSnapshot {
            memory: Arc::new(SharedMemory::for_layout(&MemoryLayout::registers_only(
                processes,
            ))),
            processes,
        }
    }

    /// The number of components (= processes = registers).
    pub fn width(&self) -> usize {
        self.processes
    }

    /// The number of underlying registers.
    pub fn register_count(&self) -> usize {
        self.processes
    }

    /// The underlying register memory, for metrics inspection.
    pub fn memory(&self) -> &SharedMemory<SwmrCell<V>> {
        &self.memory
    }

    /// Creates the handle of process `process`.
    ///
    /// # Panics
    ///
    /// Panics if the process index is out of range.
    pub fn handle(&self, process: ProcessId) -> SwmrHandle<V> {
        assert!(
            process.index() < self.processes,
            "process {process} out of range for {} processes",
            self.processes
        );
        SwmrHandle {
            memory: Arc::clone(&self.memory),
            processes: self.processes,
            process,
            seq: 0,
        }
    }
}

/// The per-process handle of a [`SwmrSnapshot`].
#[derive(Debug)]
pub struct SwmrHandle<V> {
    memory: Arc<SharedMemory<SwmrCell<V>>>,
    processes: usize,
    process: ProcessId,
    seq: u64,
}

impl<V: Clone + Eq + Debug> SwmrHandle<V> {
    fn collect(&self) -> Vec<Option<SwmrCell<V>>> {
        (0..self.processes)
            .map(|i| {
                match self
                    .memory
                    .apply(self.process, Op::Read { register: i })
                    .expect("register index in range")
                {
                    Response::Read(v) => v,
                    _ => unreachable!("read returns a read response"),
                }
            })
            .collect()
    }

    fn values_of(collect: &[Option<SwmrCell<V>>]) -> Vec<Option<V>> {
        collect
            .iter()
            .map(|cell| cell.as_ref().map(|c| c.value.clone()))
            .collect()
    }

    fn seqs_of(collect: &[Option<SwmrCell<V>>]) -> Vec<u64> {
        collect
            .iter()
            .map(|cell| cell.as_ref().map_or(0, |c| c.seq))
            .collect()
    }

    /// Returns a linearizable snapshot of all components. Wait-free: after a
    /// process has been observed to move twice its embedded scan is returned.
    pub fn scan(&self) -> Vec<Option<V>> {
        let mut moved: BTreeSet<usize> = BTreeSet::new();
        let mut previous = self.collect();
        loop {
            let current = self.collect();
            if Self::seqs_of(&previous) == Self::seqs_of(&current) {
                return Self::values_of(&current);
            }
            let prev_seqs = Self::seqs_of(&previous);
            let curr_seqs = Self::seqs_of(&current);
            for j in 0..self.processes {
                if prev_seqs[j] != curr_seqs[j] {
                    if moved.contains(&j) {
                        // Process j completed an update that started after our
                        // scan began; its embedded scan is a valid snapshot
                        // within our interval.
                        let cell = current[j]
                            .as_ref()
                            .expect("a moved process has written its register");
                        return cell.embedded.clone();
                    }
                    moved.insert(j);
                }
            }
            previous = current;
        }
    }

    /// Writes `value` to this process's component. Wait-free; embeds a scan
    /// so that concurrent scanners can borrow it.
    pub fn update(&mut self, value: V) {
        let embedded = self.scan();
        self.seq += 1;
        let cell = SwmrCell {
            value,
            seq: self.seq,
            embedded,
        };
        self.memory
            .apply(
                self.process,
                Op::Write {
                    register: self.process.index(),
                    value: cell,
                },
            )
            .expect("own register index in range");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    #[test]
    fn empty_scan_is_all_bottom() {
        let object = SwmrSnapshot::<u64>::new(4);
        let handle = object.handle(ProcessId(2));
        assert_eq!(handle.scan(), vec![None; 4]);
    }

    #[test]
    fn updates_appear_in_own_component() {
        let object = SwmrSnapshot::<u64>::new(3);
        let mut p0 = object.handle(ProcessId(0));
        let mut p2 = object.handle(ProcessId(2));
        p0.update(5);
        p2.update(6);
        p2.update(7);
        assert_eq!(p0.scan(), vec![Some(5), None, Some(7)]);
    }

    #[test]
    fn register_accounting_is_n() {
        let object = SwmrSnapshot::<u64>::new(6);
        assert_eq!(object.register_count(), 6);
        assert_eq!(object.width(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn handle_for_unknown_process_panics() {
        let object = SwmrSnapshot::<u64>::new(2);
        let _ = object.handle(ProcessId(2));
    }

    #[test]
    fn scans_are_monotone_under_concurrent_updates() {
        // The writer increments its value; every scan by the reader must
        // observe a non-decreasing sequence of values (a torn or stale-helped
        // scan would break monotonicity).
        let object = StdArc::new(SwmrSnapshot::<u64>::new(2));
        let writer_obj = StdArc::clone(&object);
        let writer = std::thread::spawn(move || {
            let mut h = writer_obj.handle(ProcessId(0));
            for v in 1..300u64 {
                h.update(v);
            }
        });
        let reader_obj = StdArc::clone(&object);
        let reader = std::thread::spawn(move || {
            let h = reader_obj.handle(ProcessId(1));
            let mut last = 0u64;
            for _ in 0..300 {
                let view = h.scan();
                let v = view[0].unwrap_or(0);
                assert!(v >= last, "scan went backwards: {v} < {last}");
                last = v;
            }
        });
        writer.join().unwrap();
        reader.join().unwrap();
    }

    #[test]
    fn helping_terminates_scans_under_heavy_updates() {
        // Even with two writers updating continuously, scans terminate
        // (wait-freedom) and return plausible values.
        let object = StdArc::new(SwmrSnapshot::<u64>::new(3));
        let mut writers = Vec::new();
        for p in 0..2usize {
            let obj = StdArc::clone(&object);
            writers.push(std::thread::spawn(move || {
                let mut h = obj.handle(ProcessId(p));
                for v in 0..200u64 {
                    h.update(v);
                }
            }));
        }
        let reader_obj = StdArc::clone(&object);
        let reader = std::thread::spawn(move || {
            let h = reader_obj.handle(ProcessId(2));
            for _ in 0..200 {
                let view = h.scan();
                assert_eq!(view.len(), 3);
                for v in view.iter().flatten() {
                    assert!(*v < 200);
                }
            }
        });
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
    }
}
