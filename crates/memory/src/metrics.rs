//! Accounting of shared-memory usage: operation counts and which locations
//! were actually written.
//!
//! The central measurement of the paper is *space*: how many registers (or
//! snapshot components) an algorithm uses. [`MemoryMetrics`] records, for a
//! run, every location that was ever written, per-kind operation counts and
//! per-process step counts, so experiments can report measured space
//! alongside the paper's formulas.

use sa_model::{OpKind, ProcessId, SnapshotId};
use std::collections::{BTreeMap, BTreeSet};

// The location vocabulary lives in `sa-model` (it is shared with the
// interference analysis and the covering adversary); re-exported here so the
// memory crate's historical `sa_memory::Location` path keeps working.
pub use sa_model::Location;

/// Usage statistics of a shared memory over one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryMetrics {
    ops_by_kind: BTreeMap<OpKind, u64>,
    ops_by_process: BTreeMap<ProcessId, u64>,
    writes_by_location: BTreeMap<Location, u64>,
    writers_by_location: BTreeMap<Location, BTreeSet<ProcessId>>,
}

impl MemoryMetrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        MemoryMetrics::default()
    }

    /// Records one operation of `kind` by `process`; `written` is the
    /// location modified by a write-like operation.
    pub fn record(&mut self, process: ProcessId, kind: OpKind, written: Option<Location>) {
        *self.ops_by_kind.entry(kind).or_insert(0) += 1;
        *self.ops_by_process.entry(process).or_insert(0) += 1;
        if let Some(loc) = written {
            *self.writes_by_location.entry(loc).or_insert(0) += 1;
            self.writers_by_location
                .entry(loc)
                .or_default()
                .insert(process);
        }
    }

    /// Total number of shared-memory operations recorded (including `Nop`s).
    pub fn total_ops(&self) -> u64 {
        self.ops_by_kind.values().sum()
    }

    /// Number of operations of the given kind.
    pub fn ops_of_kind(&self, kind: OpKind) -> u64 {
        self.ops_by_kind.get(&kind).copied().unwrap_or(0)
    }

    /// Number of operations performed by the given process.
    pub fn ops_by(&self, process: ProcessId) -> u64 {
        self.ops_by_process.get(&process).copied().unwrap_or(0)
    }

    /// The set of locations that were written at least once.
    pub fn written_locations(&self) -> impl Iterator<Item = Location> + '_ {
        self.writes_by_location.keys().copied()
    }

    /// The number of distinct locations ever written — the "space actually
    /// used" measurement reported in EXPERIMENTS.md.
    pub fn distinct_locations_written(&self) -> usize {
        self.writes_by_location.len()
    }

    /// The number of distinct components of snapshot object `snapshot` ever
    /// written.
    pub fn components_written(&self, snapshot: SnapshotId) -> usize {
        self.writes_by_location
            .keys()
            .filter(|loc| matches!(loc, Location::Component { snapshot: s, .. } if *s == snapshot))
            .count()
    }

    /// The number of distinct plain registers ever written.
    pub fn registers_written(&self) -> usize {
        self.writes_by_location
            .keys()
            .filter(|loc| matches!(loc, Location::Register(_)))
            .count()
    }

    /// The number of writes applied to `location`.
    pub fn writes_to(&self, location: Location) -> u64 {
        self.writes_by_location.get(&location).copied().unwrap_or(0)
    }

    /// The processes that ever wrote `location`.
    pub fn writers_of(&self, location: Location) -> BTreeSet<ProcessId> {
        self.writers_by_location
            .get(&location)
            .cloned()
            .unwrap_or_default()
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = MemoryMetrics::default();
    }

    /// Merges another metrics object into this one (used by the threaded
    /// memory, which keeps per-thread metrics and merges at the end).
    pub fn merge(&mut self, other: &MemoryMetrics) {
        for (k, v) in &other.ops_by_kind {
            *self.ops_by_kind.entry(*k).or_insert(0) += v;
        }
        for (p, v) in &other.ops_by_process {
            *self.ops_by_process.entry(*p).or_insert(0) += v;
        }
        for (l, v) in &other.writes_by_location {
            *self.writes_by_location.entry(*l).or_insert(0) += v;
        }
        for (l, ps) in &other.writers_by_location {
            self.writers_by_location
                .entry(*l)
                .or_default()
                .extend(ps.iter().copied());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_ops_and_writes() {
        let mut m = MemoryMetrics::new();
        m.record(
            ProcessId(0),
            OpKind::Update,
            Some(Location::Component {
                snapshot: 0,
                component: 3,
            }),
        );
        m.record(ProcessId(0), OpKind::Scan, None);
        m.record(ProcessId(1), OpKind::Write, Some(Location::Register(2)));
        m.record(
            ProcessId(1),
            OpKind::Update,
            Some(Location::Component {
                snapshot: 0,
                component: 3,
            }),
        );

        assert_eq!(m.total_ops(), 4);
        assert_eq!(m.ops_of_kind(OpKind::Update), 2);
        assert_eq!(m.ops_of_kind(OpKind::Scan), 1);
        assert_eq!(m.ops_by(ProcessId(0)), 2);
        assert_eq!(m.distinct_locations_written(), 2);
        assert_eq!(m.components_written(0), 1);
        assert_eq!(m.registers_written(), 1);
        assert_eq!(
            m.writes_to(Location::Component {
                snapshot: 0,
                component: 3
            }),
            2
        );
        assert_eq!(
            m.writers_of(Location::Component {
                snapshot: 0,
                component: 3
            })
            .len(),
            2
        );
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = MemoryMetrics::new();
        m.record(ProcessId(0), OpKind::Write, Some(Location::Register(0)));
        m.reset();
        assert_eq!(m.total_ops(), 0);
        assert_eq!(m.distinct_locations_written(), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = MemoryMetrics::new();
        a.record(ProcessId(0), OpKind::Write, Some(Location::Register(0)));
        let mut b = MemoryMetrics::new();
        b.record(ProcessId(1), OpKind::Write, Some(Location::Register(0)));
        b.record(ProcessId(1), OpKind::Read, None);
        a.merge(&b);
        assert_eq!(a.total_ops(), 3);
        assert_eq!(a.writes_to(Location::Register(0)), 2);
        assert_eq!(a.writers_of(Location::Register(0)).len(), 2);
    }

    #[test]
    fn unknown_queries_return_zero() {
        let m = MemoryMetrics::new();
        assert_eq!(m.ops_by(ProcessId(9)), 0);
        assert_eq!(m.writes_to(Location::Register(9)), 0);
        assert_eq!(m.components_written(4), 0);
        assert!(m.writers_of(Location::Register(0)).is_empty());
    }
}
