//! The deterministic, single-threaded shared memory used by the simulator.
//!
//! [`SimMemory`] is a literal transcription of the paper's model: a set of
//! atomic MWMR registers plus atomic multi-writer snapshot objects. Each call
//! to [`SimMemory::apply`] performs exactly one atomic operation, so the
//! interleaving chosen by a scheduler *is* the linearization order.

use crate::metrics::{Location, MemoryMetrics};
use sa_model::{LayoutError, MemoryLayout, Op, ProcessId, Response};
use std::fmt::Debug;

/// A deterministic in-memory implementation of the shared objects declared by
/// a [`MemoryLayout`].
///
/// `V` is the value type stored by the algorithm; every register and snapshot
/// component holds `Option<V>`, with `None` playing the role of the initial
/// value `⊥`.
///
/// ```
/// use sa_memory::SimMemory;
/// use sa_model::{MemoryLayout, Op, ProcessId, Response};
///
/// let layout = MemoryLayout::with_snapshot_and_registers(3, 1);
/// let mut mem: SimMemory<u64> = SimMemory::for_layout(&layout);
/// mem.apply(ProcessId(0), Op::Update { snapshot: 0, component: 1, value: 42 })?;
/// let resp = mem.apply(ProcessId(1), Op::Scan { snapshot: 0 })?;
/// assert_eq!(resp, Response::Snapshot(vec![None, Some(42), None]));
/// # Ok::<(), sa_model::LayoutError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SimMemory<V> {
    layout: MemoryLayout,
    registers: Vec<Option<V>>,
    snapshots: Vec<Vec<Option<V>>>,
    metrics: MemoryMetrics,
}

impl<V: Clone + Eq + Debug> SimMemory<V> {
    /// Creates a memory with every register and component initialized to `⊥`.
    pub fn for_layout(layout: &MemoryLayout) -> Self {
        SimMemory {
            layout: layout.clone(),
            registers: vec![None; layout.register_count()],
            snapshots: layout
                .snapshot_widths()
                .iter()
                .map(|w| vec![None; *w])
                .collect(),
            metrics: MemoryMetrics::new(),
        }
    }

    /// The layout this memory was created for.
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// Applies one atomic operation on behalf of `process` and returns its
    /// response.
    ///
    /// # Errors
    ///
    /// Returns a [`LayoutError`] if the operation refers to a register or
    /// component outside the layout. This indicates a protocol bug; the
    /// runtime treats it as fatal.
    pub fn apply(&mut self, process: ProcessId, op: Op<V>) -> Result<Response<V>, LayoutError> {
        let kind = op.kind();
        let (response, written) = match op {
            Op::Read { register } => {
                self.layout.check_register(register)?;
                (Response::Read(self.registers[register].clone()), None)
            }
            Op::Write { register, value } => {
                self.layout.check_register(register)?;
                self.registers[register] = Some(value);
                (Response::Written, Some(Location::Register(register)))
            }
            Op::Update {
                snapshot,
                component,
                value,
            } => {
                self.layout.check_component(snapshot, component)?;
                self.snapshots[snapshot][component] = Some(value);
                (
                    Response::Updated,
                    Some(Location::Component {
                        snapshot,
                        component,
                    }),
                )
            }
            Op::Scan { snapshot } => {
                self.layout.check_snapshot(snapshot)?;
                (Response::Snapshot(self.snapshots[snapshot].clone()), None)
            }
            Op::Nop => (Response::Nop, None),
        };
        self.metrics.record(process, kind, written);
        Ok(response)
    }

    /// The usage metrics accumulated so far.
    pub fn metrics(&self) -> &MemoryMetrics {
        &self.metrics
    }

    /// Clears the usage metrics without touching register contents.
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
    }

    /// Reads register `register` without recording a metric (used by
    /// inspection and assertions in tests and adversaries).
    pub fn peek_register(&self, register: usize) -> Option<&V> {
        self.registers.get(register).and_then(|v| v.as_ref())
    }

    /// Returns the current contents of snapshot object `snapshot` without
    /// recording a metric.
    pub fn peek_snapshot(&self, snapshot: usize) -> &[Option<V>] {
        &self.snapshots[snapshot]
    }

    /// State-conditional refinement of the static independence relation:
    /// `true` if `a` and `b` commute *from this memory's current contents*
    /// even though their footprints overlap.
    ///
    /// The static relation (`sa_model::independence::independent`) must hold
    /// in every state, so it deliberately ignores payloads — a `Scan`
    /// conflicts with every update of the same snapshot. But the paper's
    /// Theorem 2 reasons about writes that are reordered *invisibly*, and
    /// that is a property of the current contents:
    ///
    /// * two writes (or two updates) of the **same value** to the **same
    ///   cell** commute — both orders leave the cell identical and both
    ///   responses are acknowledgements;
    /// * a write/update whose value **equals what the cell already holds**
    ///   is invisible to a concurrent read/scan of that location — the
    ///   observer sees the same contents in either order.
    ///
    /// The result is a pure function of `(self, a, b)` and is symmetric in
    /// `a`/`b`, so reduced explorations using it stay deterministic at any
    /// worker count. Ops referring to locations outside the layout (or an
    /// overwriting write to a still-`⊥` cell) conservatively return `false`.
    /// Soundness is machine-checked: the sleep-set explorers assert (in
    /// debug builds) that every pair kept by this refinement actually
    /// commutes, and `sa-runtime`'s commutation checker audits it alongside
    /// the static relation.
    pub fn invisibly_independent(&self, a: &Op<V>, b: &Op<V>) -> bool {
        // `true` if the op writes a value identical to what its target cell
        // currently holds, making it invisible to any observer.
        let invisible_write = |op: &Op<V>| match op {
            Op::Write { register, value } => self.peek_register(*register) == Some(value),
            Op::Update {
                snapshot,
                component,
                value,
            } => {
                self.snapshots
                    .get(*snapshot)
                    .and_then(|cells| cells.get(*component))
                    .and_then(|cell| cell.as_ref())
                    == Some(value)
            }
            _ => false,
        };
        match (a, b) {
            (
                Op::Write {
                    register: ra,
                    value: va,
                },
                Op::Write {
                    register: rb,
                    value: vb,
                },
            ) => ra == rb && va == vb,
            (
                Op::Update {
                    snapshot: sa,
                    component: ca,
                    value: va,
                },
                Op::Update {
                    snapshot: sb,
                    component: cb,
                    value: vb,
                },
            ) => sa == sb && ca == cb && va == vb,
            (w @ Op::Write { register: rw, .. }, Op::Read { register: rr })
            | (Op::Read { register: rr }, w @ Op::Write { register: rw, .. }) => {
                rw == rr && invisible_write(w)
            }
            (u @ Op::Update { snapshot: su, .. }, Op::Scan { snapshot: ss })
            | (Op::Scan { snapshot: ss }, u @ Op::Update { snapshot: su, .. }) => {
                su == ss && invisible_write(u)
            }
            _ => false,
        }
    }

    /// Overwrites the full contents of the memory with another memory's
    /// contents. Both must share the same layout. Used by the covering
    /// adversary when splicing execution fragments.
    ///
    /// # Panics
    ///
    /// Panics if the layouts differ.
    pub fn restore_from(&mut self, other: &SimMemory<V>) {
        assert_eq!(
            self.layout, other.layout,
            "cannot restore memory contents across different layouts"
        );
        self.registers = other.registers.clone();
        self.snapshots = other.snapshots.clone();
    }

    /// A compact fingerprint of the register/snapshot contents (not the
    /// metrics), used by the covering adversary to compare configurations.
    ///
    /// This is a single 64-bit hash, so distinct contents *can* collide;
    /// consumers that need collision resistance (the explorers' dedup keys)
    /// should feed [`SimMemory::hash_contents`] into their own wide hash
    /// instead of hashing this fingerprint.
    pub fn content_fingerprint(&self) -> u64
    where
        V: std::hash::Hash,
    {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::Hasher;
        let mut hasher = DefaultHasher::new();
        self.hash_contents(&mut hasher);
        hasher.finish()
    }

    /// Hashes the full register/snapshot contents (not the metrics) into
    /// `hasher`. Unlike [`SimMemory::content_fingerprint`] this exposes the
    /// raw content stream, so a caller hashing into a wide (or salted) state
    /// key is not bottlenecked by a 64-bit intermediate.
    pub fn hash_contents<H: std::hash::Hasher>(&self, hasher: &mut H)
    where
        V: std::hash::Hash,
    {
        use std::hash::Hash;
        self.registers.hash(hasher);
        self.snapshots.hash(hasher);
    }

    /// Hashes the register/snapshot contents with every stored value first
    /// passed through `map`, without materializing the mapped memory.
    ///
    /// This is how the symmetry-reduced explorers hash memory under a
    /// process-id relabeling: `map` rewrites the ids a value embeds, while
    /// the *locations* (register indices, snapshot components) keep their
    /// positions — the paper's algorithms never address shared objects by
    /// process id (the one that does, the single-writer emulation, is
    /// excluded from symmetry reduction for exactly that reason).
    pub fn hash_contents_mapped<H, F>(&self, hasher: &mut H, mut map: F)
    where
        V: std::hash::Hash,
        H: std::hash::Hasher,
        F: FnMut(&V) -> V,
    {
        let mut hash_slot = |hasher: &mut H, slot: &Option<V>| match slot {
            None => hasher.write_u8(0),
            Some(value) => {
                hasher.write_u8(1);
                map(value).hash(hasher);
            }
        };
        hasher.write_usize(self.registers.len());
        for slot in &self.registers {
            hash_slot(hasher, slot);
        }
        hasher.write_usize(self.snapshots.len());
        for snapshot in &self.snapshots {
            hasher.write_usize(snapshot.len());
            for slot in snapshot {
                hash_slot(hasher, slot);
            }
        }
    }

    /// A length-based estimate of the heap bytes this memory owns: the
    /// register and snapshot slot vectors plus, for every **occupied** slot,
    /// the value's own heap footprint as reported by `value_heap` (the
    /// `Automaton::value_heap_bytes` hook). Metrics and layout bookkeeping
    /// are deliberately excluded — they are shared, not per-configuration.
    ///
    /// Computed from lengths, never capacities, so the result is a pure
    /// function of the contents: that determinism is what lets the
    /// explorers report identical byte estimates at any worker count.
    pub fn approx_heap_bytes<F>(&self, mut value_heap: F) -> usize
    where
        F: FnMut(&V) -> usize,
    {
        let slot = std::mem::size_of::<Option<V>>();
        let mut bytes = self.registers.len() * slot;
        for snapshot in &self.snapshots {
            bytes += std::mem::size_of::<Vec<Option<V>>>() + snapshot.len() * slot;
        }
        for value in self
            .registers
            .iter()
            .chain(self.snapshots.iter().flatten())
            .flatten()
        {
            bytes += value_heap(value);
        }
        bytes
    }

    /// A copy of this memory with every stored value passed through `map`
    /// (locations keep their positions, metrics are cloned unchanged) — the
    /// materialized counterpart of [`SimMemory::hash_contents_mapped`],
    /// used when a whole configuration is canonicalized (e.g. by the
    /// orbit-soundness tests).
    pub fn canonicalized<F>(&self, mut map: F) -> SimMemory<V>
    where
        F: FnMut(&V) -> V,
    {
        SimMemory {
            layout: self.layout.clone(),
            registers: self
                .registers
                .iter()
                .map(|slot| slot.as_ref().map(&mut map))
                .collect(),
            snapshots: self
                .snapshots
                .iter()
                .map(|snapshot| {
                    snapshot
                        .iter()
                        .map(|slot| slot.as_ref().map(&mut map))
                        .collect()
                })
                .collect(),
            metrics: self.metrics.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> MemoryLayout {
        MemoryLayout::new(2, vec![3, 2])
    }

    #[test]
    fn invisible_independence_follows_contents() {
        let mut mem: SimMemory<u64> = SimMemory::for_layout(&layout());
        let upd = |value| Op::Update {
            snapshot: 0,
            component: 1,
            value,
        };
        let scan = Op::Scan { snapshot: 0 };
        // Against ⊥ contents, an update is visible to a scan.
        assert!(!mem.invisibly_independent(&upd(7), &scan));
        mem.apply(ProcessId(0), upd(7)).unwrap();
        // Re-writing the value the cell already holds is invisible; the
        // relation is symmetric and flips off once the condition breaks.
        assert!(mem.invisibly_independent(&upd(7), &scan));
        assert!(mem.invisibly_independent(&scan, &upd(7)));
        assert!(!mem.invisibly_independent(&upd(8), &scan));
        // Same-cell same-value updates commute regardless of contents;
        // differing values or differing cells do not qualify.
        assert!(mem.invisibly_independent(&upd(9), &upd(9)));
        assert!(!mem.invisibly_independent(&upd(9), &upd(10)));
        let other_cell = Op::Update {
            snapshot: 0,
            component: 0,
            value: 9,
        };
        assert!(!mem.invisibly_independent(&upd(9), &other_cell));

        let write = |value| Op::Write { register: 0, value };
        let read = Op::Read { register: 0 };
        assert!(!mem.invisibly_independent(&write(3), &read));
        mem.apply(ProcessId(1), write(3)).unwrap();
        assert!(mem.invisibly_independent(&write(3), &read));
        assert!(mem.invisibly_independent(&read, &write(3)));
        assert!(!mem.invisibly_independent(&write(4), &read));
        assert!(mem.invisibly_independent(&write(5), &write(5)));
        assert!(!mem.invisibly_independent(&write(5), &write(6)));
        // Out-of-layout targets and non-matching shapes are conservative.
        let stray = Op::Write {
            register: 99,
            value: 3,
        };
        assert!(!mem.invisibly_independent(&stray, &Op::Read { register: 99 }));
        assert!(!mem.invisibly_independent(&Op::Nop, &scan));
    }

    #[test]
    fn registers_start_at_bottom() {
        let mem: SimMemory<u64> = SimMemory::for_layout(&layout());
        assert_eq!(mem.peek_register(0), None);
        assert_eq!(mem.peek_snapshot(0), &[None, None, None]);
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut mem: SimMemory<u64> = SimMemory::for_layout(&layout());
        mem.apply(
            ProcessId(0),
            Op::Write {
                register: 1,
                value: 5,
            },
        )
        .unwrap();
        let r = mem.apply(ProcessId(1), Op::Read { register: 1 }).unwrap();
        assert_eq!(r, Response::Read(Some(5)));
        let r = mem.apply(ProcessId(1), Op::Read { register: 0 }).unwrap();
        assert_eq!(r, Response::Read(None));
    }

    #[test]
    fn update_then_scan_sees_value() {
        let mut mem: SimMemory<u64> = SimMemory::for_layout(&layout());
        mem.apply(
            ProcessId(0),
            Op::Update {
                snapshot: 1,
                component: 1,
                value: 9,
            },
        )
        .unwrap();
        let r = mem.apply(ProcessId(2), Op::Scan { snapshot: 1 }).unwrap();
        assert_eq!(r, Response::Snapshot(vec![None, Some(9)]));
        // Other snapshot object unaffected.
        let r = mem.apply(ProcessId(2), Op::Scan { snapshot: 0 }).unwrap();
        assert_eq!(r, Response::Snapshot(vec![None, None, None]));
    }

    #[test]
    fn overwrites_keep_latest_value() {
        let mut mem: SimMemory<u64> = SimMemory::for_layout(&layout());
        for v in 0..10u64 {
            mem.apply(
                ProcessId(0),
                Op::Update {
                    snapshot: 0,
                    component: 0,
                    value: v,
                },
            )
            .unwrap();
        }
        assert_eq!(mem.peek_snapshot(0)[0], Some(9));
    }

    #[test]
    fn out_of_range_operations_error() {
        let mut mem: SimMemory<u64> = SimMemory::for_layout(&layout());
        assert!(mem.apply(ProcessId(0), Op::Read { register: 2 }).is_err());
        assert!(mem
            .apply(
                ProcessId(0),
                Op::Update {
                    snapshot: 0,
                    component: 3,
                    value: 1
                }
            )
            .is_err());
        assert!(mem.apply(ProcessId(0), Op::Scan { snapshot: 2 }).is_err());
        assert!(mem
            .apply(
                ProcessId(0),
                Op::Write {
                    register: 5,
                    value: 0
                }
            )
            .is_err());
    }

    #[test]
    fn metrics_track_ops_and_space() {
        let mut mem: SimMemory<u64> = SimMemory::for_layout(&layout());
        mem.apply(
            ProcessId(0),
            Op::Update {
                snapshot: 0,
                component: 0,
                value: 1,
            },
        )
        .unwrap();
        mem.apply(
            ProcessId(0),
            Op::Update {
                snapshot: 0,
                component: 1,
                value: 2,
            },
        )
        .unwrap();
        mem.apply(ProcessId(1), Op::Scan { snapshot: 0 }).unwrap();
        mem.apply(ProcessId(1), Op::Nop).unwrap();
        let metrics = mem.metrics();
        assert_eq!(metrics.total_ops(), 4);
        assert_eq!(metrics.components_written(0), 2);
        assert_eq!(metrics.distinct_locations_written(), 2);
    }

    #[test]
    fn nop_touches_nothing() {
        let mut mem: SimMemory<u64> = SimMemory::for_layout(&layout());
        let before = mem.clone();
        mem.apply(ProcessId(0), Op::Nop).unwrap();
        assert_eq!(mem.peek_snapshot(0), before.peek_snapshot(0));
        assert_eq!(mem.metrics().distinct_locations_written(), 0);
    }

    #[test]
    fn restore_from_copies_contents_only() {
        let mut a: SimMemory<u64> = SimMemory::for_layout(&layout());
        let mut b: SimMemory<u64> = SimMemory::for_layout(&layout());
        b.apply(
            ProcessId(0),
            Op::Write {
                register: 0,
                value: 3,
            },
        )
        .unwrap();
        a.restore_from(&b);
        assert_eq!(a.peek_register(0), Some(&3));
        // Metrics of `a` are untouched by restore.
        assert_eq!(a.metrics().total_ops(), 0);
    }

    #[test]
    fn fingerprint_changes_with_contents() {
        let mut a: SimMemory<u64> = SimMemory::for_layout(&layout());
        let f0 = a.content_fingerprint();
        a.apply(
            ProcessId(0),
            Op::Write {
                register: 0,
                value: 1,
            },
        )
        .unwrap();
        let f1 = a.content_fingerprint();
        assert_ne!(f0, f1);
        // Metrics do not influence the fingerprint.
        a.apply(ProcessId(0), Op::Read { register: 0 }).unwrap();
        assert_eq!(a.content_fingerprint(), f1);
    }

    #[test]
    fn mapped_hash_matches_materialized_canonicalization() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::Hasher;
        let mut mem: SimMemory<u64> = SimMemory::for_layout(&layout());
        mem.apply(
            ProcessId(0),
            Op::Write {
                register: 1,
                value: 10,
            },
        )
        .unwrap();
        mem.apply(
            ProcessId(1),
            Op::Update {
                snapshot: 0,
                component: 2,
                value: 20,
            },
        )
        .unwrap();
        let hash_mapped = |mem: &SimMemory<u64>, map: fn(&u64) -> u64| {
            let mut hasher = DefaultHasher::new();
            mem.hash_contents_mapped(&mut hasher, map);
            hasher.finish()
        };
        // Mapping then hashing raw equals hashing with the map inline.
        let doubled = mem.canonicalized(|v| v * 2);
        assert_eq!(doubled.peek_register(1), Some(&20));
        assert_eq!(doubled.peek_snapshot(0)[2], Some(40));
        assert_eq!(hash_mapped(&mem, |v| v * 2), hash_mapped(&doubled, |v| *v));
        // The identity map distinguishes contents like the raw hash does.
        assert_ne!(hash_mapped(&mem, |v| *v), hash_mapped(&doubled, |v| *v));
        // Locations stay put: canonicalization never moves a value.
        assert_eq!(doubled.peek_register(0), None);
        // Metrics ride along unchanged.
        assert_eq!(doubled.metrics().total_ops(), mem.metrics().total_ops());
    }

    #[test]
    #[should_panic(expected = "different layouts")]
    fn restore_from_rejects_layout_mismatch() {
        let mut a: SimMemory<u64> = SimMemory::for_layout(&MemoryLayout::registers_only(1));
        let b: SimMemory<u64> = SimMemory::for_layout(&MemoryLayout::registers_only(2));
        a.restore_from(&b);
    }
}
