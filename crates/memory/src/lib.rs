//! Shared-memory substrate for the set-agreement reproduction.
//!
//! The paper "On the Space Complexity of Set Agreement" (PODC 2015) works in
//! the standard asynchronous shared-memory model: processes communicate by
//! applying atomic read and write operations to multi-writer multi-reader
//! registers, and its algorithms are expressed over multi-writer *snapshot
//! objects* (update/scan), which are implementable from registers.
//!
//! This crate provides that substrate in three forms:
//!
//! * [`SimMemory`] — a deterministic, single-threaded memory driven one
//!   atomic operation at a time by the simulator in `sa-runtime`. The
//!   interleaving chosen by a scheduler is the linearization order, which is
//!   what makes adversarial scheduling and exhaustive exploration possible.
//! * [`SharedMemory`] — the same objects behind locks so that real OS threads
//!   can drive the same algorithm state machines concurrently.
//! * [`constructions`] — snapshot objects *built from registers* (the
//!   double-collect multi-writer snapshot, the single-writer wait-free
//!   snapshot with helping, and an anonymous variant), which realize the
//!   space accounting the paper relies on when converting "components" into
//!   "registers".
//!
//! Space usage is measured by [`MemoryMetrics`]: every location (register or
//! snapshot component) that is ever written is recorded, so experiments can
//! report measured space next to the paper's formulas.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod constructions;
mod metrics;
mod shared;
mod sim;

pub use constructions::{
    IdTags, NonceTags, RegisterSnapshot, SnapshotHandle, SwmrCell, SwmrHandle, SwmrSnapshot,
    TagSource, Tagged, DEFAULT_SCAN_ATTEMPTS,
};
pub use metrics::{Location, MemoryMetrics};
pub use shared::SharedMemory;
pub use sim::SimMemory;
