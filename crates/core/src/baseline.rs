//! Baseline algorithms the paper compares against.
//!
//! * [`WideBaseline`] — the Figure 3 state machine instantiated with
//!   `2(n − k)` snapshot components. This is the space used by the prior
//!   1-obstruction-free k-set agreement algorithm of Delporte-Gallet,
//!   Fauconnier, Gafni and Rajsbaum \[4\], which the paper improves to
//!   `n − k + 2` components. (The exact pseudocode of \[4\] is not contained
//!   in the paper; instantiating Figure 3 with the wider object preserves the
//!   quantity the paper compares — the register count — and gives a runnable
//!   algorithm with the same communication pattern. See DESIGN.md.)
//! * [`SwmrEmulated`] — a protocol adapter realizing the paper's *trivial*
//!   upper bound of `n` registers: "n (large) single-writer registers can
//!   implement any number of multi-writer registers \[13\]". It wraps any
//!   snapshot-based automaton and emulates its snapshot object from `n`
//!   single-writer full-information registers (collect-before-update for
//!   per-component timestamps, double collect for atomic scans).
//! * [`FullInfoSetAgreement`] — `SwmrEmulated<OneShotSetAgreement>`, the
//!   concrete trivial baseline used in the benchmark harness.

use crate::error::AlgorithmError;
use crate::oneshot::OneShotSetAgreement;
use crate::values::Pair;
use sa_model::{
    Automaton, Decision, IdRelabeling, InputValue, MemoryLayout, Op, Params, ProcessId, Response,
    SymmetryClass,
};
use std::hash::Hasher;

/// The Figure 3 one-shot algorithm run over a snapshot object with
/// `2(n − k)` components — the space of the prior algorithm \[4\] for
/// `m = 1`.
///
/// ```
/// use sa_core::WideBaseline;
/// use sa_model::{Params, ProcessId};
///
/// let params = Params::new(10, 1, 3)?;
/// let baseline = WideBaseline::new(params, ProcessId(0), 42).unwrap();
/// assert_eq!(baseline.width(), 2 * (10 - 3));
/// # Ok::<(), sa_model::ParamsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WideBaseline {
    inner: OneShotSetAgreement,
}

impl WideBaseline {
    /// Creates the baseline automaton of process `id` with input `input`.
    ///
    /// # Errors
    ///
    /// Returns [`AlgorithmError::TooFewComponents`] if `2(n − k)` is below
    /// the `n + 2m − k` components the Figure 3 correctness proof requires
    /// (this happens exactly when `n < k + 2m`, e.g. `m = 1` and `k = n − 1`,
    /// the one case where \[4\] uses fewer registers than the paper), or
    /// [`AlgorithmError::UnknownProcess`] if `id` is out of range.
    pub fn new(params: Params, id: ProcessId, input: InputValue) -> Result<Self, AlgorithmError> {
        let width = WideBaseline::width_for(params);
        let inner = OneShotSetAgreement::with_width(params, id, input, width)?;
        Ok(WideBaseline { inner })
    }

    /// The snapshot width `2(n − k)` used by the prior algorithm \[4\].
    pub fn width_for(params: Params) -> usize {
        2 * (params.n() - params.k())
    }

    /// The snapshot width used by this instance.
    pub fn width(&self) -> usize {
        self.inner.width()
    }

    /// The problem parameters.
    pub fn params(&self) -> &Params {
        self.inner.params()
    }

    /// The process identifier.
    pub fn id(&self) -> ProcessId {
        self.inner.id()
    }

    /// The wrapped Figure 3 automaton.
    pub fn inner(&self) -> &OneShotSetAgreement {
        &self.inner
    }
}

impl Automaton for WideBaseline {
    type Value = Pair;

    fn layout(&self) -> MemoryLayout {
        self.inner.layout()
    }

    fn poised(&self) -> Option<Op<Pair>> {
        self.inner.poised()
    }

    fn apply(&mut self, response: Response<Pair>) -> Vec<Decision> {
        self.inner.apply(response)
    }

    fn symmetry_class(&self) -> SymmetryClass {
        self.inner.symmetry_class()
    }

    fn relabeled(&self, relabel: &IdRelabeling) -> Self {
        WideBaseline {
            inner: self.inner.relabeled(relabel),
        }
    }

    fn hash_behavior<H: Hasher>(&self, relabel: &IdRelabeling, state: &mut H) {
        self.inner.hash_behavior(relabel, state);
    }

    fn relabel_value(value: &Pair, relabel: &IdRelabeling) -> Pair {
        OneShotSetAgreement::relabel_value(value, relabel)
    }
}

/// A per-component cell of a full-information single-writer register: the
/// latest value this process wrote to the emulated component, together with
/// the timestamp it used.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct EmulatedCell<V> {
    value: V,
    seq: u64,
    writer: ProcessId,
}

/// The full-information record stored in one single-writer register: one
/// optional cell per emulated snapshot component.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FullInfoRecord<V> {
    cells: Vec<Option<EmulatedCell<V>>>,
}

impl<V: Clone> FullInfoRecord<V> {
    fn empty(width: usize) -> Self {
        FullInfoRecord {
            cells: vec![None; width],
        }
    }
}

/// Micro-phase of the single-writer emulation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum EmulationPhase<V> {
    /// The wrapped automaton has no pending shared-memory request; forward
    /// its next operation on the following step.
    Idle,
    /// Emulating `update(component, value)`: collecting every register to
    /// learn the highest timestamp already used for `component`.
    UpdateCollect {
        component: usize,
        value: V,
        next_register: usize,
        max_seq: u64,
    },
    /// Emulating `update`: about to write the own register with the bumped
    /// timestamp in place.
    UpdateWrite,
    /// Emulating `scan()`: performing collect number `round` (0 or 1) of a
    /// double collect; `previous` holds the first collect once complete.
    ScanCollect {
        next_register: usize,
        current: Vec<Option<FullInfoRecord<V>>>,
        previous: Option<Vec<Option<FullInfoRecord<V>>>>,
    },
    /// The wrapped automaton halted.
    Done,
}

/// A protocol adapter that runs any snapshot-based automaton over `n`
/// single-writer full-information registers — the construction behind the
/// paper's trivial upper bound of `n` registers (\[1, 13\] in the paper).
///
/// Register `i` is written only by process `i` and holds that process's
/// latest value for **every** emulated snapshot component, each tagged with
/// a `(sequence number, writer)` timestamp:
///
/// * an emulated `update(j, v)` first collects all `n` registers to learn the
///   largest timestamp already attached to component `j`, then writes the own
///   register with `v` under a strictly larger timestamp (the write is the
///   linearization point);
/// * an emulated `scan()` repeatedly collects all `n` registers until two
///   consecutive collects are identical; the merged view (per component, the
///   cell with the largest timestamp) is then the memory content at every
///   point between the two collects, which makes the scan atomic.
///
/// The double collect is non-blocking rather than wait-free, exactly like the
/// progress the paper needs: under an `m`-obstruction-free schedule the
/// interfering writers eventually stop, so scans complete.
///
/// ```
/// use sa_core::{FullInfoSetAgreement, OneShotSetAgreement, SwmrEmulated};
/// use sa_model::{Automaton, Params, ProcessId};
///
/// let params = Params::new(5, 1, 2)?;
/// let inner = OneShotSetAgreement::new(params, ProcessId(3), 7);
/// let emulated: FullInfoSetAgreement = SwmrEmulated::new(params, ProcessId(3), inner);
/// // The layout is n plain registers — no snapshot object at all.
/// assert_eq!(emulated.layout().register_count(), 5);
/// assert_eq!(emulated.layout().snapshot_count(), 0);
/// # Ok::<(), sa_model::ParamsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SwmrEmulated<A: Automaton> {
    params: Params,
    id: ProcessId,
    inner: A,
    /// The emulated snapshot width (taken from the wrapped automaton's layout).
    width: usize,
    /// The process's own register content (mirrored locally so an update can
    /// modify one cell and rewrite the record).
    own_record: FullInfoRecord<A::Value>,
    phase: EmulationPhase<A::Value>,
    /// Number of double-collect rounds performed by the current scan (for
    /// diagnostics; reset when the scan completes).
    scan_rounds: u64,
}

/// The paper's trivial `n`-register baseline: the Figure 3 one-shot algorithm
/// run over the single-writer emulation.
pub type FullInfoSetAgreement = SwmrEmulated<OneShotSetAgreement>;

impl<A: Automaton> SwmrEmulated<A>
where
    A::Value: Clone,
{
    /// Wraps `inner`, which must use a single snapshot object (the shape of
    /// Figures 3 and 4), and emulates that object from `params.n()`
    /// single-writer registers.
    ///
    /// # Panics
    ///
    /// Panics if the wrapped automaton declares plain registers or more than
    /// one snapshot object — the emulation only targets the single-snapshot
    /// shape used by the paper's non-anonymous algorithms.
    pub fn new(params: Params, id: ProcessId, inner: A) -> Self {
        let layout = inner.layout();
        assert_eq!(
            layout.register_count(),
            0,
            "SwmrEmulated only emulates snapshot-only layouts"
        );
        assert_eq!(
            layout.snapshot_count(),
            1,
            "SwmrEmulated expects exactly one snapshot object"
        );
        let width = layout.snapshot_width(0).unwrap_or(0);
        SwmrEmulated {
            params,
            id,
            width,
            own_record: FullInfoRecord::empty(width),
            inner,
            phase: EmulationPhase::Idle,
            scan_rounds: 0,
        }
    }

    /// Convenience constructor for the concrete trivial baseline: Figure 3
    /// with input `input`, emulated over `n` single-writer registers.
    pub fn one_shot(params: Params, id: ProcessId, input: InputValue) -> FullInfoSetAgreement {
        SwmrEmulated::new(params, id, OneShotSetAgreement::new(params, id, input))
    }

    /// The wrapped automaton.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// The problem parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The emulated snapshot width.
    pub fn emulated_width(&self) -> usize {
        self.width
    }

    /// Number of collect rounds performed by the scan currently in progress.
    pub fn scan_rounds(&self) -> u64 {
        self.scan_rounds
    }

    /// Starts emulating the operation the wrapped automaton is poised to
    /// perform, or marks the emulation finished if it halted.
    fn arm(&mut self) {
        self.phase = match self.inner.poised() {
            None => EmulationPhase::Done,
            Some(Op::Update {
                snapshot: _,
                component,
                value,
            }) => EmulationPhase::UpdateCollect {
                component,
                value,
                next_register: 0,
                max_seq: 0,
            },
            Some(Op::Scan { .. }) => {
                self.scan_rounds = 0;
                EmulationPhase::ScanCollect {
                    next_register: 0,
                    current: vec![None; self.params.n()],
                    previous: None,
                }
            }
            Some(Op::Nop) => EmulationPhase::Idle,
            Some(Op::Read { .. }) | Some(Op::Write { .. }) => {
                panic!("SwmrEmulated cannot wrap automata that use plain registers")
            }
        };
    }

    /// Merges a collect into the emulated snapshot view: for every component,
    /// the cell with the largest `(seq, writer)` timestamp wins.
    fn merge(collect: &[Option<FullInfoRecord<A::Value>>], width: usize) -> Vec<Option<A::Value>> {
        // Per component: the best cell seen so far and its (seq, writer) stamp.
        type Best<'a, V> = Option<(&'a EmulatedCell<V>, (u64, ProcessId))>;
        let mut view: Vec<Best<'_, A::Value>> = vec![None; width];
        for record in collect.iter().flatten() {
            for (component, cell) in record.cells.iter().enumerate() {
                let Some(cell) = cell else { continue };
                let stamp = (cell.seq, cell.writer);
                match &view[component] {
                    Some((_, best)) if *best >= stamp => {}
                    _ => view[component] = Some((cell, stamp)),
                }
            }
        }
        view.into_iter()
            .map(|entry| entry.map(|(cell, _)| cell.value.clone()))
            .collect()
    }
}

fn record_heap_bytes<A: Automaton>(record: &FullInfoRecord<A::Value>) -> usize {
    record.cells.len() * std::mem::size_of::<Option<EmulatedCell<A::Value>>>()
        + record
            .cells
            .iter()
            .flatten()
            .map(|cell| A::value_heap_bytes(&cell.value))
            .sum::<usize>()
}

impl<A: Automaton> Automaton for SwmrEmulated<A>
where
    A::Value: Clone,
{
    type Value = FullInfoRecord<A::Value>;

    fn approx_heap_bytes(&self) -> usize {
        let mut bytes = self.inner.approx_heap_bytes() + record_heap_bytes::<A>(&self.own_record);
        // A scan in flight holds one or two collect vectors of full records.
        if let EmulationPhase::ScanCollect {
            current, previous, ..
        } = &self.phase
        {
            for collect in std::iter::once(current).chain(previous.iter()) {
                bytes += collect.len() * std::mem::size_of::<Option<FullInfoRecord<A::Value>>>();
                bytes += collect
                    .iter()
                    .flatten()
                    .map(record_heap_bytes::<A>)
                    .sum::<usize>();
            }
        }
        bytes
    }

    fn value_heap_bytes(value: &FullInfoRecord<A::Value>) -> usize {
        record_heap_bytes::<A>(value)
    }

    // `symmetry_class` deliberately keeps its `Opaque` default: this
    // emulation addresses its own single-writer register *by process id*
    // (`register: self.id.index()`), so a relabeling would also have to
    // permute register locations — beyond what value relabeling can
    // express. Symmetry-reduced explorers therefore fall back to plain
    // exploration for this automaton instead of pruning unsoundly.

    fn layout(&self) -> MemoryLayout {
        MemoryLayout::registers_only(self.params.n())
    }

    fn poised(&self) -> Option<Op<FullInfoRecord<A::Value>>> {
        match &self.phase {
            EmulationPhase::Idle => Some(Op::Nop),
            EmulationPhase::UpdateCollect { next_register, .. } => Some(Op::Read {
                register: *next_register,
            }),
            EmulationPhase::UpdateWrite => Some(Op::Write {
                register: self.id.index(),
                value: self.own_record.clone(),
            }),
            EmulationPhase::ScanCollect { next_register, .. } => Some(Op::Read {
                register: *next_register,
            }),
            EmulationPhase::Done => None,
        }
    }

    fn apply(&mut self, response: Response<FullInfoRecord<A::Value>>) -> Vec<Decision> {
        match std::mem::replace(&mut self.phase, EmulationPhase::Idle) {
            EmulationPhase::Idle => {
                // The wrapped automaton was poised to a Nop (a purely local
                // step) or we are about to arm the next emulated operation.
                match self.inner.poised() {
                    Some(Op::Nop) => {
                        let decisions = self.inner.apply(Response::Nop);
                        self.arm();
                        decisions
                    }
                    _ => {
                        self.arm();
                        Vec::new()
                    }
                }
            }
            EmulationPhase::UpdateCollect {
                component,
                value,
                next_register,
                max_seq,
            } => {
                let record = response.expect_read();
                let observed = record
                    .as_ref()
                    .and_then(|r| r.cells.get(component))
                    .and_then(|cell| cell.as_ref())
                    .map_or(0, |cell| cell.seq);
                let max_seq = max_seq.max(observed);
                if next_register + 1 < self.params.n() {
                    self.phase = EmulationPhase::UpdateCollect {
                        component,
                        value,
                        next_register: next_register + 1,
                        max_seq,
                    };
                } else {
                    // All registers collected: bump the timestamp and write.
                    self.own_record.cells[component] = Some(EmulatedCell {
                        value,
                        seq: max_seq + 1,
                        writer: self.id,
                    });
                    self.phase = EmulationPhase::UpdateWrite;
                }
                Vec::new()
            }
            EmulationPhase::UpdateWrite => {
                debug_assert_eq!(response, Response::Written);
                let decisions = self.inner.apply(Response::Updated);
                self.arm();
                decisions
            }
            EmulationPhase::ScanCollect {
                next_register,
                mut current,
                previous,
            } => {
                current[next_register] = response.expect_read();
                if next_register + 1 < self.params.n() {
                    self.phase = EmulationPhase::ScanCollect {
                        next_register: next_register + 1,
                        current,
                        previous,
                    };
                    return Vec::new();
                }
                // A collect just completed.
                self.scan_rounds += 1;
                match previous {
                    Some(previous) if previous == current => {
                        // Two identical collects: the merged view is atomic.
                        let view = Self::merge(&current, self.width);
                        let decisions = self.inner.apply(Response::Snapshot(view));
                        self.arm();
                        decisions
                    }
                    _ => {
                        // Keep collecting until two consecutive collects agree.
                        self.phase = EmulationPhase::ScanCollect {
                            next_register: 0,
                            current: vec![None; self.params.n()],
                            previous: Some(current),
                        };
                        Vec::new()
                    }
                }
            }
            EmulationPhase::Done => panic!("apply called on a halted process"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_runtime::{
        check_k_agreement, check_validity, Executor, InputLog, ObstructionScheduler,
        RandomScheduler, RunConfig, SoloScheduler,
    };

    fn input_log(params: Params) -> InputLog {
        let mut log = InputLog::new();
        for p in 0..params.n() {
            log.record(1, 100 + p as u64);
        }
        log
    }

    #[test]
    fn wide_baseline_uses_twice_n_minus_k_components() {
        let params = Params::new(10, 1, 3).unwrap();
        let baseline = WideBaseline::new(params, ProcessId(0), 1).unwrap();
        assert_eq!(baseline.width(), 14);
        assert_eq!(baseline.layout(), MemoryLayout::with_snapshot(14));
        assert_eq!(baseline.params().n(), 10);
        assert_eq!(baseline.id(), ProcessId(0));
        assert_eq!(baseline.inner().width(), 14);
    }

    #[test]
    fn wide_baseline_rejects_the_narrow_case() {
        // For k = n - 1 and m = 1, 2(n - k) = 2 < n + 2m - k = 3: the
        // Figure 3 proof does not cover the prior algorithm's width.
        let params = Params::new(4, 1, 3).unwrap();
        assert!(matches!(
            WideBaseline::new(params, ProcessId(0), 1),
            Err(AlgorithmError::TooFewComponents { .. })
        ));
    }

    #[test]
    fn wide_baseline_never_saves_space_over_figure_3() {
        for params in sa_model::ParamSweep::up_to(12).filter(|p| p.m() == 1) {
            if WideBaseline::new(params, ProcessId(0), 1).is_ok() {
                assert!(
                    WideBaseline::width_for(params) >= params.snapshot_components(),
                    "paper's algorithm should use no more components than [4] for {params:?}"
                );
            }
        }
    }

    #[test]
    fn wide_baseline_obstruction_runs_agree() {
        let params = Params::new(8, 1, 3).unwrap();
        let automata: Vec<_> = (0..8)
            .map(|p| WideBaseline::new(params, ProcessId(p), 100 + p as u64).unwrap())
            .collect();
        let mut exec = Executor::new(automata);
        let mut sched = ObstructionScheduler::new(300, vec![ProcessId(2)], 11);
        let report = exec.run(&mut sched, RunConfig::with_max_steps(200_000));
        assert!(report.halted[2]);
        check_k_agreement(3, &report.decisions).unwrap();
        check_validity(&input_log(params), &report.decisions).unwrap();
    }

    #[test]
    fn emulated_layout_is_n_plain_registers() {
        let params = Params::new(6, 2, 3).unwrap();
        let a = SwmrEmulated::<OneShotSetAgreement>::one_shot(params, ProcessId(1), 5);
        let layout = a.layout();
        assert_eq!(layout.register_count(), 6);
        assert_eq!(layout.snapshot_count(), 0);
        assert_eq!(layout.register_cost_non_anonymous(6), 6);
        assert_eq!(a.emulated_width(), params.snapshot_components());
        assert_eq!(a.params().n(), 6);
    }

    #[test]
    fn emulated_solo_run_decides_own_input() {
        let params = Params::new(4, 1, 1).unwrap();
        let automata: Vec<_> = (0..4)
            .map(|p| {
                SwmrEmulated::<OneShotSetAgreement>::one_shot(params, ProcessId(p), 50 + p as u64)
            })
            .collect();
        let mut exec = Executor::new(automata);
        let report = exec.run(&mut SoloScheduler::new(ProcessId(1)), RunConfig::default());
        assert!(report.halted[1]);
        assert_eq!(report.decisions.decision_of(ProcessId(1), 1), Some(51));
    }

    #[test]
    fn emulated_obstruction_runs_satisfy_properties() {
        for (n, m, k) in [(4, 1, 2), (5, 2, 3), (4, 2, 2)] {
            let params = Params::new(n, m, k).unwrap();
            let automata: Vec<_> = (0..n)
                .map(|p| {
                    SwmrEmulated::<OneShotSetAgreement>::one_shot(
                        params,
                        ProcessId(p),
                        100 + p as u64,
                    )
                })
                .collect();
            let mut exec = Executor::new(automata);
            let survivors: Vec<_> = (0..m).map(ProcessId).collect();
            let mut sched = ObstructionScheduler::new(200, survivors.clone(), 3);
            let report = exec.run(&mut sched, RunConfig::with_max_steps(500_000));
            for p in &survivors {
                assert!(
                    report.halted[p.index()],
                    "{p} undecided for n={n} m={m} k={k}"
                );
            }
            check_k_agreement(k, &report.decisions).unwrap();
            check_validity(&input_log(params), &report.decisions).unwrap();
        }
    }

    #[test]
    fn emulated_contended_runs_preserve_safety() {
        for seed in 0..5u64 {
            let params = Params::new(4, 1, 2).unwrap();
            let automata: Vec<_> = (0..4)
                .map(|p| {
                    SwmrEmulated::<OneShotSetAgreement>::one_shot(
                        params,
                        ProcessId(p),
                        100 + p as u64,
                    )
                })
                .collect();
            let mut exec = Executor::new(automata);
            let mut sched = RandomScheduler::new(seed);
            let report = exec.run(&mut sched, RunConfig::with_max_steps(20_000));
            check_k_agreement(2, &report.decisions).unwrap();
            check_validity(&input_log(params), &report.decisions).unwrap();
        }
    }

    #[test]
    fn emulated_writes_touch_only_own_register() {
        let params = Params::new(5, 1, 2).unwrap();
        let automata: Vec<_> = (0..5)
            .map(|p| SwmrEmulated::<OneShotSetAgreement>::one_shot(params, ProcessId(p), p as u64))
            .collect();
        let mut exec = Executor::new(automata);
        let mut sched = RandomScheduler::new(7);
        let report = exec.run(&mut sched, RunConfig::with_max_steps(10_000));
        for p in 0..5 {
            use sa_memory::Location;
            let writers = report.metrics.writers_of(Location::Register(p));
            assert!(
                writers.iter().all(|w| w.index() == p),
                "register {p} written by {writers:?}"
            );
        }
    }

    #[test]
    fn merge_prefers_largest_timestamp() {
        let cell = |value: u8, seq, writer| {
            Some(EmulatedCell {
                value,
                seq,
                writer: ProcessId(writer),
            })
        };
        let records = vec![
            Some(FullInfoRecord {
                cells: vec![cell(1, 1, 0), None],
            }),
            Some(FullInfoRecord {
                cells: vec![cell(2, 2, 1), cell(9, 1, 1)],
            }),
            None,
        ];
        let view = SwmrEmulated::<DummyAutomaton>::merge(&records, 2);
        assert_eq!(view, vec![Some(2), Some(9)]);
    }

    /// A minimal automaton used only to instantiate the generic `merge` in a
    /// unit test.
    #[derive(Debug)]
    struct DummyAutomaton;

    impl Automaton for DummyAutomaton {
        type Value = u8;

        fn layout(&self) -> MemoryLayout {
            MemoryLayout::with_snapshot(2)
        }

        fn poised(&self) -> Option<Op<u8>> {
            None
        }

        fn apply(&mut self, _response: Response<u8>) -> Vec<Decision> {
            Vec::new()
        }
    }
}
