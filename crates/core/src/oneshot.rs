//! The one-shot algorithm of Figure 3: m-obstruction-free k-set agreement
//! over a snapshot object with `r = n + 2m − k` components.
//!
//! Each process keeps a preferred value `pref` (initially its input) and a
//! location index `i`. It repeatedly stores `(pref, id)` into component `i`
//! and scans the object:
//!
//! * if the scan contains at most `m` distinct pairs and no `⊥`, it outputs
//!   the value of the smallest-indexed duplicated pair and halts;
//! * otherwise, if its own pair appears nowhere except possibly at `i` and
//!   some other pair appears twice, it adopts the value of the
//!   smallest-indexed duplicated pair (and stays at location `i`);
//! * otherwise it advances `i` cyclically.
//!
//! The first `k − m` deciders may output anything (valid) values; the last
//! `ℓ = n − k + m` deciders agree on at most `m` values, for at most `k`
//! distinct outputs in total (Lemma 4 of the paper).

use crate::error::AlgorithmError;
use crate::values::Pair;
use sa_model::{
    Automaton, Decision, IdRelabeling, InputValue, MemoryLayout, Op, Params, ProcessId, Response,
    SymmetryClass,
};
use std::hash::{Hash, Hasher};

/// Which shared-memory operation the process performs next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Phase {
    /// About to `update` component `i`.
    Update,
    /// About to `scan` the snapshot object.
    Scan,
    /// Halted (decided).
    Done,
}

/// A single process of the Figure 3 one-shot algorithm.
///
/// ```
/// use sa_core::OneShotSetAgreement;
/// use sa_model::{Params, ProcessId};
/// use sa_runtime::{Executor, ObstructionScheduler, RunConfig};
///
/// let params = Params::new(4, 1, 2)?;
/// let automata: Vec<_> = (0..4)
///     .map(|p| OneShotSetAgreement::new(params, ProcessId(p), 100 + p as u64))
///     .collect();
/// let mut exec = Executor::new(automata);
/// // Only p0 keeps running: 1-obstruction-freedom forces it to decide.
/// let mut solo = ObstructionScheduler::isolated(vec![ProcessId(0)], 7);
/// let report = exec.run(&mut solo, RunConfig::default());
/// assert!(report.halted[0]);
/// # Ok::<(), sa_model::ParamsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OneShotSetAgreement {
    params: Params,
    components: usize,
    id: ProcessId,
    input: InputValue,
    pref: InputValue,
    location: usize,
    phase: Phase,
}

impl OneShotSetAgreement {
    /// Creates the automaton of process `id` with input `input`, using the
    /// paper's snapshot width `r = n + 2m − k`.
    pub fn new(params: Params, id: ProcessId, input: InputValue) -> Self {
        OneShotSetAgreement::with_width(params, id, input, params.snapshot_components())
            .expect("the paper's width always satisfies the minimum")
    }

    /// Creates the automaton with an explicit snapshot width of at least
    /// `n + 2m − k` components. Wider objects remain correct (the pigeonhole
    /// arguments only need *at least* that many components); this is how the
    /// space-inefficient baseline of EXPERIMENTS.md is instantiated.
    ///
    /// # Errors
    ///
    /// Returns [`AlgorithmError::TooFewComponents`] if `width` is below the
    /// required minimum, or [`AlgorithmError::UnknownProcess`] if `id` is out
    /// of range.
    pub fn with_width(
        params: Params,
        id: ProcessId,
        input: InputValue,
        width: usize,
    ) -> Result<Self, AlgorithmError> {
        if width < params.snapshot_components() {
            return Err(AlgorithmError::TooFewComponents {
                required: params.snapshot_components(),
                requested: width,
            });
        }
        Self::unchecked(params, id, input, width)
    }

    /// Creates a **deliberately under-provisioned** automaton with fewer
    /// components than the correctness proof requires. Only useful for the
    /// lower-bound experiments, which exhibit k-agreement violations of such
    /// variants; never use this to actually solve agreement.
    ///
    /// # Errors
    ///
    /// Returns [`AlgorithmError::UnknownProcess`] if `id` is out of range, or
    /// [`AlgorithmError::TooFewComponents`] if `width` is zero.
    pub fn deficient(
        params: Params,
        id: ProcessId,
        input: InputValue,
        width: usize,
    ) -> Result<Self, AlgorithmError> {
        if width == 0 {
            return Err(AlgorithmError::TooFewComponents {
                required: 1,
                requested: 0,
            });
        }
        Self::unchecked(params, id, input, width)
    }

    fn unchecked(
        params: Params,
        id: ProcessId,
        input: InputValue,
        width: usize,
    ) -> Result<Self, AlgorithmError> {
        if id.index() >= params.n() {
            return Err(AlgorithmError::UnknownProcess {
                id: id.index(),
                n: params.n(),
            });
        }
        Ok(OneShotSetAgreement {
            params,
            components: width,
            id,
            input,
            pref: input,
            location: 0,
            phase: Phase::Update,
        })
    }

    /// The problem parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The snapshot width used by this instance.
    pub fn width(&self) -> usize {
        self.components
    }

    /// The process identifier.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The input value.
    pub fn input(&self) -> InputValue {
        self.input
    }

    /// The current preferred value (the input until the process adopts a
    /// value seen twice in a scan).
    pub fn preference(&self) -> InputValue {
        self.pref
    }

    /// Processes a scan result according to lines 9–14 of Figure 3, returning
    /// a decision if the process outputs and halts.
    fn handle_scan(&mut self, view: &[Option<Pair>]) -> Option<Decision> {
        // Line 9: at most m distinct pairs and no ⊥ anywhere.
        let all_full = view.iter().all(|entry| entry.is_some());
        if all_full && distinct_pairs(view) <= self.params.m() {
            // Line 10: output the value of the smallest-indexed duplicated pair.
            let j1 = first_duplicate_index(view).unwrap_or(0);
            let value = view[j1].as_ref().expect("all entries are full").value;
            self.phase = Phase::Done;
            return Some(Decision::new(1, value));
        }
        // Line 11: own pair absent everywhere except location i, and some
        // pair is duplicated.
        let own = Pair::new(self.pref, self.id);
        let own_absent_elsewhere = view
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != self.location)
            .all(|(_, entry)| match entry {
                None => false,
                Some(pair) => *pair != own,
            });
        if own_absent_elsewhere {
            if let Some(j1) = first_duplicate_index(view) {
                // Lines 12–13: adopt the duplicated value and keep the
                // location — but only when the preference actually changes.
                // The paper's prose is explicit that the location advances
                // "as long as the process's pref value remains the same";
                // without this qualification a solo process that keeps
                // re-adopting the value it already prefers would stay at one
                // location forever and never fill the object, contradicting
                // m-obstruction-freedom. (The k-agreement proof is unaffected:
                // a kept preference whose pair appears twice is already
                // covered by the induction hypothesis of Lemma 4.)
                let adopted = view[j1].as_ref().expect("duplicate entries are full").value;
                if adopted != self.pref {
                    self.pref = adopted;
                    self.phase = Phase::Update;
                    return None;
                }
            }
        }
        // Line 14: advance the location.
        self.location = (self.location + 1) % self.components;
        self.phase = Phase::Update;
        None
    }
}

/// Counts the distinct non-`⊥` pairs of a scan.
fn distinct_pairs(view: &[Option<Pair>]) -> usize {
    let mut seen: Vec<&Pair> = Vec::with_capacity(view.len());
    for pair in view.iter().flatten() {
        if !seen.contains(&pair) {
            seen.push(pair);
        }
    }
    seen.len()
}

/// The smallest index `j1` such that some `j2 > j1` holds an identical
/// (non-`⊥`) pair.
fn first_duplicate_index(view: &[Option<Pair>]) -> Option<usize> {
    for (j1, entry) in view.iter().enumerate() {
        let Some(pair) = entry else { continue };
        if view[j1 + 1..].iter().flatten().any(|other| other == pair) {
            return Some(j1);
        }
    }
    None
}

impl Automaton for OneShotSetAgreement {
    type Value = Pair;

    fn layout(&self) -> MemoryLayout {
        MemoryLayout::with_snapshot(self.components)
    }

    fn poised(&self) -> Option<Op<Pair>> {
        match self.phase {
            Phase::Update => Some(Op::Update {
                snapshot: 0,
                component: self.location,
                value: Pair::new(self.pref, self.id),
            }),
            Phase::Scan => Some(Op::Scan { snapshot: 0 }),
            Phase::Done => None,
        }
    }

    fn apply(&mut self, response: Response<Pair>) -> Vec<Decision> {
        match self.phase {
            Phase::Update => {
                debug_assert_eq!(response, Response::Updated);
                self.phase = Phase::Scan;
                Vec::new()
            }
            Phase::Scan => {
                let view = response.expect_snapshot();
                self.handle_scan(&view).into_iter().collect()
            }
            Phase::Done => panic!("apply called on a halted process"),
        }
    }

    fn symmetry_class(&self) -> SymmetryClass {
        // The id appears in the local state and in every stored pair, but
        // never in an object address (components are location-indexed), so
        // consistent relabeling is a transition-system automorphism.
        SymmetryClass::IdCarrying
    }

    fn relabeled(&self, relabel: &IdRelabeling) -> Self {
        OneShotSetAgreement {
            id: relabel.apply(self.id),
            ..self.clone()
        }
    }

    fn hash_behavior<H: Hasher>(&self, relabel: &IdRelabeling, state: &mut H) {
        // The full state with the id mapped. The (immutable, post-init
        // unread) `input` field is hashed deliberately: a non-anonymous
        // process is identified with its input, so slots with distinct
        // inputs never merge and symmetry-reduced exploration of a
        // distinct-workload cell visits exactly the full state count.
        self.params.hash(state);
        self.components.hash(state);
        relabel.apply(self.id).hash(state);
        self.input.hash(state);
        self.pref.hash(state);
        self.location.hash(state);
        self.phase.hash(state);
    }

    fn relabel_value(value: &Pair, relabel: &IdRelabeling) -> Pair {
        Pair::new(value.value, relabel.apply(value.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_runtime::{
        check_k_agreement, check_validity, Executor, InputLog, ObstructionScheduler,
        RandomScheduler, RoundRobin, RunConfig, SoloScheduler,
    };

    fn automata(params: Params) -> Vec<OneShotSetAgreement> {
        (0..params.n())
            .map(|p| OneShotSetAgreement::new(params, ProcessId(p), 100 + p as u64))
            .collect()
    }

    fn input_log(params: Params) -> InputLog {
        let mut log = InputLog::new();
        for p in 0..params.n() {
            log.record(1, 100 + p as u64);
        }
        log
    }

    #[test]
    fn constructor_validates_width_and_id() {
        let params = Params::new(5, 2, 3).unwrap();
        assert_eq!(params.snapshot_components(), 6);
        assert!(OneShotSetAgreement::with_width(params, ProcessId(0), 1, 5).is_err());
        assert!(OneShotSetAgreement::with_width(params, ProcessId(0), 1, 6).is_ok());
        assert!(OneShotSetAgreement::with_width(params, ProcessId(5), 1, 6).is_err());
        assert!(OneShotSetAgreement::deficient(params, ProcessId(0), 1, 0).is_err());
        assert!(OneShotSetAgreement::deficient(params, ProcessId(0), 1, 3).is_ok());
        let a = OneShotSetAgreement::new(params, ProcessId(1), 7);
        assert_eq!(a.width(), 6);
        assert_eq!(a.id(), ProcessId(1));
        assert_eq!(a.input(), 7);
        assert_eq!(a.preference(), 7);
        assert_eq!(a.params().n(), 5);
    }

    #[test]
    fn layout_matches_paper_width() {
        let params = Params::new(6, 2, 4).unwrap();
        let a = OneShotSetAgreement::new(params, ProcessId(0), 0);
        assert_eq!(a.layout(), MemoryLayout::with_snapshot(6 + 4 - 4));
    }

    #[test]
    fn solo_process_decides_its_own_input() {
        let params = Params::new(4, 1, 1).unwrap();
        let mut exec = Executor::new(automata(params));
        let report = exec.run(&mut SoloScheduler::new(ProcessId(2)), RunConfig::default());
        assert!(report.halted[2]);
        assert_eq!(report.decisions.decision_of(ProcessId(2), 1), Some(102));
    }

    #[test]
    fn obstruction_runs_terminate_and_agree() {
        // Every (n, m, k) in a small sweep, heavy contention then m survivors.
        for (n, m, k) in [
            (3, 1, 1),
            (4, 1, 2),
            (4, 2, 2),
            (5, 2, 3),
            (6, 3, 3),
            (6, 1, 4),
        ] {
            let params = Params::new(n, m, k).unwrap();
            let mut exec = Executor::new(automata(params));
            let survivors: Vec<ProcessId> = (0..m).map(ProcessId).collect();
            let mut sched = ObstructionScheduler::new(200, survivors.clone(), 99);
            let report = exec.run(&mut sched, RunConfig::with_max_steps(200_000));
            for p in &survivors {
                assert!(
                    report.halted[p.index()],
                    "survivor {p} did not decide for n={n} m={m} k={k}"
                );
            }
            check_k_agreement(k, &report.decisions).unwrap();
            check_validity(&input_log(params), &report.decisions).unwrap();
        }
    }

    #[test]
    fn contended_runs_preserve_safety() {
        for seed in 0..10u64 {
            let params = Params::new(5, 2, 3).unwrap();
            let mut exec = Executor::new(automata(params));
            let mut sched = RandomScheduler::new(seed);
            let report = exec.run(&mut sched, RunConfig::with_max_steps(5_000));
            check_k_agreement(3, &report.decisions).unwrap();
            check_validity(&input_log(params), &report.decisions).unwrap();
        }
    }

    #[test]
    fn round_robin_full_contention_is_safe() {
        let params = Params::new(4, 2, 3).unwrap();
        let mut exec = Executor::new(automata(params));
        let report = exec.run(&mut RoundRobin::new(), RunConfig::with_max_steps(10_000));
        check_k_agreement(3, &report.decisions).unwrap();
    }

    #[test]
    fn maximal_obstruction_degree_lets_k_survivors_finish() {
        // With m = k = 3 the progress condition covers schedules where three
        // processes keep running; all three survivors must decide.
        let params = Params::new(4, 3, 3).unwrap();
        let mut exec = Executor::new(automata(params));
        let survivors = vec![ProcessId(0), ProcessId(1), ProcessId(3)];
        let mut sched = ObstructionScheduler::new(100, survivors.clone(), 17);
        let report = exec.run(&mut sched, RunConfig::with_max_steps(300_000));
        for p in &survivors {
            assert!(report.halted[p.index()], "{p} did not decide");
        }
        check_k_agreement(3, &report.decisions).unwrap();
    }

    #[test]
    fn uniform_inputs_decide_that_value() {
        let params = Params::new(5, 1, 2).unwrap();
        let automata: Vec<_> = (0..5)
            .map(|p| OneShotSetAgreement::new(params, ProcessId(p), 7))
            .collect();
        let mut exec = Executor::new(automata);
        let mut sched = ObstructionScheduler::new(50, vec![ProcessId(0)], 1);
        let report = exec.run(&mut sched, RunConfig::default());
        for value in report.decisions.outputs(1) {
            assert_eq!(value, 7);
        }
    }

    #[test]
    fn decided_space_stays_within_declared_width() {
        let params = Params::new(6, 2, 3).unwrap();
        let mut exec = Executor::new(automata(params));
        let mut sched = ObstructionScheduler::new(500, vec![ProcessId(0), ProcessId(1)], 5);
        let report = exec.run(&mut sched, RunConfig::with_max_steps(100_000));
        assert!(report.metrics.components_written(0) <= params.snapshot_components());
    }

    #[test]
    fn scan_handling_adopts_duplicated_value() {
        // Hand-crafted scan: the process's own pair is absent, value 55
        // appears twice, so the process must adopt 55 without advancing i.
        let params = Params::new(4, 1, 2).unwrap();
        let mut a = OneShotSetAgreement::new(params, ProcessId(0), 1);
        a.phase = Phase::Scan;
        let other = |v, p| Some(Pair::new(v, ProcessId(p)));
        // Width is 4; the process sits at location 0. Every other location is
        // full, none holds the process's own pair, and 55 appears twice.
        let view = vec![other(2, 3), other(55, 1), other(55, 1), other(66, 2)];
        assert_eq!(view.len(), a.width());
        let decision = a.handle_scan(&view);
        assert!(decision.is_none());
        assert_eq!(a.preference(), 55);
        assert_eq!(a.location, 0, "adopting must not advance the location");
    }

    #[test]
    fn scan_handling_decides_when_few_pairs_remain() {
        let params = Params::new(4, 2, 3).unwrap();
        // r = 4 + 4 - 3 = 5 components.
        let mut a = OneShotSetAgreement::new(params, ProcessId(0), 1);
        a.phase = Phase::Scan;
        let p = |v, id| Some(Pair::new(v, ProcessId(id)));
        let view = vec![p(9, 1), p(9, 1), p(8, 2), p(8, 2), p(9, 1)];
        let decision = a.handle_scan(&view).expect("must decide");
        assert_eq!(decision, Decision::new(1, 9));
        assert!(a.is_halted());
    }

    #[test]
    fn scan_handling_advances_location_when_own_pair_visible() {
        let params = Params::new(4, 1, 2).unwrap();
        let mut a = OneShotSetAgreement::new(params, ProcessId(0), 1);
        a.phase = Phase::Scan;
        // Own pair (1, p0) sits at another location: the process keeps its
        // preference and advances.
        let view = vec![
            Some(Pair::new(1, ProcessId(0))),
            Some(Pair::new(1, ProcessId(0))),
            Some(Pair::new(3, ProcessId(2))),
            None,
        ];
        let location_before = a.location;
        let decision = a.handle_scan(&view);
        assert!(decision.is_none());
        assert_eq!(a.preference(), 1);
        assert_eq!(a.location, (location_before + 1) % a.width());
    }

    #[test]
    fn helpers_count_and_find_duplicates() {
        let p = |v, id| Some(Pair::new(v, ProcessId(id)));
        let view = vec![None, p(1, 0), p(2, 1), p(1, 0), None];
        assert_eq!(distinct_pairs(&view), 2);
        assert_eq!(first_duplicate_index(&view), Some(1));
        let no_dup = vec![None, p(1, 0), p(2, 1)];
        assert_eq!(first_duplicate_index(&no_dup), None);
        assert_eq!(distinct_pairs(&[]), 0);
    }
}
