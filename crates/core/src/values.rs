//! The values the paper's algorithms store in shared memory.
//!
//! * Figure 3 stores pairs `(pref, id)` — [`Pair`].
//! * Figure 4 stores tuples `(pref, id, t, history)` — [`Tuple`].
//! * Figure 5 stores anonymous tuples `(pref, t, history)` in the snapshot
//!   object — [`AnonTuple`] — and output histories in the helper register
//!   `H`; both are carried by [`AnonValue`] because a memory is homogeneous
//!   in its value type.
//!
//! Histories (sequences of outputs of earlier instances) are shared
//! structurally via [`History`], a cheaply clonable immutable sequence.

use sa_model::{InputValue, InstanceId, ProcessId};
use std::fmt;
use std::sync::Arc;

/// An immutable sequence of output values, one per completed instance of
/// repeated set agreement. Cloning is O(1).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct History(Arc<[InputValue]>);

impl History {
    /// The empty history.
    pub fn empty() -> Self {
        History(Arc::from(Vec::new()))
    }

    /// Builds a history from a vector of outputs (index 0 is instance 1).
    pub fn from_vec(values: Vec<InputValue>) -> Self {
        History(Arc::from(values))
    }

    /// The number of instances covered by this history.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if no instance has been recorded.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The output of instance `instance` (1-based), if recorded.
    pub fn get(&self, instance: InstanceId) -> Option<InputValue> {
        if instance == 0 {
            return None;
        }
        self.0.get((instance - 1) as usize).copied()
    }

    /// Returns a new history extended with the output of the next instance.
    pub fn appended(&self, value: InputValue) -> History {
        let mut values = self.0.to_vec();
        values.push(value);
        History(Arc::from(values))
    }

    /// The recorded outputs as a slice (index 0 is instance 1).
    pub fn as_slice(&self) -> &[InputValue] {
        &self.0
    }

    /// A length-based estimate of the heap bytes behind this history: the
    /// shared `Arc` slice (strong/weak counts plus one value per recorded
    /// instance). Structural sharing means several holders may charge the
    /// same allocation — deliberately conservative (an overcount), and a
    /// pure function of the history's length, which is what the explorers'
    /// deterministic memory accounting requires.
    pub fn heap_bytes(&self) -> usize {
        2 * std::mem::size_of::<usize>() + self.0.len() * std::mem::size_of::<InputValue>()
    }
}

impl Default for History {
    fn default() -> Self {
        History::empty()
    }
}

impl fmt::Debug for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "History{:?}", &self.0[..])
    }
}

impl FromIterator<InputValue> for History {
    fn from_iter<T: IntoIterator<Item = InputValue>>(iter: T) -> Self {
        History(iter.into_iter().collect::<Vec<_>>().into())
    }
}

/// The pair `(pref, id)` stored by the one-shot algorithm of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pair {
    /// The preferred value.
    pub value: InputValue,
    /// The identifier of the process that stored the pair.
    pub id: ProcessId,
}

impl Pair {
    /// Convenience constructor.
    pub fn new(value: InputValue, id: ProcessId) -> Self {
        Pair { value, id }
    }
}

/// The tuple `(pref, id, t, history)` stored by the repeated algorithm of
/// Figure 4.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    /// The preferred value for instance `instance`.
    pub value: InputValue,
    /// The identifier of the process that stored the tuple.
    pub id: ProcessId,
    /// The instance the process is working on.
    pub instance: InstanceId,
    /// The outputs of all instances the process has already completed.
    pub history: History,
}

impl Tuple {
    /// Convenience constructor.
    pub fn new(value: InputValue, id: ProcessId, instance: InstanceId, history: History) -> Self {
        Tuple {
            value,
            id,
            instance,
            history,
        }
    }

    /// `true` if this is a *t-tuple*, i.e. was stored by a process working on
    /// `instance`.
    pub fn is_for(&self, instance: InstanceId) -> bool {
        self.instance == instance
    }
}

/// The anonymous tuple `(pref, t, history)` stored in the snapshot object by
/// the algorithm of Figure 5. It carries no process identifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AnonTuple {
    /// The preferred value for instance `instance`.
    pub value: InputValue,
    /// The instance the process is working on.
    pub instance: InstanceId,
    /// The outputs of all instances the process has already completed.
    pub history: History,
}

impl AnonTuple {
    /// Convenience constructor.
    pub fn new(value: InputValue, instance: InstanceId, history: History) -> Self {
        AnonTuple {
            value,
            instance,
            history,
        }
    }

    /// `true` if this tuple was stored by a process working on `instance`.
    pub fn is_for(&self, instance: InstanceId) -> bool {
        self.instance == instance
    }
}

/// The value type of the anonymous algorithm's shared memory: snapshot
/// components hold [`AnonTuple`]s, while the helper register `H` holds a
/// [`History`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AnonValue {
    /// A tuple stored in the snapshot object.
    Cell(AnonTuple),
    /// An output history stored in the helper register `H`.
    Outputs(History),
}

impl AnonValue {
    /// The tuple carried by this value, if it is a snapshot cell.
    pub fn as_cell(&self) -> Option<&AnonTuple> {
        match self {
            AnonValue::Cell(t) => Some(t),
            AnonValue::Outputs(_) => None,
        }
    }

    /// The history carried by this value, if it is a helper-register entry.
    pub fn as_outputs(&self) -> Option<&History> {
        match self {
            AnonValue::Outputs(h) => Some(h),
            AnonValue::Cell(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_appended_is_persistent() {
        let h0 = History::empty();
        let h1 = h0.appended(10);
        let h2 = h1.appended(20);
        assert!(h0.is_empty());
        assert_eq!(h1.len(), 1);
        assert_eq!(h2.len(), 2);
        assert_eq!(h2.get(1), Some(10));
        assert_eq!(h2.get(2), Some(20));
        assert_eq!(h2.get(3), None);
        assert_eq!(h2.get(0), None);
        assert_eq!(h1.as_slice(), &[10]);
    }

    #[test]
    fn history_from_iter_and_vec_agree() {
        let a: History = vec![1, 2, 3].into_iter().collect();
        let b = History::from_vec(vec![1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), "History[1, 2, 3]");
    }

    #[test]
    fn history_equality_is_structural() {
        let a = History::from_vec(vec![5, 6]);
        let b = History::empty().appended(5).appended(6);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |h: &History| {
            let mut s = DefaultHasher::new();
            h.hash(&mut s);
            s.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn pair_and_tuple_equality() {
        let p1 = Pair::new(1, ProcessId(0));
        let p2 = Pair::new(1, ProcessId(1));
        assert_ne!(p1, p2);
        let t = Tuple::new(1, ProcessId(0), 3, History::empty());
        assert!(t.is_for(3));
        assert!(!t.is_for(2));
    }

    #[test]
    fn anon_value_projections() {
        let cell = AnonValue::Cell(AnonTuple::new(7, 2, History::empty()));
        assert!(cell.as_cell().is_some());
        assert!(cell.as_outputs().is_none());
        let outs = AnonValue::Outputs(History::from_vec(vec![1]));
        assert!(outs.as_cell().is_none());
        assert_eq!(outs.as_outputs().unwrap().len(), 1);
        assert!(AnonTuple::new(7, 2, History::empty()).is_for(2));
    }
}
