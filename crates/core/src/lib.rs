//! The set-agreement algorithms of "On the Space Complexity of Set Agreement"
//! (Delporte-Gallet, Fauconnier, Kuznetsov, Ruppert — PODC 2015).
//!
//! The paper's constructive contribution is three algorithms for
//! `m`-obstruction-free `k`-set agreement among `n` processes
//! (`1 ≤ m ≤ k < n`), all expressed over multi-writer snapshot objects:
//!
//! * [`OneShotSetAgreement`] — the one-shot algorithm of **Figure 3**, using a
//!   snapshot object with `r = n + 2m − k` components (Theorem 7).
//! * [`RepeatedSetAgreement`] — the repeated algorithm of **Figure 4**, same
//!   space, adding instance numbers and history adoption (Theorem 8).
//! * [`AnonymousSetAgreement`] — the anonymous algorithm of **Figure 5**,
//!   using `(m+1)(n−k) + m²` snapshot components plus one helper register
//!   (Theorem 11).
//!
//! Two baselines accompany them for the paper's comparisons:
//!
//! * [`WideBaseline`] — the Figure 3/4 state machine instantiated with
//!   `2(n−k)` components, the space used by the prior algorithm of
//!   Delporte-Gallet et al. \[4\] for `m = 1`.
//! * [`FullInfoSetAgreement`] (via [`SwmrEmulated`]) — the classic `n`
//!   single-writer-register full-information construction, the trivial upper
//!   bound the paper cites.
//!
//! Every algorithm is an [`Automaton`](sa_model::Automaton): an explicit
//! state machine performing one shared-memory operation per step, so the
//! same code runs on the deterministic simulator, the bounded exhaustive
//! explorer and real OS threads provided by `sa-runtime`.
//!
//! # Example
//!
//! ```
//! use sa_core::OneShotSetAgreement;
//! use sa_model::{Params, ProcessId};
//! use sa_runtime::{check_k_agreement, Executor, ObstructionScheduler, RunConfig};
//!
//! // 2-obstruction-free 3-set agreement among 6 processes.
//! let params = Params::new(6, 2, 3)?;
//! let automata: Vec<_> = (0..6)
//!     .map(|p| OneShotSetAgreement::new(params, ProcessId(p), 100 + p as u64))
//!     .collect();
//! let mut exec = Executor::new(automata);
//! // Heavy contention for 100 steps, then only p0 and p1 keep running.
//! let mut adversary = ObstructionScheduler::new(100, vec![ProcessId(0), ProcessId(1)], 42);
//! let report = exec.run(&mut adversary, RunConfig::default());
//! assert!(report.halted[0] && report.halted[1]);
//! check_k_agreement(3, &report.decisions).unwrap();
//! # Ok::<(), sa_model::ParamsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod anonymous;
mod baseline;
mod error;
mod instance;
mod oneshot;
mod repeated;
pub mod values;

pub use anonymous::AnonymousSetAgreement;
pub use baseline::{FullInfoRecord, FullInfoSetAgreement, SwmrEmulated, WideBaseline};
pub use error::AlgorithmError;
pub use instance::AgreementInstance;
pub use oneshot::OneShotSetAgreement;
pub use repeated::RepeatedSetAgreement;
pub use values::{AnonTuple, AnonValue, History, Pair, Tuple};
