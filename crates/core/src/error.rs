//! Errors reported by algorithm constructors.

use std::error::Error;
use std::fmt;

/// An error produced when configuring an algorithm instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgorithmError {
    /// The requested snapshot width is below what the algorithm's correctness
    /// proof requires.
    TooFewComponents {
        /// The minimum width required by the proof (`n + 2m − k` for
        /// Figures 3 and 4, `(m+1)(n−k) + m²` for Figure 5).
        required: usize,
        /// The requested width.
        requested: usize,
    },
    /// The process identifier is outside `0..n`.
    UnknownProcess {
        /// The offending identifier index.
        id: usize,
        /// The number of processes `n`.
        n: usize,
    },
    /// A repeated-agreement automaton needs at least one input to propose.
    EmptyInputSequence,
}

impl fmt::Display for AlgorithmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgorithmError::TooFewComponents {
                required,
                requested,
            } => write!(
                f,
                "snapshot width {requested} is below the {required} components required for correctness"
            ),
            AlgorithmError::UnknownProcess { id, n } => {
                write!(f, "process id {id} is out of range for {n} processes")
            }
            AlgorithmError::EmptyInputSequence => {
                write!(f, "at least one input value must be supplied")
            }
        }
    }
}

impl Error for AlgorithmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = AlgorithmError::TooFewComponents {
            required: 9,
            requested: 4,
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
        let e = AlgorithmError::UnknownProcess { id: 5, n: 4 };
        assert!(e.to_string().contains('5'));
        assert!(!AlgorithmError::EmptyInputSequence.to_string().is_empty());
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<AlgorithmError>();
    }
}
