//! A minimal, harness-free driver for a single agreement instance.
//!
//! The algorithms in this crate are [`Automaton`]s: explicit state machines
//! performing one shared-memory operation per step. Historically the only
//! thing that could *drive* such a machine to completion was the full
//! `sa-runtime` harness (schedulers, adversaries, traces, metrics). A
//! long-running service that executes thousands of small agreement
//! instances per second needs none of that — it needs exactly the step
//! function: *apply the poised operation to a shared memory, deliver the
//! response, collect decisions*.
//!
//! [`AgreementInstance`] is that step function, extracted into the
//! algorithm crate so it depends only on `sa-model` and `sa-memory`. The
//! same automata still run unchanged under the exhaustive explorer and the
//! threaded backend; this driver is the third consumer, suitable for
//! embedding in an event loop.
//!
//! Two deterministic schedules are provided beyond the raw
//! [`step`](AgreementInstance::step) primitive:
//!
//! * [`run_round_robin`](AgreementInstance::run_round_robin) — bounded
//!   contention, cycling over the live processes;
//! * [`run_solo`](AgreementInstance::run_solo) — one process runs alone.
//!   Since every algorithm here is m-obstruction-free with `m ≥ 1`, a solo
//!   run is guaranteed to terminate, so "contend for a while, then finish
//!   the processes one at a time" is a deterministic terminating schedule.

use sa_memory::SimMemory;
use sa_model::{Automaton, DecisionSet, MemoryLayout, ProcessId, StepOutcome};
use std::fmt::Debug;

/// Drives one set of automata over a private simulated shared memory,
/// one atomic step at a time, with no scheduler or adversary machinery.
///
/// ```
/// use sa_core::{AgreementInstance, OneShotSetAgreement};
/// use sa_model::{Params, ProcessId};
///
/// let params = Params::new(3, 1, 2)?;
/// let automata: Vec<_> = (0..3)
///     .map(|p| OneShotSetAgreement::new(params, ProcessId(p), 10 + p as u64))
///     .collect();
/// let mut instance = AgreementInstance::new(automata);
/// instance.run_round_robin(24);
/// for p in 0..3 {
///     assert!(instance.run_solo(ProcessId(p), 10_000));
/// }
/// assert!(instance.all_halted());
/// assert!(instance.decisions().distinct_outputs(1) <= 2);
/// # Ok::<(), sa_model::ParamsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AgreementInstance<A: Automaton> {
    automata: Vec<A>,
    memory: SimMemory<A::Value>,
    decisions: DecisionSet,
    steps: u64,
}

impl<A: Automaton> AgreementInstance<A>
where
    A::Value: Clone + Eq + Debug,
{
    /// Creates a driver for the given automata. The shared memory is sized
    /// to the union of the automata's declared layouts.
    pub fn new(automata: Vec<A>) -> Self {
        let layout = automata
            .iter()
            .map(|a| a.layout())
            .fold(MemoryLayout::default(), |acc, l| acc.union(&l));
        AgreementInstance {
            memory: SimMemory::for_layout(&layout),
            automata,
            decisions: DecisionSet::new(),
            steps: 0,
        }
    }

    /// The number of processes.
    pub fn process_count(&self) -> usize {
        self.automata.len()
    }

    /// `true` once every process has halted.
    pub fn all_halted(&self) -> bool {
        self.automata.iter().all(|a| a.is_halted())
    }

    /// The decisions recorded so far.
    pub fn decisions(&self) -> &DecisionSet {
        &self.decisions
    }

    /// The number of steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Lets `process` perform its poised operation. Returns `None` if the
    /// process has halted (or the id is out of range).
    ///
    /// # Panics
    ///
    /// Panics if the process issues an operation outside the memory layout —
    /// a protocol bug, not a schedulable condition.
    pub fn step(&mut self, process: ProcessId) -> Option<StepOutcome> {
        let automaton = self.automata.get_mut(process.index())?;
        let op = automaton.poised()?;
        let op_kind = op.kind();
        let response = self
            .memory
            .apply(process, op)
            .unwrap_or_else(|e| panic!("{process} issued an out-of-layout operation: {e}"));
        let decisions = automaton.apply(response);
        self.decisions
            .record_all(process, decisions.iter().copied());
        self.steps += 1;
        Some(StepOutcome {
            op_kind,
            halted: self.automata[process.index()].is_halted(),
            decisions,
        })
    }

    /// Cycles over the live processes for at most `budget` steps (stopping
    /// early once everyone halts) and returns the number of steps taken.
    ///
    /// This is bounded *contention*, not a termination schedule: an
    /// m-obstruction-free algorithm owes no progress while more than `m`
    /// processes keep taking steps.
    pub fn run_round_robin(&mut self, budget: u64) -> u64 {
        let n = self.automata.len();
        let mut taken = 0;
        let mut idle = 0;
        let mut next = 0;
        while taken < budget && idle < n {
            if self.step(ProcessId(next)).is_some() {
                taken += 1;
                idle = 0;
            } else {
                idle += 1;
            }
            next = (next + 1) % n.max(1);
        }
        taken
    }

    /// Runs `process` alone until it halts or `budget` steps elapse;
    /// returns `true` if it halted. Obstruction-freedom guarantees a solo
    /// run terminates, so a sufficient budget always returns `true`.
    pub fn run_solo(&mut self, process: ProcessId, budget: u64) -> bool {
        for _ in 0..budget {
            if self.step(process).is_none() {
                return true;
            }
        }
        self.automata
            .get(process.index())
            .is_none_or(|a| a.is_halted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OneShotSetAgreement, RepeatedSetAgreement};
    use sa_model::Params;

    fn oneshot_system(params: Params) -> AgreementInstance<OneShotSetAgreement> {
        AgreementInstance::new(
            (0..params.n())
                .map(|p| OneShotSetAgreement::new(params, ProcessId(p), 100 + p as u64))
                .collect(),
        )
    }

    #[test]
    fn solo_runs_terminate_and_agree() {
        let params = Params::new(5, 2, 3).unwrap();
        let mut instance = oneshot_system(params);
        instance.run_round_robin(40);
        for p in 0..params.n() {
            assert!(
                instance.run_solo(ProcessId(p), 100_000),
                "p{p} did not halt"
            );
        }
        assert!(instance.all_halted());
        assert_eq!(instance.decisions().deciders(1), params.n());
        assert!(instance.decisions().distinct_outputs(1) <= params.k());
        for value in instance.decisions().outputs(1) {
            assert!((100..100 + params.n() as u64).contains(&value));
        }
    }

    #[test]
    fn round_robin_respects_the_budget_and_stops_when_halted() {
        let params = Params::new(4, 1, 2).unwrap();
        let mut instance = oneshot_system(params);
        assert_eq!(instance.run_round_robin(7), 7);
        assert_eq!(instance.steps(), 7);
        for p in 0..params.n() {
            instance.run_solo(ProcessId(p), 100_000);
        }
        let done = instance.steps();
        assert_eq!(instance.run_round_robin(50), 0);
        assert_eq!(instance.steps(), done);
    }

    #[test]
    fn repeated_instances_run_under_the_same_driver() {
        let params = Params::new(4, 1, 1).unwrap();
        let mut instance = AgreementInstance::new(
            (0..params.n())
                .map(|p| {
                    RepeatedSetAgreement::new(params, ProcessId(p), vec![10 + p as u64]).unwrap()
                })
                .collect(),
        );
        instance.run_round_robin(32);
        for p in 0..params.n() {
            assert!(instance.run_solo(ProcessId(p), 100_000));
        }
        assert_eq!(instance.decisions().distinct_outputs(1), 1);
    }

    #[test]
    fn stepping_a_halted_or_unknown_process_is_a_no_op() {
        let params = Params::new(3, 1, 2).unwrap();
        let mut instance = oneshot_system(params);
        assert!(instance.step(ProcessId(9)).is_none());
        instance.run_solo(ProcessId(0), 100_000);
        assert!(instance.step(ProcessId(0)).is_none());
        assert_eq!(instance.process_count(), 3);
    }
}
