//! The anonymous algorithm of Figure 5: m-obstruction-free repeated k-set
//! agreement for processes **without identifiers**, over a snapshot object
//! with `r = (m+1)(n−k) + m²` components plus one helper register `H`.
//!
//! The structure mirrors Figure 4, with three differences forced by
//! anonymity:
//!
//! * stored tuples are `(pref, t, history)` — no identifier;
//! * a process decides when a scan shows at most `m` distinct tuples, all
//!   from its own instance, and outputs the *most frequent* value;
//! * it adopts a new preference only when its own preferred value occupies
//!   fewer than `ℓ = n + m − k` components while some other value occupies at
//!   least `ℓ`;
//! * the location index advances on **every** iteration (line 29).
//!
//! Because the anonymous snapshot construction the paper relies on is only
//! non-blocking, a "fast" process could starve the others; the helper
//! register `H` (into which every process writes its output history at the
//! start of each `Propose`) lets starving processes finish by adopting a
//! published output. A second logical thread polls `H`; here the two threads
//! are interleaved deterministically, checking `H` once every
//! [`helper period`](AnonymousSetAgreement::with_helper_period) iterations of
//! the main loop. For the one-shot version the register `H` is not needed
//! (the paper's concluding remark in Appendix B), which is why
//! [`AnonymousSetAgreement::one_shot`] uses one register fewer.

use crate::error::AlgorithmError;
use crate::values::{AnonTuple, AnonValue, History};
use sa_model::{
    Automaton, Decision, IdRelabeling, InputValue, InstanceId, MemoryLayout, Op, Params, Response,
    SymmetryClass,
};
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// Which step the process performs next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Phase {
    /// Write the current history to `H` (line 9; repeated mode only).
    WriteHelper,
    /// Local bookkeeping at the start of `Propose` (lines 10–12).
    BeginPropose,
    /// `update` component `i` (line 18).
    Update,
    /// `scan` the snapshot object (line 19).
    Scan,
    /// Poll the helper register `H` (thread 2, lines 32–37).
    ReadHelper,
    /// All configured instances are complete.
    Done,
}

/// A single (anonymous) process of the Figure 5 algorithm.
///
/// The automaton never inspects a process identifier; all processes with the
/// same input sequence are literally identical, which is what allows the
/// cloning lower-bound machinery to duplicate them.
///
/// ```
/// use sa_core::AnonymousSetAgreement;
/// use sa_model::{Params, ProcessId};
/// use sa_runtime::{Executor, ObstructionScheduler, RunConfig};
///
/// let params = Params::new(4, 1, 2)?;
/// let automata: Vec<_> = (0..4)
///     .map(|p| AnonymousSetAgreement::one_shot(params, 10 + p as u64))
///     .collect();
/// let mut exec = Executor::new(automata);
/// let mut solo = ObstructionScheduler::isolated(vec![ProcessId(0)], 3);
/// let report = exec.run(&mut solo, RunConfig::default());
/// assert!(report.halted[0]);
/// # Ok::<(), sa_model::ParamsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AnonymousSetAgreement {
    params: Params,
    components: usize,
    ell: usize,
    inputs: Vec<InputValue>,
    use_helper: bool,
    helper_period: u8,
    // Persistent local variables of Figure 5.
    location: usize,
    instance: InstanceId,
    history: History,
    pref: InputValue,
    phase: Phase,
    iterations_since_helper_check: u8,
}

impl AnonymousSetAgreement {
    /// Creates a repeated-agreement automaton proposing `inputs[t - 1]` in
    /// its `t`-th instance, using the paper's width `(m+1)(n−k) + m²` plus
    /// the helper register `H`.
    ///
    /// # Errors
    ///
    /// Returns [`AlgorithmError::EmptyInputSequence`] if no inputs are given.
    pub fn repeated(params: Params, inputs: Vec<InputValue>) -> Result<Self, AlgorithmError> {
        Self::with_width(params, inputs, params.anonymous_snapshot_components())
    }

    /// Creates a one-shot automaton (a single instance, no helper register).
    pub fn one_shot(params: Params, input: InputValue) -> Self {
        let mut automaton =
            Self::with_width(params, vec![input], params.anonymous_snapshot_components())
                .expect("a single input is never empty");
        automaton.use_helper = false;
        automaton.phase = Phase::BeginPropose;
        automaton
    }

    /// Creates a repeated-agreement automaton with an explicit snapshot width
    /// of at least `(m+1)(n−k) + m²`.
    ///
    /// # Errors
    ///
    /// Returns [`AlgorithmError::TooFewComponents`] if `width` is too small
    /// or [`AlgorithmError::EmptyInputSequence`] if no inputs are given.
    pub fn with_width(
        params: Params,
        inputs: Vec<InputValue>,
        width: usize,
    ) -> Result<Self, AlgorithmError> {
        if width < params.anonymous_snapshot_components() {
            return Err(AlgorithmError::TooFewComponents {
                required: params.anonymous_snapshot_components(),
                requested: width,
            });
        }
        Self::unchecked(params, inputs, width)
    }

    /// Creates a **deliberately under-provisioned** automaton for the
    /// lower-bound experiments (see Theorem 10 of the paper).
    ///
    /// # Errors
    ///
    /// Returns an error if `width` is zero or `inputs` is empty.
    pub fn deficient(
        params: Params,
        inputs: Vec<InputValue>,
        width: usize,
    ) -> Result<Self, AlgorithmError> {
        if width == 0 {
            return Err(AlgorithmError::TooFewComponents {
                required: 1,
                requested: 0,
            });
        }
        Self::unchecked(params, inputs, width)
    }

    fn unchecked(
        params: Params,
        inputs: Vec<InputValue>,
        width: usize,
    ) -> Result<Self, AlgorithmError> {
        if inputs.is_empty() {
            return Err(AlgorithmError::EmptyInputSequence);
        }
        Ok(AnonymousSetAgreement {
            params,
            components: width,
            ell: params.ell(),
            inputs,
            use_helper: true,
            helper_period: 2,
            location: 0,
            instance: 0,
            history: History::empty(),
            pref: 0,
            phase: Phase::WriteHelper,
            iterations_since_helper_check: 0,
        })
    }

    /// Sets how many main-loop iterations run between polls of the helper
    /// register `H` (the interleaving of the paper's two threads). Has no
    /// effect in one-shot mode.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn with_helper_period(mut self, period: u8) -> Self {
        assert!(period > 0, "helper period must be positive");
        self.helper_period = period;
        self
    }

    /// The problem parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The snapshot width used by this instance.
    pub fn width(&self) -> usize {
        self.components
    }

    /// `true` if this automaton uses the helper register `H` (repeated mode).
    pub fn uses_helper(&self) -> bool {
        self.use_helper
    }

    /// The instance the process is currently working on (0 before the first
    /// `Propose`).
    pub fn current_instance(&self) -> InstanceId {
        self.instance
    }

    /// The outputs this process has produced (or adopted) so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The number of instances this process will propose in.
    pub fn planned_instances(&self) -> usize {
        self.inputs.len()
    }

    fn finish_instance(&mut self, value: InputValue) -> Decision {
        let decision = Decision::new(self.instance, value);
        self.phase = if (self.instance as usize) < self.inputs.len() {
            if self.use_helper {
                Phase::WriteHelper
            } else {
                Phase::BeginPropose
            }
        } else {
            Phase::Done
        };
        decision
    }

    /// Lines 10–12: enter the next instance, answering from the history when
    /// it already covers it.
    fn begin_propose(&mut self) -> Option<Decision> {
        self.instance += 1;
        self.iterations_since_helper_check = 0;
        if let Some(value) = self.history.get(self.instance) {
            return Some(self.finish_instance(value));
        }
        self.pref = self.inputs[(self.instance - 1) as usize];
        self.phase = Phase::Update;
        None
    }

    /// After a scan (or a helper poll) that did not finish the instance,
    /// decide whether the next step is another update or a helper poll.
    fn continue_loop(&mut self) {
        if self.use_helper {
            self.iterations_since_helper_check += 1;
            if self.iterations_since_helper_check >= self.helper_period {
                self.iterations_since_helper_check = 0;
                self.phase = Phase::ReadHelper;
                return;
            }
        }
        self.phase = Phase::Update;
    }

    /// Lines 20–28: process a scan of the snapshot object.
    fn handle_scan(&mut self, view: &[Option<AnonValue>]) -> Option<Decision> {
        let t = self.instance;
        let cells: Vec<Option<&AnonTuple>> = view
            .iter()
            .map(|entry| entry.as_ref().and_then(AnonValue::as_cell))
            .collect();
        // Line 20: a tuple from a higher instance carries every output up to
        // (and beyond) this instance.
        if let Some(ahead) = cells
            .iter()
            .flatten()
            .filter(|cell| cell.instance > t)
            .max_by_key(|cell| cell.instance)
        {
            self.history = ahead.history.clone();
            let value = self
                .history
                .get(t)
                .expect("a process in a higher instance has output every instance up to t");
            return Some(self.finish_instance(value));
        }
        // Line 23: at most m distinct tuples and every component holds a
        // tuple of this very instance.
        let all_current = cells
            .iter()
            .all(|cell| matches!(cell, Some(c) if c.instance == t));
        if all_current && distinct_cells(&cells) <= self.params.m() {
            let value = most_frequent_value(&cells).expect("the object is full");
            self.history = self.history.appended(value);
            return Some(self.finish_instance(value));
        }
        // Line 27: adopt a value that already occupies ℓ components when the
        // current preference occupies fewer than ℓ.
        let own_support = value_support(&cells, t, self.pref);
        if own_support < self.ell {
            if let Some(new) = best_supported_value(&cells, t, self.ell, self.pref) {
                self.pref = new;
            }
        }
        // Line 29: the location advances in every iteration.
        self.location = (self.location + 1) % self.components;
        self.continue_loop();
        None
    }

    /// Thread 2 (lines 32–37): poll the helper register.
    fn handle_helper(&mut self, value: Option<AnonValue>) -> Option<Decision> {
        if let Some(outputs) = value.as_ref().and_then(AnonValue::as_outputs) {
            if let Some(decided) = outputs.get(self.instance) {
                self.history = self.history.appended(decided);
                return Some(self.finish_instance(decided));
            }
        }
        self.phase = Phase::Update;
        None
    }
}

/// Counts distinct tuples among the snapshot cells.
fn distinct_cells(cells: &[Option<&AnonTuple>]) -> usize {
    let mut seen: Vec<&AnonTuple> = Vec::with_capacity(cells.len());
    for cell in cells.iter().flatten() {
        if !seen.contains(cell) {
            seen.push(cell);
        }
    }
    seen.len()
}

/// The value occurring in the most components (ties broken towards the
/// smallest value, for determinism).
fn most_frequent_value(cells: &[Option<&AnonTuple>]) -> Option<InputValue> {
    let mut counts: BTreeMap<InputValue, usize> = BTreeMap::new();
    for cell in cells.iter().flatten() {
        *counts.entry(cell.value).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by(|(va, ca), (vb, cb)| ca.cmp(cb).then(vb.cmp(va)))
        .map(|(value, _)| value)
}

/// How many components hold a tuple of instance `t` with value `value`.
fn value_support(cells: &[Option<&AnonTuple>], t: InstanceId, value: InputValue) -> usize {
    cells
        .iter()
        .flatten()
        .filter(|cell| cell.instance == t && cell.value == value)
        .count()
}

/// The smallest value different from `pref` whose support in instance `t`
/// reaches `ell`.
fn best_supported_value(
    cells: &[Option<&AnonTuple>],
    t: InstanceId,
    ell: usize,
    pref: InputValue,
) -> Option<InputValue> {
    let mut counts: BTreeMap<InputValue, usize> = BTreeMap::new();
    for cell in cells.iter().flatten() {
        if cell.instance == t {
            *counts.entry(cell.value).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .filter(|(value, count)| *count >= ell && *value != pref)
        .map(|(value, _)| value)
        .next()
}

impl Automaton for AnonymousSetAgreement {
    type Value = AnonValue;

    fn approx_heap_bytes(&self) -> usize {
        self.inputs.len() * std::mem::size_of::<InputValue>() + self.history.heap_bytes()
    }

    fn value_heap_bytes(value: &AnonValue) -> usize {
        match value {
            AnonValue::Cell(tuple) => tuple.history.heap_bytes(),
            AnonValue::Outputs(history) => history.heap_bytes(),
        }
    }

    fn layout(&self) -> MemoryLayout {
        MemoryLayout::with_snapshot_and_registers(
            self.components,
            if self.use_helper { 1 } else { 0 },
        )
    }

    fn poised(&self) -> Option<Op<AnonValue>> {
        match self.phase {
            Phase::WriteHelper => Some(Op::Write {
                register: 0,
                value: AnonValue::Outputs(self.history.clone()),
            }),
            Phase::BeginPropose => Some(Op::Nop),
            Phase::Update => Some(Op::Update {
                snapshot: 0,
                component: self.location,
                value: AnonValue::Cell(AnonTuple::new(
                    self.pref,
                    self.instance,
                    self.history.clone(),
                )),
            }),
            Phase::Scan => Some(Op::Scan { snapshot: 0 }),
            Phase::ReadHelper => Some(Op::Read { register: 0 }),
            Phase::Done => None,
        }
    }

    fn apply(&mut self, response: Response<AnonValue>) -> Vec<Decision> {
        match self.phase {
            Phase::WriteHelper => {
                debug_assert_eq!(response, Response::Written);
                self.begin_propose().into_iter().collect()
            }
            Phase::BeginPropose => {
                debug_assert_eq!(response, Response::Nop);
                self.begin_propose().into_iter().collect()
            }
            Phase::Update => {
                debug_assert_eq!(response, Response::Updated);
                self.phase = Phase::Scan;
                Vec::new()
            }
            Phase::Scan => {
                let view = response.expect_snapshot();
                self.handle_scan(&view).into_iter().collect()
            }
            Phase::ReadHelper => {
                let value = response.expect_read();
                self.handle_helper(value).into_iter().collect()
            }
            Phase::Done => panic!("apply called on a halted process"),
        }
    }

    fn symmetry_class(&self) -> SymmetryClass {
        // No id anywhere: not in the local state, not in the stored
        // `(pref, t, history)` tuples, not in an address. *Any* permutation
        // of the process slots is a transition-system automorphism, which
        // is what lets symmetry reduction collapse distinct-workload cells.
        SymmetryClass::Anonymous
    }

    // `relabeled` and `relabel_value` keep their no-op defaults: there is
    // no id to rewrite.

    fn hash_behavior<H: Hasher>(&self, _relabel: &IdRelabeling, state: &mut H) {
        // The *behavioral* projection: everything a future `poised`/`apply`
        // can read. Two fields are provably dead and deliberately omitted —
        // this is where the reduction on distinct workloads comes from,
        // because anonymous processes whose mutable state has converged
        // become interchangeable even though their original inputs differ:
        //
        // * a halted process never takes another step, so nothing beyond
        //   the fact that it halted matters (its outputs live in the
        //   `DecisionSet`, hashed separately by the canonical key);
        // * `begin_propose` consumes `inputs[t - 1]` on entering instance
        //   `t` (or skips it when the history already covers `t`), so only
        //   the inputs of instances not yet begun can still be read.
        if matches!(self.phase, Phase::Done) {
            state.write_u8(0xD0);
            return;
        }
        state.write_u8(0xA1);
        self.params.hash(state);
        self.components.hash(state);
        self.ell.hash(state);
        self.inputs[(self.instance as usize).min(self.inputs.len())..].hash(state);
        self.use_helper.hash(state);
        self.helper_period.hash(state);
        self.location.hash(state);
        self.instance.hash(state);
        self.history.hash(state);
        self.pref.hash(state);
        self.phase.hash(state);
        self.iterations_since_helper_check.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_model::ProcessId;
    use sa_runtime::{
        check_k_agreement, check_validity, Executor, InputLog, ObstructionScheduler,
        RandomScheduler, RunConfig, SoloScheduler, Workload,
    };

    fn build_repeated(params: Params, workload: &Workload) -> Vec<AnonymousSetAgreement> {
        (0..params.n())
            .map(|p| {
                AnonymousSetAgreement::repeated(params, workload.sequence(p).to_vec()).unwrap()
            })
            .collect()
    }

    fn build_oneshot(params: Params) -> Vec<AnonymousSetAgreement> {
        (0..params.n())
            .map(|p| AnonymousSetAgreement::one_shot(params, 100 + p as u64))
            .collect()
    }

    fn log_of(workload: &Workload) -> InputLog {
        let mut log = InputLog::new();
        log.record_matrix(workload.matrix());
        log
    }

    #[test]
    fn constructors_validate_and_report_shape() {
        let params = Params::new(5, 2, 3).unwrap();
        // (m+1)(n-k) + m^2 = 3*2 + 4 = 10 components.
        assert_eq!(params.anonymous_snapshot_components(), 10);
        assert!(AnonymousSetAgreement::repeated(params, vec![]).is_err());
        assert!(AnonymousSetAgreement::with_width(params, vec![1], 9).is_err());
        assert!(AnonymousSetAgreement::deficient(params, vec![1], 0).is_err());
        let a = AnonymousSetAgreement::repeated(params, vec![1, 2]).unwrap();
        assert_eq!(a.width(), 10);
        assert!(a.uses_helper());
        assert_eq!(a.planned_instances(), 2);
        assert_eq!(a.layout(), MemoryLayout::with_snapshot_and_registers(10, 1));
        let o = AnonymousSetAgreement::one_shot(params, 5);
        assert!(!o.uses_helper());
        assert_eq!(o.layout(), MemoryLayout::with_snapshot_and_registers(10, 0));
    }

    #[test]
    #[should_panic(expected = "helper period must be positive")]
    fn zero_helper_period_is_rejected() {
        let params = Params::new(4, 1, 2).unwrap();
        let _ = AnonymousSetAgreement::repeated(params, vec![1])
            .unwrap()
            .with_helper_period(0);
    }

    #[test]
    fn solo_one_shot_decides_own_input() {
        let params = Params::new(4, 1, 2).unwrap();
        let mut exec = Executor::new(build_oneshot(params));
        let report = exec.run(&mut SoloScheduler::new(ProcessId(3)), RunConfig::default());
        assert!(report.halted[3]);
        assert_eq!(report.decisions.decision_of(ProcessId(3), 1), Some(103));
    }

    #[test]
    fn one_shot_obstruction_runs_satisfy_properties() {
        for (n, m, k) in [(3, 1, 1), (4, 1, 2), (4, 2, 2), (5, 2, 3)] {
            let params = Params::new(n, m, k).unwrap();
            let mut exec = Executor::new(build_oneshot(params));
            let survivors: Vec<ProcessId> = (0..m).map(ProcessId).collect();
            let mut sched = ObstructionScheduler::new(200, survivors.clone(), 7);
            let report = exec.run(&mut sched, RunConfig::with_max_steps(500_000));
            for p in &survivors {
                assert!(
                    report.halted[p.index()],
                    "survivor {p} stuck for n={n} m={m} k={k}"
                );
            }
            let mut log = InputLog::new();
            for p in 0..n {
                log.record(1, 100 + p as u64);
            }
            check_k_agreement(k, &report.decisions).unwrap();
            check_validity(&log, &report.decisions).unwrap();
        }
    }

    #[test]
    fn repeated_obstruction_runs_satisfy_properties() {
        for (n, m, k) in [(3, 1, 1), (4, 2, 3), (5, 1, 3)] {
            let params = Params::new(n, m, k).unwrap();
            let workload = Workload::all_distinct(n, 3);
            let mut exec = Executor::new(build_repeated(params, &workload));
            let survivors: Vec<ProcessId> = (0..m).map(ProcessId).collect();
            let mut sched = ObstructionScheduler::new(300, survivors.clone(), 23);
            let report = exec.run(&mut sched, RunConfig::with_max_steps(800_000));
            for p in &survivors {
                assert!(
                    report.halted[p.index()],
                    "survivor {p} stuck for n={n} m={m} k={k}"
                );
            }
            check_k_agreement(k, &report.decisions).unwrap();
            check_validity(&log_of(&workload), &report.decisions).unwrap();
        }
    }

    #[test]
    fn random_contention_preserves_safety() {
        for seed in 0..6u64 {
            let params = Params::new(4, 2, 3).unwrap();
            let workload = Workload::random(4, 2, 30, seed);
            let mut exec = Executor::new(build_repeated(params, &workload));
            let mut sched = RandomScheduler::new(seed + 100);
            let report = exec.run(&mut sched, RunConfig::with_max_steps(30_000));
            check_k_agreement(3, &report.decisions).unwrap();
            check_validity(&log_of(&workload), &report.decisions).unwrap();
        }
    }

    #[test]
    fn starving_process_finishes_through_helper_register() {
        // p0 completes two instances solo (publishing its outputs in H),
        // then p1 runs but we only let it poll H frequently; it must adopt
        // p0's outputs rather than computing its own.
        let params = Params::new(3, 1, 1).unwrap();
        let workload = Workload::all_distinct(3, 2);
        let mut exec = Executor::new(
            (0..3)
                .map(|p| {
                    AnonymousSetAgreement::repeated(params, workload.sequence(p).to_vec())
                        .unwrap()
                        .with_helper_period(1)
                })
                .collect::<Vec<_>>(),
        );
        let report0 = exec.run(&mut SoloScheduler::new(ProcessId(0)), RunConfig::default());
        assert!(report0.halted[0]);
        let report = exec.run(&mut SoloScheduler::new(ProcessId(1)), RunConfig::default());
        assert!(report.halted[1]);
        for t in 1..=2u64 {
            assert_eq!(
                report.decisions.decision_of(ProcessId(0), t),
                report.decisions.decision_of(ProcessId(1), t),
                "instance {t} outputs diverged"
            );
        }
    }

    #[test]
    fn helper_adoption_state_machine() {
        let params = Params::new(3, 1, 1).unwrap();
        let mut a = AnonymousSetAgreement::repeated(params, vec![5]).unwrap();
        // Write H, then begin instance 1.
        assert!(matches!(a.poised(), Some(Op::Write { register: 0, .. })));
        a.apply(Response::Written);
        assert_eq!(a.current_instance(), 1);
        // Force the helper-poll branch and feed it a published history.
        a.phase = Phase::ReadHelper;
        let outputs = AnonValue::Outputs(History::from_vec(vec![77]));
        let d = a.apply(Response::Read(Some(outputs)));
        assert_eq!(d, vec![Decision::new(1, 77)]);
        assert!(a.is_halted());
        assert_eq!(a.history().get(1), Some(77));
    }

    #[test]
    fn helper_poll_without_useful_history_resumes_loop() {
        let params = Params::new(3, 1, 1).unwrap();
        let mut a = AnonymousSetAgreement::repeated(params, vec![5]).unwrap();
        a.apply(Response::Written);
        a.phase = Phase::ReadHelper;
        let d = a.apply(Response::Read(Some(AnonValue::Outputs(History::empty()))));
        assert!(d.is_empty());
        assert!(matches!(a.poised(), Some(Op::Update { .. })));
    }

    #[test]
    fn scan_decides_on_most_frequent_value() {
        let params = Params::new(4, 2, 3).unwrap();
        // width = 3 * 1 + 4 = 7, ell = 3.
        let mut a = AnonymousSetAgreement::one_shot(params, 1);
        a.apply(Response::Nop); // begin instance 1
        a.phase = Phase::Scan;
        let cell = |v: u64| Some(AnonValue::Cell(AnonTuple::new(v, 1, History::empty())));
        let view = vec![
            cell(9),
            cell(9),
            cell(9),
            cell(9),
            cell(8),
            cell(8),
            cell(8),
        ];
        let d = a.handle_scan(&view).expect("must decide");
        assert_eq!(d.value, 9);
    }

    #[test]
    fn scan_adopts_value_with_ell_support() {
        let params = Params::new(4, 1, 2).unwrap();
        // width = 2 * 2 + 1 = 5, ell = 3.
        let mut a = AnonymousSetAgreement::one_shot(params, 1);
        a.apply(Response::Nop);
        assert_eq!(a.pref, 1);
        a.phase = Phase::Scan;
        let cell = |v: u64| Some(AnonValue::Cell(AnonTuple::new(v, 1, History::empty())));
        // Value 6 occupies ell = 3 components; own value 1 occupies none; one
        // component still holds ⊥ so no decision is possible.
        let view = vec![cell(6), cell(6), cell(6), cell(7), None];
        let d = a.handle_scan(&view);
        assert!(d.is_none());
        assert_eq!(a.pref, 6, "must adopt the well-supported value");
    }

    #[test]
    fn scan_ignores_stale_instances_for_decision() {
        let params = Params::new(4, 1, 2).unwrap();
        let mut a = AnonymousSetAgreement::repeated(params, vec![5, 6]).unwrap();
        a.apply(Response::Written); // begin instance 1
        a.history = History::from_vec(vec![4]);
        a.instance = 2;
        a.pref = 6;
        a.phase = Phase::Scan;
        let current = |v: u64| {
            Some(AnonValue::Cell(AnonTuple::new(
                v,
                2,
                History::from_vec(vec![4]),
            )))
        };
        let stale = Some(AnonValue::Cell(AnonTuple::new(9, 1, History::empty())));
        let view = vec![stale, current(6), current(6), current(6), current(6)];
        assert!(
            a.handle_scan(&view).is_none(),
            "stale tuple must block the decision"
        );
    }

    #[test]
    fn scan_adopts_history_from_higher_instance() {
        let params = Params::new(4, 1, 2).unwrap();
        let mut a = AnonymousSetAgreement::repeated(params, vec![5, 6]).unwrap();
        a.apply(Response::Written); // begin instance 1
        a.phase = Phase::Scan;
        let ahead = Some(AnonValue::Cell(AnonTuple::new(
            50,
            3,
            History::from_vec(vec![30, 31]),
        )));
        let view = vec![ahead, None, None, None, None];
        let d = a.handle_scan(&view).expect("must adopt");
        assert_eq!(d, Decision::new(1, 30));
    }

    #[test]
    fn helper_functions_compute_supports() {
        let t1 = AnonTuple::new(5, 1, History::empty());
        let t2 = AnonTuple::new(7, 1, History::empty());
        let t3 = AnonTuple::new(7, 2, History::empty());
        let cells = vec![Some(&t1), Some(&t2), Some(&t2), Some(&t3), None];
        assert_eq!(distinct_cells(&cells), 3);
        assert_eq!(most_frequent_value(&cells), Some(7));
        assert_eq!(value_support(&cells, 1, 7), 2);
        assert_eq!(value_support(&cells, 1, 5), 1);
        assert_eq!(best_supported_value(&cells, 1, 2, 5), Some(7));
        assert_eq!(best_supported_value(&cells, 1, 3, 5), None);
        assert_eq!(most_frequent_value(&[]), None);
    }
}
