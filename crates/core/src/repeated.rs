//! The repeated algorithm of Figure 4: m-obstruction-free *repeated* k-set
//! agreement over a snapshot object with `r = n + 2m − k` components.
//!
//! The algorithm follows the one-shot algorithm of Figure 3 with two
//! additions ("shortcuts"):
//!
//! * every stored value carries the instance number `t` and the process's
//!   `history` of earlier outputs; a tuple stored by a process working on a
//!   *lower* instance is treated like `⊥`, and a tuple from a *higher*
//!   instance lets the process adopt that history and finish immediately;
//! * a process entering instance `t` whose history already covers `t`
//!   (because it adopted a longer history earlier) outputs from the history
//!   without touching shared memory.
//!
//! The automaton proposes the configured sequence of inputs, one instance
//! after another, and halts after its last instance.

use crate::error::AlgorithmError;
use crate::values::{History, Tuple};
use sa_model::{
    Automaton, Decision, IdRelabeling, InputValue, InstanceId, MemoryLayout, Op, Params, ProcessId,
    Response, SymmetryClass,
};
use std::hash::{Hash, Hasher};

/// Which step the process performs next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Phase {
    /// Local bookkeeping at the start of `Propose` (lines 8–11).
    BeginPropose,
    /// About to `update` component `i` (line 13).
    Update,
    /// About to `scan` the snapshot object (line 14).
    Scan,
    /// All configured instances are complete.
    Done,
}

/// A single process of the Figure 4 repeated algorithm.
///
/// ```
/// use sa_core::RepeatedSetAgreement;
/// use sa_model::{Params, ProcessId};
/// use sa_runtime::{Executor, ObstructionScheduler, RunConfig};
///
/// let params = Params::new(3, 1, 1)?;
/// // Each process proposes two values, one per instance.
/// let automata: Vec<_> = (0..3)
///     .map(|p| RepeatedSetAgreement::new(params, ProcessId(p), vec![10 + p as u64, 20 + p as u64]).unwrap())
///     .collect();
/// let mut exec = Executor::new(automata);
/// let mut solo = ObstructionScheduler::isolated(vec![ProcessId(0)], 1);
/// let report = exec.run(&mut solo, RunConfig::default());
/// assert!(report.halted[0]);
/// assert_eq!(report.decisions.deciders(2), 1);
/// # Ok::<(), sa_model::ParamsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RepeatedSetAgreement {
    params: Params,
    components: usize,
    id: ProcessId,
    inputs: Vec<InputValue>,
    // Persistent local variables of Figure 4.
    location: usize,
    instance: InstanceId,
    history: History,
    pref: InputValue,
    phase: Phase,
}

impl RepeatedSetAgreement {
    /// Creates the automaton of process `id`, proposing `inputs[t - 1]` in
    /// its `t`-th instance, with the paper's snapshot width `n + 2m − k`.
    ///
    /// # Errors
    ///
    /// Returns an error if `inputs` is empty or `id` is out of range.
    pub fn new(
        params: Params,
        id: ProcessId,
        inputs: Vec<InputValue>,
    ) -> Result<Self, AlgorithmError> {
        RepeatedSetAgreement::with_width(params, id, inputs, params.snapshot_components())
    }

    /// Creates the automaton with an explicit snapshot width of at least
    /// `n + 2m − k` components.
    ///
    /// # Errors
    ///
    /// Returns [`AlgorithmError::TooFewComponents`] if `width` is too small,
    /// [`AlgorithmError::UnknownProcess`] if `id` is out of range, or
    /// [`AlgorithmError::EmptyInputSequence`] if no inputs are supplied.
    pub fn with_width(
        params: Params,
        id: ProcessId,
        inputs: Vec<InputValue>,
        width: usize,
    ) -> Result<Self, AlgorithmError> {
        if width < params.snapshot_components() {
            return Err(AlgorithmError::TooFewComponents {
                required: params.snapshot_components(),
                requested: width,
            });
        }
        Self::unchecked(params, id, inputs, width)
    }

    /// Creates a **deliberately under-provisioned** automaton for the
    /// lower-bound experiments; see
    /// [`OneShotSetAgreement::deficient`](crate::OneShotSetAgreement::deficient).
    ///
    /// # Errors
    ///
    /// Returns an error if `width` is zero, `id` is out of range or `inputs`
    /// is empty.
    pub fn deficient(
        params: Params,
        id: ProcessId,
        inputs: Vec<InputValue>,
        width: usize,
    ) -> Result<Self, AlgorithmError> {
        if width == 0 {
            return Err(AlgorithmError::TooFewComponents {
                required: 1,
                requested: 0,
            });
        }
        Self::unchecked(params, id, inputs, width)
    }

    fn unchecked(
        params: Params,
        id: ProcessId,
        inputs: Vec<InputValue>,
        width: usize,
    ) -> Result<Self, AlgorithmError> {
        if id.index() >= params.n() {
            return Err(AlgorithmError::UnknownProcess {
                id: id.index(),
                n: params.n(),
            });
        }
        if inputs.is_empty() {
            return Err(AlgorithmError::EmptyInputSequence);
        }
        Ok(RepeatedSetAgreement {
            params,
            components: width,
            id,
            inputs,
            location: 0,
            instance: 0,
            history: History::empty(),
            pref: 0,
            phase: Phase::BeginPropose,
        })
    }

    /// The problem parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The snapshot width used by this instance.
    pub fn width(&self) -> usize {
        self.components
    }

    /// The process identifier.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The instance the process is currently working on (0 before the first
    /// `Propose`).
    pub fn current_instance(&self) -> InstanceId {
        self.instance
    }

    /// The outputs this process has produced (or adopted) so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The number of instances this process will propose in.
    pub fn planned_instances(&self) -> usize {
        self.inputs.len()
    }

    /// Finishes the current instance with output `value` and moves on to the
    /// next `Propose` (or halts after the last one). The caller has already
    /// updated `history` as appropriate.
    fn finish_instance(&mut self, value: InputValue) -> Decision {
        let decision = Decision::new(self.instance, value);
        self.phase = if (self.instance as usize) < self.inputs.len() {
            Phase::BeginPropose
        } else {
            Phase::Done
        };
        decision
    }

    /// Lines 8–11: begin the next `Propose`, answering from the history if it
    /// already covers this instance.
    fn begin_propose(&mut self) -> Option<Decision> {
        self.instance += 1;
        if let Some(value) = self.history.get(self.instance) {
            return Some(self.finish_instance(value));
        }
        self.pref = self.inputs[(self.instance - 1) as usize];
        self.phase = Phase::Update;
        None
    }

    /// Lines 15–25: process a scan result.
    fn handle_scan(&mut self, view: &[Option<Tuple>]) -> Option<Decision> {
        let t = self.instance;
        // Line 15: somebody is already working on a higher instance — adopt
        // its history, which necessarily covers instance t.
        if let Some(ahead) = view
            .iter()
            .flatten()
            .filter(|tuple| tuple.instance > t)
            .max_by_key(|tuple| tuple.instance)
        {
            self.history = ahead.history.clone();
            let value = self
                .history
                .get(t)
                .expect("a process in a higher instance has output every instance up to t");
            return Some(self.finish_instance(value));
        }
        // Line 17: all entries are t-tuples (no ⊥, nothing from an earlier
        // instance) and at most m distinct tuples remain.
        let all_current = view
            .iter()
            .all(|entry| matches!(entry, Some(tuple) if tuple.instance >= t));
        if all_current && distinct_tuples(view) <= self.params.m() {
            let j1 = first_duplicate_index(view).unwrap_or(0);
            let value = view[j1].as_ref().expect("all entries are full").value;
            self.history = self.history.appended(value);
            return Some(self.finish_instance(value));
        }
        // Line 22: own tuple absent outside location i and two identical
        // t-tuples exist somewhere.
        let own = Tuple::new(self.pref, self.id, t, self.history.clone());
        let own_absent_elsewhere = view
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != self.location)
            .all(|(_, entry)| match entry {
                None => false,
                Some(tuple) => *tuple != own,
            });
        if own_absent_elsewhere {
            if let Some(j1) = first_duplicate_t_index(view, t) {
                // Lines 23–24: as in the one-shot algorithm, the location is
                // kept only when the preference actually changes (see the
                // interpretation note in `oneshot.rs` and DESIGN.md).
                let adopted = view[j1].as_ref().expect("duplicates are full").value;
                if adopted != self.pref {
                    self.pref = adopted;
                    self.phase = Phase::Update;
                    return None;
                }
            }
        }
        // Line 25: advance the location.
        self.location = (self.location + 1) % self.components;
        self.phase = Phase::Update;
        None
    }
}

/// Counts distinct non-`⊥` tuples in a scan.
fn distinct_tuples(view: &[Option<Tuple>]) -> usize {
    let mut seen: Vec<&Tuple> = Vec::with_capacity(view.len());
    for tuple in view.iter().flatten() {
        if !seen.contains(&tuple) {
            seen.push(tuple);
        }
    }
    seen.len()
}

/// The smallest index holding a tuple that also occurs at a later index.
fn first_duplicate_index(view: &[Option<Tuple>]) -> Option<usize> {
    for (j1, entry) in view.iter().enumerate() {
        let Some(tuple) = entry else { continue };
        if view[j1 + 1..].iter().flatten().any(|other| other == tuple) {
            return Some(j1);
        }
    }
    None
}

/// The smallest index holding a *t-tuple* that also occurs at a later index.
fn first_duplicate_t_index(view: &[Option<Tuple>], t: InstanceId) -> Option<usize> {
    for (j1, entry) in view.iter().enumerate() {
        let Some(tuple) = entry else { continue };
        if !tuple.is_for(t) {
            continue;
        }
        if view[j1 + 1..].iter().flatten().any(|other| other == tuple) {
            return Some(j1);
        }
    }
    None
}

impl Automaton for RepeatedSetAgreement {
    type Value = Tuple;

    fn layout(&self) -> MemoryLayout {
        MemoryLayout::with_snapshot(self.components)
    }

    fn poised(&self) -> Option<Op<Tuple>> {
        match self.phase {
            Phase::BeginPropose => Some(Op::Nop),
            Phase::Update => Some(Op::Update {
                snapshot: 0,
                component: self.location,
                value: Tuple::new(self.pref, self.id, self.instance, self.history.clone()),
            }),
            Phase::Scan => Some(Op::Scan { snapshot: 0 }),
            Phase::Done => None,
        }
    }

    fn apply(&mut self, response: Response<Tuple>) -> Vec<Decision> {
        match self.phase {
            Phase::BeginPropose => {
                debug_assert_eq!(response, Response::Nop);
                self.begin_propose().into_iter().collect()
            }
            Phase::Update => {
                debug_assert_eq!(response, Response::Updated);
                self.phase = Phase::Scan;
                Vec::new()
            }
            Phase::Scan => {
                let view = response.expect_snapshot();
                self.handle_scan(&view).into_iter().collect()
            }
            Phase::Done => panic!("apply called on a halted process"),
        }
    }

    fn symmetry_class(&self) -> SymmetryClass {
        // As in Figure 3: the id lives in local state and stored tuples,
        // never in an object address.
        SymmetryClass::IdCarrying
    }

    fn approx_heap_bytes(&self) -> usize {
        self.inputs.len() * std::mem::size_of::<InputValue>() + self.history.heap_bytes()
    }

    fn value_heap_bytes(value: &Tuple) -> usize {
        value.history.heap_bytes()
    }

    fn relabeled(&self, relabel: &IdRelabeling) -> Self {
        RepeatedSetAgreement {
            id: relabel.apply(self.id),
            ..self.clone()
        }
    }

    fn hash_behavior<H: Hasher>(&self, relabel: &IdRelabeling, state: &mut H) {
        // The full state with the id mapped; like the one-shot algorithm,
        // the input sequence is hashed whole (no dead-field projection) so
        // non-anonymous slots are identified with their inputs.
        self.params.hash(state);
        self.components.hash(state);
        relabel.apply(self.id).hash(state);
        self.inputs.hash(state);
        self.location.hash(state);
        self.instance.hash(state);
        self.history.hash(state);
        self.pref.hash(state);
        self.phase.hash(state);
    }

    fn relabel_value(value: &Tuple, relabel: &IdRelabeling) -> Tuple {
        Tuple::new(
            value.value,
            relabel.apply(value.id),
            value.instance,
            value.history.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_runtime::{
        check_k_agreement, check_validity, Executor, InputLog, ObstructionScheduler,
        RandomScheduler, RunConfig, SoloScheduler, Workload,
    };

    fn build(params: Params, workload: &Workload) -> Vec<RepeatedSetAgreement> {
        (0..params.n())
            .map(|p| {
                RepeatedSetAgreement::new(params, ProcessId(p), workload.sequence(p).to_vec())
                    .unwrap()
            })
            .collect()
    }

    fn log_of(workload: &Workload) -> InputLog {
        let mut log = InputLog::new();
        log.record_matrix(workload.matrix());
        log
    }

    #[test]
    fn constructor_validates_inputs() {
        let params = Params::new(4, 1, 2).unwrap();
        assert!(RepeatedSetAgreement::new(params, ProcessId(0), vec![]).is_err());
        assert!(RepeatedSetAgreement::new(params, ProcessId(4), vec![1]).is_err());
        assert!(RepeatedSetAgreement::with_width(params, ProcessId(0), vec![1], 3).is_err());
        assert!(RepeatedSetAgreement::deficient(params, ProcessId(0), vec![1], 0).is_err());
        let a = RepeatedSetAgreement::new(params, ProcessId(0), vec![1, 2, 3]).unwrap();
        assert_eq!(a.planned_instances(), 3);
        assert_eq!(a.width(), 4);
        assert_eq!(a.current_instance(), 0);
        assert!(a.history().is_empty());
    }

    #[test]
    fn solo_process_completes_every_instance_with_its_own_inputs() {
        let params = Params::new(3, 1, 1).unwrap();
        let workload = Workload::all_distinct(3, 4);
        let mut exec = Executor::new(build(params, &workload));
        let report = exec.run(&mut SoloScheduler::new(ProcessId(1)), RunConfig::default());
        assert!(report.halted[1]);
        for t in 1..=4u64 {
            assert_eq!(
                report.decisions.decision_of(ProcessId(1), t),
                Some(workload.input(1, t)),
                "solo run must decide its own input in instance {t}"
            );
        }
    }

    #[test]
    fn obstruction_runs_satisfy_all_properties_per_instance() {
        for (n, m, k) in [(3, 1, 1), (4, 2, 3), (5, 2, 2), (5, 1, 3)] {
            let params = Params::new(n, m, k).unwrap();
            let workload = Workload::all_distinct(n, 3);
            let mut exec = Executor::new(build(params, &workload));
            let survivors: Vec<ProcessId> = (0..m).map(ProcessId).collect();
            let mut sched = ObstructionScheduler::new(300, survivors.clone(), 13);
            let report = exec.run(&mut sched, RunConfig::with_max_steps(500_000));
            for p in &survivors {
                assert!(
                    report.halted[p.index()],
                    "survivor {p} stuck for n={n} m={m} k={k}"
                );
            }
            check_k_agreement(k, &report.decisions).unwrap();
            check_validity(&log_of(&workload), &report.decisions).unwrap();
        }
    }

    #[test]
    fn random_contention_preserves_safety_across_instances() {
        for seed in 0..8u64 {
            let params = Params::new(4, 2, 3).unwrap();
            let workload = Workload::random(4, 3, 50, seed);
            let mut exec = Executor::new(build(params, &workload));
            let mut sched = RandomScheduler::new(seed * 31 + 1);
            let report = exec.run(&mut sched, RunConfig::with_max_steps(20_000));
            check_k_agreement(3, &report.decisions).unwrap();
            check_validity(&log_of(&workload), &report.decisions).unwrap();
        }
    }

    #[test]
    fn laggard_adopts_history_from_faster_process() {
        // p0 runs alone through 3 instances, then p1 runs alone: p1 must
        // adopt p0's outputs for the instances it missed (it sees p0's tuple
        // from a higher instance or decides consistently).
        let params = Params::new(3, 1, 1).unwrap();
        let workload = Workload::all_distinct(3, 3);
        let mut exec = Executor::new(build(params, &workload));
        let mut first = SoloScheduler::new(ProcessId(0));
        let report0 = exec.run(&mut first, RunConfig::default());
        assert!(report0.halted[0]);
        let mut second = SoloScheduler::new(ProcessId(1));
        let report = exec.run(&mut second, RunConfig::default());
        assert!(report.halted[1]);
        // Consensus (k = 1): both processes must have decided identically in
        // every instance.
        for t in 1..=3u64 {
            let d0 = report.decisions.decision_of(ProcessId(0), t).unwrap();
            let d1 = report.decisions.decision_of(ProcessId(1), t).unwrap();
            assert_eq!(d0, d1, "instance {t} outputs diverged");
        }
        check_k_agreement(1, &report.decisions).unwrap();
    }

    #[test]
    fn history_shortcut_answers_without_shared_memory() {
        // A process whose history already covers the next instance decides
        // with a single local step.
        let params = Params::new(3, 1, 1).unwrap();
        let mut a = RepeatedSetAgreement::new(params, ProcessId(0), vec![5, 6]).unwrap();
        a.history = History::from_vec(vec![40, 41]);
        // First Propose: history covers instance 1.
        assert_eq!(a.poised(), Some(Op::Nop));
        let d = a.apply(Response::Nop);
        assert_eq!(d, vec![Decision::new(1, 40)]);
        // Second Propose: history covers instance 2; after that the process halts.
        let d = a.apply(Response::Nop);
        assert_eq!(d, vec![Decision::new(2, 41)]);
        assert!(a.is_halted());
    }

    #[test]
    fn tuples_from_lower_instances_are_treated_as_bottom() {
        let params = Params::new(3, 1, 1).unwrap();
        // r = 3 + 2 - 1 = 4 components.
        let mut a = RepeatedSetAgreement::new(params, ProcessId(0), vec![5]).unwrap();
        a.apply(Response::Nop); // begin instance 1
        assert_eq!(a.current_instance(), 1);
        a.phase = Phase::Scan;
        // Everything in the snapshot is from instance 0 lookalikes (lower
        // instance tuples do not exist for t = 1, so use full entries from a
        // *higher* process count scenario): here we instead check that a view
        // full of the process's own instance-1 tuples leads to a decision.
        let own = Tuple::new(5, ProcessId(0), 1, History::empty());
        let view = vec![
            Some(own.clone()),
            Some(own.clone()),
            Some(own.clone()),
            Some(own),
        ];
        let d = a.handle_scan(&view).expect("must decide");
        assert_eq!(d.value, 5);
        assert_eq!(a.history().get(1), Some(5));
    }

    #[test]
    fn scan_with_stale_tuples_does_not_decide() {
        let params = Params::new(4, 1, 2).unwrap();
        // r = 4 + 2 - 2 = 4.
        let mut a = RepeatedSetAgreement::new(params, ProcessId(0), vec![5, 6]).unwrap();
        a.apply(Response::Nop); // instance 1
        a.history = History::from_vec(vec![9]);
        a.instance = 2;
        a.pref = 6;
        a.phase = Phase::Scan;
        // One entry is from instance 1 (stale): the decision condition of
        // line 17 must not fire even though only one distinct tuple exists.
        let stale = Tuple::new(7, ProcessId(1), 1, History::empty());
        let current = Tuple::new(6, ProcessId(0), 2, History::from_vec(vec![9]));
        let view = vec![
            Some(stale),
            Some(current.clone()),
            Some(current.clone()),
            Some(current),
        ];
        let d = a.handle_scan(&view);
        assert!(d.is_none(), "stale tuple must block the decision");
    }

    #[test]
    fn higher_instance_tuple_is_adopted_immediately() {
        let params = Params::new(4, 1, 2).unwrap();
        let mut a = RepeatedSetAgreement::new(params, ProcessId(0), vec![5, 6]).unwrap();
        a.apply(Response::Nop); // instance 1
        a.phase = Phase::Scan;
        let ahead = Tuple::new(99, ProcessId(2), 3, History::from_vec(vec![70, 71]));
        let view = vec![Some(ahead), None, None, None];
        let d = a.handle_scan(&view).expect("must adopt and decide");
        assert_eq!(d, Decision::new(1, 70));
        assert_eq!(a.history().len(), 2);
        // The next Propose is answered straight from the adopted history.
        let d = a.apply(Response::Nop);
        assert_eq!(d, vec![Decision::new(2, 71)]);
        assert!(a.is_halted());
    }

    #[test]
    fn adoption_picks_the_highest_instance_in_the_view() {
        // Two tuples from the future: the line 15 shortcut must adopt the
        // history of the *highest* instance present, not merely the first
        // found — driven through the full `Automaton` interface.
        let params = Params::new(4, 1, 2).unwrap();
        let mut a = RepeatedSetAgreement::new(params, ProcessId(0), vec![5]).unwrap();
        a.apply(Response::Nop); // instance 1
        a.apply(Response::Updated);
        assert_eq!(a.poised(), Some(Op::Scan { snapshot: 0 }));
        let near = Tuple::new(30, ProcessId(1), 2, History::from_vec(vec![80]));
        let far = Tuple::new(50, ProcessId(2), 4, History::from_vec(vec![60, 61, 62]));
        let d = a.apply(Response::Snapshot(vec![Some(near), None, Some(far), None]));
        assert_eq!(d, vec![Decision::new(1, 60)]);
        assert_eq!(a.history().len(), 3, "the longer history must be adopted");
        assert!(a.is_halted());
    }

    #[test]
    fn covered_history_never_issues_shared_memory_ops() {
        // A process whose adopted history covers every planned instance
        // answers each Propose locally: every poised op across its whole
        // remaining life must be `Op::Nop` — no Update, no Scan.
        let params = Params::new(3, 1, 1).unwrap();
        let mut a = RepeatedSetAgreement::new(params, ProcessId(2), vec![5, 6, 7]).unwrap();
        a.history = History::from_vec(vec![40, 41, 42]);
        let mut decided = Vec::new();
        while let Some(op) = a.poised() {
            assert_eq!(op, Op::Nop, "history shortcut must stay off shared memory");
            decided.extend(a.apply(Response::Nop));
        }
        let expected: Vec<Decision> = (1..=3).map(|t| Decision::new(t, 39 + t)).collect();
        assert_eq!(decided, expected);
        assert!(a.is_halted());
    }

    #[test]
    fn lower_instance_tuples_act_as_bottom_in_the_decision_condition() {
        let params = Params::new(4, 1, 2).unwrap();
        let mut a = RepeatedSetAgreement::new(params, ProcessId(0), vec![5, 6]).unwrap();
        a.apply(Response::Nop);
        a.history = History::from_vec(vec![9]);
        a.instance = 2;
        a.pref = 6;
        a.phase = Phase::Scan;
        let mine = Tuple::new(6, ProcessId(0), 2, History::from_vec(vec![9]));
        let stale = Tuple::new(6, ProcessId(1), 1, History::empty());
        // Unanimous *values*, but one tuple is from instance 1 < t = 2: the
        // paper treats it like ⊥, so line 17's "no ⊥ in the view" fails.
        let blocked = vec![
            Some(mine.clone()),
            Some(stale),
            Some(mine.clone()),
            Some(mine.clone()),
        ];
        assert!(a.handle_scan(&blocked).is_none());
        // Replacing the stale entry with a current copy makes the same view
        // decide: the lower instance, not value disagreement, was the blocker.
        let mut b = a.clone();
        let unanimous = vec![
            Some(mine.clone()),
            Some(mine.clone()),
            Some(mine.clone()),
            Some(mine),
        ];
        let d = b.handle_scan(&unanimous).expect("current view must decide");
        assert_eq!(d, Decision::new(2, 6));
        assert_eq!(b.history().get(2), Some(6));
    }

    #[test]
    fn duplicated_stale_tuples_do_not_change_the_preference() {
        // Line 22 adopts a duplicated *t*-tuple's value; a pair of identical
        // tuples from an earlier instance is ⊥-like and must not be adopted.
        let params = Params::new(4, 1, 2).unwrap();
        let mut a = RepeatedSetAgreement::new(params, ProcessId(0), vec![5, 6]).unwrap();
        a.apply(Response::Nop);
        a.history = History::from_vec(vec![9]);
        a.instance = 2;
        a.pref = 6;
        a.phase = Phase::Scan;
        let stale = Tuple::new(7, ProcessId(1), 1, History::empty());
        let view = vec![Some(stale.clone()), Some(stale), None, None];
        assert!(a.handle_scan(&view).is_none());
        assert_eq!(a.pref, 6, "stale duplicates must not be adopted");
        // The process fell through to line 25 and merely advanced.
        assert_eq!(a.location, 1);
    }

    #[test]
    fn space_usage_stays_within_width() {
        let params = Params::new(5, 2, 3).unwrap();
        let workload = Workload::all_distinct(5, 2);
        let mut exec = Executor::new(build(params, &workload));
        let mut sched = ObstructionScheduler::new(400, vec![ProcessId(0), ProcessId(1)], 3);
        let report = exec.run(&mut sched, RunConfig::with_max_steps(500_000));
        assert!(report.metrics.components_written(0) <= params.snapshot_components());
    }

    #[test]
    fn duplicate_helpers_respect_instance_filter() {
        let h = History::empty();
        let t1 = |v: u64, p: usize| Some(Tuple::new(v, ProcessId(p), 1, h.clone()));
        let t2 = |v: u64, p: usize| Some(Tuple::new(v, ProcessId(p), 2, h.clone()));
        let view = vec![t1(4, 0), t1(4, 0), t2(5, 1), t2(5, 1)];
        assert_eq!(distinct_tuples(&view), 2);
        assert_eq!(first_duplicate_index(&view), Some(0));
        assert_eq!(first_duplicate_t_index(&view, 2), Some(2));
        assert_eq!(first_duplicate_t_index(&view, 3), None);
    }
}
