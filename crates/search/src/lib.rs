//! Machine-found lower-bound witnesses for the set-agreement reproduction.
//!
//! The paper's `n + 2m − k` space lower bound (Theorem 2) is proved by
//! *constructing* executions: drive processes until they cover registers
//! with pending writes, release the covering as a block write, and splice
//! invisible fragments in between. `sa-lowerbound` builds those executions
//! by hand; this crate finds them **by search**, driving the explorer's
//! state machinery over schedule space with a goal predicate instead of a
//! safety predicate:
//!
//! * [`goal`] — the [`WitnessGoal`] trait and its implementations:
//!   [`Covering`] (p processes poised to write p pairwise-distinct
//!   locations), [`BlockWrite`] (a covering whose covered locations were
//!   all written before, so releasing it obliterates information),
//!   composable via [`And`]/[`Or`] — plus the block-write mechanics
//!   ([`block_write`], [`obliterates`], [`splice_is_invisible`]) they are
//!   built from, shared with the hand-built constructions.
//! * [`driver`] — [`search`]: a level-synchronized BFS over schedule space
//!   that deduplicates configurations by their (optionally
//!   symmetry-canonicalized) 128-bit `StateKey`, evaluates the goal on
//!   every first visit, and keeps the best witness under a total order
//!   (most registers, widest covering, shallowest, lex-min schedule).
//!   Levels are expanded across worker threads and merged in submission
//!   order, so results are **byte-identical at any thread count**.
//! * [`witness`] — the replayable [`Witness`] artifact (schedule + goal +
//!   [`Certificate`]) and the single replay [`verify`] path that checks
//!   hand-built and machine-found witnesses alike.
//!
//! The search plugs into the unified execution surface as
//! [`Backend::AdversarySearch`](sa_runtime::Backend::AdversarySearch)
//! (knobs in [`SearchConfig`], goal selector in [`SearchGoal`] — both
//! defined in `sa-runtime` so the backend enum stays dependency-free) and
//! into campaigns as `mode = adversary-search`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod driver;
pub mod goal;
pub mod witness;

pub use driver::{search, SearchReport, SearchStop};
pub use goal::{
    block_write, covered_locations, covering_measure, goal_for, obliterates, poised_write_location,
    run_until_poised_outside, splice_is_invisible, And, BlockWrite, Covering, CoveringPair,
    GoalMeasure, GroupRun, Or, WitnessGoal,
};
pub use sa_runtime::{SearchConfig, SearchGoal};
pub use witness::{location_label, verify, Certificate, VerifyError, Witness};
