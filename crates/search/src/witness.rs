//! The replayable witness artifact and its verifier.
//!
//! A [`Witness`] is a *schedule* (the exact process steps that produce the
//! configuration), a *goal* (what structure the configuration exhibits) and
//! a *certificate* (the measured structure: covering pairs, register
//! counts, a fingerprint). It carries no automaton or memory bytes — like
//! the explorer's spill records, it is replay-based: anyone holding the
//! initial configuration can [`verify`] it by stepping the schedule and
//! re-evaluating the goal. Hand-built Theorem 2 constructions
//! (`sa-lowerbound`) and machine-found search results (the driver in this
//! crate) both emit this format, so one verification path checks them all.

use crate::goal::{goal_for, CoveringPair, GoalMeasure};
use sa_memory::Location;
use sa_model::{Automaton, ProcessId};
use sa_runtime::store::fnv1a64;
use sa_runtime::{Executor, SearchGoal};
use std::fmt;
use std::hash::Hash;

/// A compact, order-canonical label for a location: `r3` for register 3,
/// `c0.2` for component 2 of snapshot 0.
pub fn location_label(location: Location) -> String {
    match location {
        Location::Register(r) => format!("r{r}"),
        Location::Component {
            snapshot,
            component,
        } => format!("c{snapshot}.{component}"),
    }
}

/// What a witness certifies about its configuration: the measured covering
/// structure, the register counts, and a fingerprint over the canonical
/// rendering of all of it.
///
/// Certificates are pure functions of (goal, schedule length, measured
/// configuration), so replaying a witness from the same initial
/// configuration reproduces the certificate bit for bit — which is exactly
/// what [`verify`] checks.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Certificate {
    /// The goal this certificate was evaluated under.
    pub goal: SearchGoal,
    /// The schedule length that reaches the configuration.
    pub depth: u64,
    /// The canonical covering: smallest poised process per covered
    /// location, ordered by location.
    pub covering: Vec<CoveringPair>,
    /// Distinct locations covered by pending writes.
    pub registers_covered: usize,
    /// Distinct locations written before the configuration.
    pub registers_written: usize,
    /// `|written ∪ covered|` — the count compared against `n + 2m − k`.
    pub registers: usize,
    /// FNV-1a over [`Certificate::canonical_text`], for cheap cross-run
    /// comparison in records and summaries.
    pub fingerprint: u64,
}

impl Certificate {
    /// Builds the certificate for a measured configuration at `depth`.
    pub fn from_measure(goal: SearchGoal, depth: u64, measure: GoalMeasure) -> Certificate {
        let mut cert = Certificate {
            goal,
            depth,
            covering: measure.covering,
            registers_covered: measure.registers_covered,
            registers_written: measure.registers_written,
            registers: measure.registers,
            fingerprint: 0,
        };
        cert.fingerprint = fnv1a64(cert.canonical_text().as_bytes());
        cert
    }

    /// The canonical one-line rendering the fingerprint is computed over
    /// (everything but the fingerprint itself).
    pub fn canonical_text(&self) -> String {
        format!(
            "goal={} depth={} covering={} written={} covered={} registers={}",
            self.goal.label(),
            self.depth,
            self.covering_label(),
            self.registers_written,
            self.registers_covered,
            self.registers
        )
    }

    /// The covering rendered as `process@location` pairs (`-` when empty) —
    /// the form used in campaign records.
    pub fn covering_label(&self) -> String {
        if self.covering.is_empty() {
            "-".to_string()
        } else {
            self.covering
                .iter()
                .map(|c| format!("{}@{}", c.process.index(), location_label(c.location)))
                .collect::<Vec<_>>()
                .join(",")
        }
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [fingerprint {:016x}]",
            self.canonical_text(),
            self.fingerprint
        )
    }
}

/// A replayable lower-bound witness: schedule + goal + certificate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Witness {
    /// The goal the witness exhibits.
    pub goal: SearchGoal,
    /// The exact schedule reaching the witnessing configuration from the
    /// initial one, in original process ids (witnesses always replay).
    pub schedule: Vec<ProcessId>,
    /// What the configuration certifies.
    pub certificate: Certificate,
}

impl Witness {
    /// The schedule as a dotted label (`0.1.0`), `-` when empty — the form
    /// used in campaign records.
    pub fn schedule_label(&self) -> String {
        if self.schedule.is_empty() {
            "-".to_string()
        } else {
            self.schedule
                .iter()
                .map(|p| p.index().to_string())
                .collect::<Vec<_>>()
                .join(".")
        }
    }

    /// Parses a [`schedule_label`](Self::schedule_label) back into a
    /// schedule. `-` (or the empty string) is the empty schedule.
    pub fn parse_schedule(text: &str) -> Option<Vec<ProcessId>> {
        let text = text.trim();
        if text.is_empty() || text == "-" {
            return Some(Vec::new());
        }
        text.split('.')
            .map(|part| part.parse::<usize>().ok().map(ProcessId))
            .collect()
    }
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} via {}", self.certificate, self.schedule_label())
    }
}

/// Why a witness failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The schedule stepped a halted process — it does not replay.
    ScheduleStalled {
        /// The 0-based schedule position that failed.
        step: usize,
        /// The process that could not be stepped.
        process: ProcessId,
    },
    /// The replayed configuration does not exhibit the goal at all.
    GoalNotMet {
        /// The goal that was evaluated.
        goal: SearchGoal,
    },
    /// The replayed configuration exhibits the goal, but with a different
    /// certificate than the witness claims.
    CertificateMismatch {
        /// What the witness claimed.
        claimed: Box<Certificate>,
        /// What the replay measured.
        found: Box<Certificate>,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::ScheduleStalled { step, process } => {
                write!(f, "schedule stalled at step {step}: {process} is halted")
            }
            VerifyError::GoalNotMet { goal } => {
                write!(
                    f,
                    "replayed configuration does not exhibit {}",
                    goal.label()
                )
            }
            VerifyError::CertificateMismatch { claimed, found } => {
                write!(
                    f,
                    "certificate mismatch: claimed [{claimed}], found [{found}]"
                )
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a witness by replay: steps the schedule from `initial`,
/// re-evaluates the goal on the reached configuration, rebuilds the
/// certificate and compares it to the claimed one. Returns the (identical)
/// re-measured certificate on success.
///
/// This is the single verification path shared by hand-built constructions,
/// the search driver's self-check, and `sweep verify`.
pub fn verify<A>(initial: &Executor<A>, witness: &Witness) -> Result<Certificate, VerifyError>
where
    A: Automaton + Clone,
    A::Value: Clone + Eq + std::fmt::Debug,
{
    let mut state = initial.clone();
    for (step, &process) in witness.schedule.iter().enumerate() {
        if state.step(process).is_none() {
            return Err(VerifyError::ScheduleStalled { step, process });
        }
    }
    let goal = goal_for::<A>(witness.goal);
    let measure = goal
        .evaluate(&state)
        .ok_or(VerifyError::GoalNotMet { goal: witness.goal })?;
    let found = Certificate::from_measure(witness.goal, witness.schedule.len() as u64, measure);
    if found != witness.certificate {
        return Err(VerifyError::CertificateMismatch {
            claimed: Box::new(witness.certificate.clone()),
            found: Box::new(found),
        });
    }
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_core::OneShotSetAgreement;
    use sa_model::Params;

    fn executor() -> Executor<OneShotSetAgreement> {
        let params = Params::new(3, 1, 1).unwrap();
        let automata: Vec<_> = (0..3)
            .map(|p| OneShotSetAgreement::new(params, ProcessId(p), 100 + p as u64))
            .collect();
        Executor::new(automata)
    }

    fn witness_after(schedule: Vec<ProcessId>, goal: SearchGoal) -> Witness {
        let mut exec = executor();
        for &p in &schedule {
            exec.step(p);
        }
        let measure = goal_for::<OneShotSetAgreement>(goal)
            .evaluate(&exec)
            .expect("configuration must exhibit the goal");
        let certificate = Certificate::from_measure(goal, schedule.len() as u64, measure);
        Witness {
            goal,
            schedule,
            certificate,
        }
    }

    #[test]
    fn location_labels_are_compact_and_distinct() {
        assert_eq!(location_label(Location::Register(3)), "r3");
        assert_eq!(
            location_label(Location::Component {
                snapshot: 0,
                component: 2
            }),
            "c0.2"
        );
    }

    #[test]
    fn schedule_labels_round_trip() {
        let witness = witness_after(
            vec![ProcessId(0), ProcessId(1), ProcessId(0)],
            SearchGoal::Covering,
        );
        assert_eq!(witness.schedule_label(), "0.1.0");
        assert_eq!(
            Witness::parse_schedule(&witness.schedule_label()).unwrap(),
            witness.schedule
        );
        let empty = witness_after(Vec::new(), SearchGoal::Covering);
        assert_eq!(empty.schedule_label(), "-");
        assert_eq!(
            Witness::parse_schedule("-").unwrap(),
            Vec::<ProcessId>::new()
        );
        assert_eq!(
            Witness::parse_schedule("").unwrap(),
            Vec::<ProcessId>::new()
        );
        assert_eq!(Witness::parse_schedule("0.x.1"), None);
    }

    #[test]
    fn fingerprints_cover_every_certified_field() {
        let base = witness_after(vec![ProcessId(0)], SearchGoal::BlockWrite).certificate;
        for mutate in [
            (|c: &mut Certificate| c.depth += 1) as fn(&mut Certificate),
            |c| c.registers += 1,
            |c| c.registers_covered += 1,
            |c| c.registers_written += 1,
            |c| c.covering.clear(),
            |c| c.goal = SearchGoal::Covering,
        ] {
            let mut changed = base.clone();
            mutate(&mut changed);
            changed.fingerprint = fnv1a64(changed.canonical_text().as_bytes());
            assert_ne!(
                changed.fingerprint, base.fingerprint,
                "fingerprint ignored a certified field: {changed}"
            );
        }
    }

    #[test]
    fn verify_accepts_a_faithful_witness() {
        let witness = witness_after(vec![ProcessId(0), ProcessId(1)], SearchGoal::Covering);
        let replayed = verify(&executor(), &witness).expect("faithful witness must verify");
        assert_eq!(replayed, witness.certificate);
    }

    #[test]
    fn verify_rejects_goals_the_replay_does_not_exhibit() {
        // The empty schedule exhibits a covering but not a block write.
        let mut witness = witness_after(Vec::new(), SearchGoal::Covering);
        witness.goal = SearchGoal::BlockWrite;
        witness.certificate.goal = SearchGoal::BlockWrite;
        assert_eq!(
            verify(&executor(), &witness),
            Err(VerifyError::GoalNotMet {
                goal: SearchGoal::BlockWrite
            })
        );
    }

    #[test]
    fn verify_rejects_tampered_certificates() {
        let witness = witness_after(vec![ProcessId(0)], SearchGoal::Covering);
        let mut tampered = witness.clone();
        tampered.certificate.registers_written += 1;
        match verify(&executor(), &tampered) {
            Err(VerifyError::CertificateMismatch { claimed, found }) => {
                assert_eq!(*claimed, tampered.certificate);
                assert_eq!(*found, witness.certificate);
            }
            other => panic!("expected a certificate mismatch, got {other:?}"),
        }
    }

    #[test]
    fn verify_rejects_schedules_that_stall() {
        let mut witness = witness_after(vec![ProcessId(0)], SearchGoal::Covering);
        // Drive p0 far past its halting point: some prefix step must stall.
        witness.schedule = std::iter::repeat_n(ProcessId(0), 200).collect();
        match verify(&executor(), &witness) {
            Err(VerifyError::ScheduleStalled { process, .. }) => {
                assert_eq!(process, ProcessId(0));
            }
            other => panic!("expected a stalled schedule, got {other:?}"),
        }
    }
}
