//! The deterministic goal-directed search driver.
//!
//! A level-synchronized breadth-first search over schedule space, built on
//! the same state machinery as the exhaustive explorers: configurations are
//! deduplicated by their (optionally symmetry-canonicalized) 128-bit
//! [`StateKey`], every first-visited configuration is evaluated against the
//! configured [`WitnessGoal`](crate::goal::WitnessGoal), and the best
//! witness is kept under a total order — most registers, then widest
//! covering, then shallowest depth, then lexicographically smallest
//! schedule. Levels are expanded in contiguous chunks across worker
//! threads and merged back in submission order, so the report (and the
//! campaign JSONL built from it) is **byte-identical at any thread count**;
//! a serial search is simply the one-chunk case of the same merge.

use crate::goal::{goal_for, GoalMeasure};
use crate::witness::{verify, Certificate, Witness};
use sa_model::{Automaton, ProcessId};
use sa_runtime::{
    canonical_state_key, state_key, Executor, SearchConfig, SearchGoal, StateKey, SymmetryPlan,
};
use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::Hash;

/// Why an adversary search stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStop {
    /// A witness with at least `target_registers` registers was found (the
    /// level it was found in was finished first, so the result is the best
    /// witness of that level).
    TargetReached,
    /// Every reachable configuration within the depth bound was visited.
    StateSpaceExhausted,
    /// A state or depth budget ran out while work remained.
    Truncated,
}

impl SearchStop {
    /// A short identifier used in records and reports.
    pub fn label(&self) -> &'static str {
        match self {
            SearchStop::TargetReached => "target-reached",
            SearchStop::StateSpaceExhausted => "state-space-exhausted",
            SearchStop::Truncated => "truncated",
        }
    }
}

/// The result of one adversary search.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// The goal that was searched for.
    pub goal: SearchGoal,
    /// The register target (`0` = none: search the whole budgeted space).
    pub target_registers: usize,
    /// The worker threads the levels were expanded over.
    pub threads: usize,
    /// Distinct configurations visited (orbit representatives under
    /// symmetry reduction).
    pub states_visited: u64,
    /// The deepest BFS level a first-visit configuration was found at.
    pub max_depth_reached: u64,
    /// `true` if a budget ran out while unexplored work remained.
    pub truncated: bool,
    /// `true` if the target register count was reached.
    pub target_reached: bool,
    /// `true` if configurations were canonicalized up to process-id orbits
    /// before deduplication.
    pub symmetry_applied: bool,
    /// Why the search stopped.
    pub stop: SearchStop,
    /// The best witness found, if any.
    pub witness: Option<Witness>,
    /// `true` if the emitted witness (when there is one) replayed to an
    /// identical certificate — the driver's own verification pass.
    pub verified: bool,
}

/// A successor produced by expanding one frontier entry.
struct Candidate<A: Automaton> {
    key: StateKey,
    state: Executor<A>,
    schedule: Vec<ProcessId>,
    hit: Option<GoalMeasure>,
}

/// The dedup key of a configuration under a plan: canonicalized when the
/// plan applies non-trivially, the plain key otherwise (the same dispatch
/// the exhaustive explorers use).
fn keyed<A>(executor: &Executor<A>, plan: &SymmetryPlan) -> StateKey
where
    A: Automaton + Hash,
    A::Value: Hash + Clone + Eq + Debug,
{
    if plan.applied() && !plan.is_trivial() {
        canonical_state_key(executor, plan).0
    } else {
        state_key(executor)
    }
}

/// `true` when `candidate` beats `best` under the witness order: most
/// registers, then widest covering, then shallowest, then lexicographically
/// smallest schedule.
fn better(candidate: &Witness, best: &Witness) -> bool {
    let c = &candidate.certificate;
    let b = &best.certificate;
    (
        c.registers,
        c.registers_covered,
        std::cmp::Reverse(c.depth),
        std::cmp::Reverse(candidate.schedule.clone()),
    ) > (
        b.registers,
        b.registers_covered,
        std::cmp::Reverse(b.depth),
        std::cmp::Reverse(best.schedule.clone()),
    )
}

/// Runs a goal-directed adversary search from `initial`.
///
/// The search visits configurations breadth-first up to
/// [`SearchConfig::max_depth`] steps and [`SearchConfig::max_states`]
/// distinct configurations, evaluating the goal on every first visit. With
/// a non-zero [`SearchConfig::target_registers`] it stops at the end of the
/// first level containing a witness with at least that many registers;
/// otherwise it searches the whole budgeted space for the best witness.
/// The emitted witness is replay-verified before the report is returned.
pub fn search<A>(initial: &Executor<A>, config: SearchConfig) -> SearchReport
where
    A: Automaton + Clone + Hash + Send + Sync,
    A::Value: Hash + Clone + Eq + Debug + Send + Sync,
{
    let plan = SymmetryPlan::for_executor(initial, config.symmetry);
    let goal = goal_for::<A>(config.goal);
    let threads = config.threads.max(1);

    let mut seen: HashSet<StateKey> = HashSet::new();
    let mut best: Option<Witness> = None;
    let mut states_visited: u64 = 0;
    let mut max_depth_reached: u64 = 0;
    let mut truncated = false;

    let consider = |best: &mut Option<Witness>, schedule: &[ProcessId], measure: GoalMeasure| {
        let candidate = Witness {
            goal: config.goal,
            schedule: schedule.to_vec(),
            certificate: Certificate::from_measure(config.goal, schedule.len() as u64, measure),
        };
        if best.as_ref().is_none_or(|b| better(&candidate, b)) {
            *best = Some(candidate);
        }
    };

    // Depth 0: the initial configuration is visited (and measured) too.
    seen.insert(keyed(initial, &plan));
    states_visited += 1;
    if let Some(measure) = goal.evaluate(initial) {
        consider(&mut best, &[], measure);
    }

    let mut frontier: Vec<(Executor<A>, Vec<ProcessId>)> = vec![(initial.clone(), Vec::new())];
    let mut depth: u64 = 0;
    let stop = loop {
        let target_reached = config.target_registers > 0
            && best
                .as_ref()
                .is_some_and(|w| w.certificate.registers >= config.target_registers);
        if target_reached {
            break SearchStop::TargetReached;
        }
        if frontier.is_empty() {
            break SearchStop::StateSpaceExhausted;
        }
        if depth >= config.max_depth {
            truncated = true;
            break SearchStop::Truncated;
        }

        // Expand the level in contiguous chunks, merged back in submission
        // order — the order is a pure function of the frontier, never of
        // the thread count.
        let chunk_count = threads.min(frontier.len());
        let chunk_size = frontier.len().div_ceil(chunk_count);
        let expand = |chunk: &[(Executor<A>, Vec<ProcessId>)]| -> Vec<Candidate<A>> {
            let mut out = Vec::new();
            for (state, schedule) in chunk {
                for process in state.runnable() {
                    let mut successor = state.clone();
                    successor.step(process);
                    let key = keyed(&successor, &plan);
                    let hit = goal.evaluate(&successor);
                    let mut next_schedule = Vec::with_capacity(schedule.len() + 1);
                    next_schedule.extend_from_slice(schedule);
                    next_schedule.push(process);
                    out.push(Candidate {
                        key,
                        state: successor,
                        schedule: next_schedule,
                        hit,
                    });
                }
            }
            out
        };
        let merged: Vec<Vec<Candidate<A>>> = if chunk_count == 1 {
            vec![expand(&frontier)]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = frontier
                    .chunks(chunk_size)
                    .map(|chunk| scope.spawn(|| expand(chunk)))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        };

        depth += 1;
        let mut next: Vec<(Executor<A>, Vec<ProcessId>)> = Vec::new();
        let mut budget_hit = false;
        'merge: for chunk in merged {
            for candidate in chunk {
                if seen.contains(&candidate.key) {
                    continue;
                }
                if states_visited >= config.max_states {
                    budget_hit = true;
                    break 'merge;
                }
                seen.insert(candidate.key);
                states_visited += 1;
                max_depth_reached = depth;
                if let Some(measure) = candidate.hit {
                    consider(&mut best, &candidate.schedule, measure);
                }
                next.push((candidate.state, candidate.schedule));
            }
        }
        if budget_hit {
            truncated = true;
            break SearchStop::Truncated;
        }
        frontier = next;
    };

    let target_reached = stop == SearchStop::TargetReached;
    let verified = match &best {
        Some(witness) => verify(initial, witness).is_ok(),
        None => true,
    };
    SearchReport {
        goal: config.goal,
        target_registers: config.target_registers,
        threads,
        states_visited,
        max_depth_reached,
        truncated,
        target_reached,
        symmetry_applied: plan.applied(),
        stop,
        witness: best,
        verified,
    }
}
