//! The deterministic goal-directed search driver.
//!
//! A level-synchronized breadth-first search over schedule space, built on
//! the same state machinery as the exhaustive explorers: configurations are
//! deduplicated by their (optionally symmetry-canonicalized) 128-bit
//! [`StateKey`], every first-visited configuration is evaluated against the
//! configured [`WitnessGoal`](crate::goal::WitnessGoal), and the best
//! witness is kept under a total order — most registers, then widest
//! covering, then shallowest depth, then lexicographically smallest
//! schedule. Levels are expanded in contiguous chunks across worker
//! threads and merged back in submission order, so the report (and the
//! campaign JSONL built from it) is **byte-identical at any thread count**;
//! a serial search is simply the one-chunk case of the same merge.
//!
//! With [`ReductionMode::SleepSets`] the search additionally prunes
//! commuting interleavings through the same footprint-based independence
//! relation the exhaustive explorers use. Sleep sets still visit every
//! reachable configuration, so on an exhausted space the set of evaluated
//! configurations — and hence whether a witness structure exists — is
//! unchanged; only [`SearchReport::expansions`] shrinks. The *champion*
//! witness may differ from the unreduced search's (states can be first
//! reached along different schedules, and on truncated searches along
//! deeper ones), which is why the report always re-verifies it by replay.

use crate::goal::{goal_for, GoalMeasure};
use crate::witness::{verify, Certificate, Witness};
use sa_model::{Automaton, IdRelabeling, ProcessId};
use sa_runtime::{
    canonical_state_key, keyed_relabeled, mask_of, persistent_set, persistent_set_applies,
    relabel_mask, state_key, successor_sleep, unrelabel_mask, Executor, ReductionMode,
    SearchConfig, SearchGoal, StateKey, SymmetryPlan,
};
use std::collections::{HashMap, HashSet};
use std::fmt::Debug;
use std::hash::Hash;

/// Why an adversary search stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStop {
    /// A witness with at least `target_registers` registers was found (the
    /// level it was found in was finished first, so the result is the best
    /// witness of that level).
    TargetReached,
    /// Every reachable configuration within the depth bound was visited.
    StateSpaceExhausted,
    /// A state or depth budget ran out while work remained.
    Truncated,
}

impl SearchStop {
    /// A short identifier used in records and reports.
    pub fn label(&self) -> &'static str {
        match self {
            SearchStop::TargetReached => "target-reached",
            SearchStop::StateSpaceExhausted => "state-space-exhausted",
            SearchStop::Truncated => "truncated",
        }
    }
}

/// The result of one adversary search.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// The goal that was searched for.
    pub goal: SearchGoal,
    /// The register target (`0` = none: search the whole budgeted space).
    pub target_registers: usize,
    /// The worker threads the levels were expanded over.
    pub threads: usize,
    /// Distinct configurations visited (orbit representatives under
    /// symmetry reduction).
    pub states_visited: u64,
    /// The deepest BFS level a first-visit configuration was found at.
    pub max_depth_reached: u64,
    /// `true` if a budget ran out while unexplored work remained.
    pub truncated: bool,
    /// `true` if the target register count was reached.
    pub target_reached: bool,
    /// `true` if configurations were canonicalized up to process-id orbits
    /// before deduplication.
    pub symmetry_applied: bool,
    /// `true` if sleep-set partial-order reduction was active (requested
    /// and at most 64 processes).
    pub reduction_applied: bool,
    /// Successor expansions performed. Sleep sets shrink **this** figure;
    /// `states_visited` is invariant on exhausted spaces.
    pub expansions: u64,
    /// Expansions skipped because the stepping process was asleep.
    pub sleep_pruned: u64,
    /// Expansions performed at states where the persistent-set cut applied
    /// (0 unless [`ReductionMode::PersistentSets`] was active).
    pub persistent_expanded: u64,
    /// Enabled transitions left permanently unexpanded by persistent-set
    /// selection — roots of subtrees proven redundant (0 without
    /// persistent-set reduction).
    pub states_cut: u64,
    /// Why the search stopped.
    pub stop: SearchStop,
    /// The best witness found, if any.
    pub witness: Option<Witness>,
    /// `true` if the emitted witness (when there is one) replayed to an
    /// identical certificate — the driver's own verification pass.
    pub verified: bool,
}

/// One expansion chunk's output: candidates plus the chunk's expansion,
/// sleep-pruned, persistent-expanded and states-cut counters.
type ChunkExpansion<A> = (Vec<Candidate<A>>, u64, u64, u64, u64);

/// A successor produced by expanding one frontier entry. `sleep_canon` is
/// the successor's sleep set in canonical coordinates (so masks from
/// different members of one orbit are comparable); `relabel` maps back.
struct Candidate<A: Automaton> {
    key: StateKey,
    state: Executor<A>,
    schedule: Vec<ProcessId>,
    hit: Option<GoalMeasure>,
    sleep_canon: u64,
    relabel: IdRelabeling,
}

/// One frontier entry: a configuration, the schedule reaching it, its sleep
/// set (original coordinates) and, for a *revisit* of a seen state, the
/// exact target mask still owed to the stored-mask promise.
struct Frontier<A: Automaton> {
    state: Executor<A>,
    schedule: Vec<ProcessId>,
    sleep: u64,
    expand: Option<u64>,
}

/// The dedup key of a configuration under a plan: canonicalized when the
/// plan applies non-trivially, the plain key otherwise (the same dispatch
/// the exhaustive explorers use).
fn keyed<A>(executor: &Executor<A>, plan: &SymmetryPlan) -> StateKey
where
    A: Automaton + Hash,
    A::Value: Hash + Clone + Eq + Debug,
{
    if plan.applied() && !plan.is_trivial() {
        canonical_state_key(executor, plan).0
    } else {
        state_key(executor)
    }
}

/// `true` when `candidate` beats `best` under the witness order: most
/// registers, then widest covering, then shallowest, then lexicographically
/// smallest schedule.
fn better(candidate: &Witness, best: &Witness) -> bool {
    let c = &candidate.certificate;
    let b = &best.certificate;
    (
        c.registers,
        c.registers_covered,
        std::cmp::Reverse(c.depth),
        std::cmp::Reverse(candidate.schedule.clone()),
    ) > (
        b.registers,
        b.registers_covered,
        std::cmp::Reverse(b.depth),
        std::cmp::Reverse(best.schedule.clone()),
    )
}

/// Runs a goal-directed adversary search from `initial`.
///
/// The search visits configurations breadth-first up to
/// [`SearchConfig::max_depth`] steps and [`SearchConfig::max_states`]
/// distinct configurations, evaluating the goal on every first visit. With
/// a non-zero [`SearchConfig::target_registers`] it stops at the end of the
/// first level containing a witness with at least that many registers;
/// otherwise it searches the whole budgeted space for the best witness.
/// The emitted witness is replay-verified before the report is returned.
pub fn search<A>(initial: &Executor<A>, config: SearchConfig) -> SearchReport
where
    A: Automaton + Clone + Hash + Send + Sync,
    A::Value: Hash + Clone + Eq + Debug + Send + Sync,
{
    let plan = SymmetryPlan::for_executor(initial, config.symmetry);
    let goal = goal_for::<A>(config.goal);
    let threads = config.threads.max(1);
    let n = initial.process_count();
    let reduce = matches!(
        config.reduction,
        ReductionMode::SleepSets | ReductionMode::PersistentSets
    ) && n > 0
        && n <= u64::BITS as usize;
    // Persistent-set cuts on top of the sleep discipline: with no DFS path
    // to backtrack over, the cut is taken only at states where it is
    // locally provable (every non-member halts after its poised op — see
    // `persistent_set_applies`), where pset-first expansion covers every
    // behavior of the acyclic state graph. Both checks are pure functions
    // of the configuration, preserving thread-count byte-identity.
    let persistent = reduce && config.reduction == ReductionMode::PersistentSets;

    // Exactly one of these is used: a plain seen-set without reduction, a
    // stored-sleep-mask map (Godefroid's state-matching promises) with it.
    let mut seen: HashSet<StateKey> = HashSet::new();
    let mut masks: HashMap<StateKey, u64> = HashMap::new();
    let mut best: Option<Witness> = None;
    let mut states_visited: u64 = 0;
    let mut max_depth_reached: u64 = 0;
    let mut expansions: u64 = 0;
    let mut sleep_pruned: u64 = 0;
    let mut persistent_expanded: u64 = 0;
    let mut states_cut: u64 = 0;
    let mut truncated = false;

    let consider = |best: &mut Option<Witness>, schedule: &[ProcessId], measure: GoalMeasure| {
        let candidate = Witness {
            goal: config.goal,
            schedule: schedule.to_vec(),
            certificate: Certificate::from_measure(config.goal, schedule.len() as u64, measure),
        };
        if best.as_ref().is_none_or(|b| better(&candidate, b)) {
            *best = Some(candidate);
        }
    };

    // Depth 0: the initial configuration is visited (and measured) too.
    if reduce {
        masks.insert(keyed(initial, &plan), 0);
    } else {
        seen.insert(keyed(initial, &plan));
    }
    states_visited += 1;
    if let Some(measure) = goal.evaluate(initial) {
        consider(&mut best, &[], measure);
    }

    let mut frontier: Vec<Frontier<A>> = vec![Frontier {
        state: initial.clone(),
        schedule: Vec::new(),
        sleep: 0,
        expand: None,
    }];
    let mut depth: u64 = 0;
    let stop = loop {
        let target_reached = config.target_registers > 0
            && best
                .as_ref()
                .is_some_and(|w| w.certificate.registers >= config.target_registers);
        if target_reached {
            break SearchStop::TargetReached;
        }
        if frontier.is_empty() {
            break SearchStop::StateSpaceExhausted;
        }
        if depth >= config.max_depth {
            truncated = true;
            break SearchStop::Truncated;
        }

        // Expand the level in contiguous chunks, merged back in submission
        // order — the order is a pure function of the frontier, never of
        // the thread count.
        let chunk_count = threads.min(frontier.len());
        let chunk_size = frontier.len().div_ceil(chunk_count);
        let expand = |chunk: &[Frontier<A>]| -> ChunkExpansion<A> {
            let mut out = Vec::new();
            let mut stepped: u64 = 0;
            let mut pruned: u64 = 0;
            let mut pset_stepped: u64 = 0;
            let mut cut: u64 = 0;
            for entry in chunk {
                let runnable = entry.state.runnable();
                if reduce && entry.expand.is_none() {
                    pruned += (entry.sleep & mask_of(&runnable)).count_ones() as u64;
                }
                // A fresh entry expands everything outside its sleep set; a
                // revisit expands exactly the owed targets of its promise.
                let mut targets = entry.expand.unwrap_or(!entry.sleep);
                if persistent && entry.expand.is_none() {
                    let pset = persistent_set(&entry.state, &runnable);
                    if persistent_set_applies(&entry.state, pset, &runnable) {
                        let enabled = mask_of(&runnable) & targets;
                        cut += (enabled & !pset).count_ones() as u64;
                        pset_stepped += (enabled & pset).count_ones() as u64;
                        targets &= pset;
                    }
                }
                let mut sleep_cur = entry.sleep;
                for process in runnable {
                    if targets & (1u64 << process.index()) == 0 {
                        continue;
                    }
                    stepped += 1;
                    let mut successor = entry.state.clone();
                    successor.step(process);
                    let (key, sleep_canon, relabel) = if reduce {
                        let child_sleep = successor_sleep(&entry.state, process, sleep_cur);
                        let (key, _weight, relabel) = keyed_relabeled(&successor, &plan);
                        (key, relabel_mask(child_sleep, &relabel), relabel)
                    } else {
                        (keyed(&successor, &plan), 0, IdRelabeling::identity(0))
                    };
                    if reduce {
                        sleep_cur |= 1u64 << process.index();
                    }
                    let hit = goal.evaluate(&successor);
                    let mut next_schedule = Vec::with_capacity(entry.schedule.len() + 1);
                    next_schedule.extend_from_slice(&entry.schedule);
                    next_schedule.push(process);
                    out.push(Candidate {
                        key,
                        state: successor,
                        schedule: next_schedule,
                        hit,
                        sleep_canon,
                        relabel,
                    });
                }
            }
            (out, stepped, pruned, pset_stepped, cut)
        };
        let merged: Vec<ChunkExpansion<A>> = if chunk_count == 1 {
            vec![expand(&frontier)]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = frontier
                    .chunks(chunk_size)
                    .map(|chunk| scope.spawn(|| expand(chunk)))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        };

        depth += 1;
        let mut next: Vec<Frontier<A>> = Vec::new();
        let mut budget_hit = false;
        'merge: for (chunk, stepped, pruned, pset_stepped, cut) in merged {
            expansions += stepped;
            sleep_pruned += pruned;
            persistent_expanded += pset_stepped;
            states_cut += cut;
            for candidate in chunk {
                if reduce {
                    if let Some(&stored) = masks.get(&candidate.key) {
                        // Seen before: the arrival owes exactly the stored
                        // promises its own sleep set does not renew. Nothing
                        // owed — skip; otherwise shrink the promise and
                        // queue a revisit expanding exactly the owed set.
                        let owed = stored & !candidate.sleep_canon;
                        if owed == 0 {
                            continue;
                        }
                        masks.insert(candidate.key, stored & candidate.sleep_canon);
                        next.push(Frontier {
                            state: candidate.state,
                            schedule: candidate.schedule,
                            sleep: unrelabel_mask(candidate.sleep_canon, &candidate.relabel),
                            expand: Some(unrelabel_mask(owed, &candidate.relabel)),
                        });
                        continue;
                    }
                } else if seen.contains(&candidate.key) {
                    continue;
                }
                if states_visited >= config.max_states {
                    budget_hit = true;
                    break 'merge;
                }
                let sleep = if reduce {
                    masks.insert(candidate.key, candidate.sleep_canon);
                    unrelabel_mask(candidate.sleep_canon, &candidate.relabel)
                } else {
                    seen.insert(candidate.key);
                    0
                };
                states_visited += 1;
                max_depth_reached = depth;
                if let Some(measure) = candidate.hit {
                    consider(&mut best, &candidate.schedule, measure);
                }
                next.push(Frontier {
                    state: candidate.state,
                    schedule: candidate.schedule,
                    sleep,
                    expand: None,
                });
            }
        }
        if budget_hit {
            truncated = true;
            break SearchStop::Truncated;
        }
        frontier = next;
    };

    let target_reached = stop == SearchStop::TargetReached;
    let verified = match &best {
        Some(witness) => verify(initial, witness).is_ok(),
        None => true,
    };
    SearchReport {
        goal: config.goal,
        target_registers: config.target_registers,
        threads,
        states_visited,
        max_depth_reached,
        truncated,
        target_reached,
        symmetry_applied: plan.applied(),
        reduction_applied: reduce,
        expansions,
        sleep_pruned,
        persistent_expanded,
        states_cut,
        stop,
        witness: best,
        verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_runtime::toy::ToyWriter;
    use sa_runtime::SymmetryMode;

    #[test]
    fn sleep_sets_keep_the_verdict_and_prune_expansions() {
        // On an exhausted space sleep sets still visit (and goal-evaluate)
        // every configuration: the best register count is invariant, only
        // the expansion count shrinks. The champion schedule may differ, so
        // both reports must replay-verify rather than compare witnesses.
        // Three writers on pairwise-distinct registers: every pair commutes,
        // so the reduction has real work to do.
        let exec = Executor::new(vec![
            ToyWriter::new(0, 1),
            ToyWriter::new(1, 2),
            ToyWriter::new(2, 3),
        ]);
        let config = SearchConfig {
            goal: SearchGoal::Covering,
            max_depth: 32,
            max_states: 1_000_000,
            ..SearchConfig::default()
        };
        let off = search(&exec, config);
        let on = search(
            &exec,
            SearchConfig {
                reduction: ReductionMode::SleepSets,
                ..config
            },
        );
        assert_eq!(off.stop, SearchStop::StateSpaceExhausted);
        assert_eq!(on.stop, SearchStop::StateSpaceExhausted);
        assert!(!off.reduction_applied && on.reduction_applied);
        assert_eq!(on.states_visited, off.states_visited);
        assert!(
            on.expansions < off.expansions,
            "sleep sets must prune expansions: {} !< {}",
            on.expansions,
            off.expansions
        );
        assert!(on.sleep_pruned > 0);
        assert_eq!(off.sleep_pruned, 0);
        let off_best = off.witness.expect("a covering must be found");
        let on_best = on.witness.expect("a covering must be found");
        assert_eq!(
            on_best.certificate.registers,
            off_best.certificate.registers
        );
        assert!(off.verified && on.verified);
    }

    #[test]
    fn reduced_search_is_thread_invariant() {
        // A symmetric same-register pair (dependent, mergeable orbit) plus
        // an independent writer: symmetry and sleep sets both engage, and
        // the merged report must stay byte-identical at any thread count.
        let exec = Executor::new(vec![
            ToyWriter::new(0, 7),
            ToyWriter::new(0, 7),
            ToyWriter::new(1, 9),
        ]);
        let config = SearchConfig {
            goal: SearchGoal::BlockWrite,
            max_depth: 32,
            max_states: 1_000_000,
            symmetry: SymmetryMode::ProcessIds,
            reduction: ReductionMode::SleepSets,
            ..SearchConfig::default()
        };
        let serial = search(&exec, config);
        assert!(serial.reduction_applied);
        for threads in [2, 8] {
            let parallel = search(&exec, SearchConfig { threads, ..config });
            assert_eq!(parallel.states_visited, serial.states_visited);
            assert_eq!(parallel.expansions, serial.expansions);
            assert_eq!(parallel.sleep_pruned, serial.sleep_pruned);
            assert_eq!(parallel.max_depth_reached, serial.max_depth_reached);
            assert_eq!(parallel.stop, serial.stop);
            let (a, b) = (&parallel.witness, &serial.witness);
            assert_eq!(
                a.as_ref().map(|w| (&w.schedule, &w.certificate)),
                b.as_ref().map(|w| (&w.schedule, &w.certificate)),
                "witness must be byte-identical at {threads} threads"
            );
        }
    }
}
