//! Witness goals and the block-write mechanics they are built from.
//!
//! The covering lower bound (Theorem 2) rests on one mechanical fact: if a
//! set `P` of processes is *poised* to write to a set `A` of locations (it
//! "covers" `A`), and another group `Q` runs a fragment that only writes
//! inside `A`, then releasing `P`'s pending writes (a *block write*) leaves
//! the shared memory in exactly the state it would have had if `Q`'s
//! fragment had never happened. This module provides those mechanics over
//! real executors — [`poised_write_location`], [`run_until_poised_outside`],
//! [`block_write`], [`obliterates`], [`splice_is_invisible`] — and, on top
//! of them, the [`WitnessGoal`] trait the adversary-search driver evaluates
//! per configuration: [`Covering`] (p processes poised to write p distinct
//! locations) and [`BlockWrite`] (a covering whose covered locations were
//! all written before, so releasing it obliterates recorded information),
//! composable with [`And`] / [`Or`].
//!
//! These primitives used to live in `sa-lowerbound`'s `blockwrite` module;
//! they moved here so the hand-built Theorem 2 constructions and the
//! machine search evaluate witnesses through the *same* code.

use sa_memory::Location;
use sa_model::{Automaton, ProcessId};
use sa_runtime::{Executor, SearchGoal};
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::hash::Hash;

/// The location `process` is poised to write, or `None` if it is halted, or
/// poised to a read, a scan or a local step.
///
/// Defined as the write cell of the poised op's
/// [footprint](sa_model::Op::footprint) — the same static analysis that
/// feeds the explorers' independence relation, so the lower-bound machinery
/// and the partial-order reduction can never disagree about what a step
/// writes.
pub fn poised_write_location<A>(executor: &Executor<A>, process: ProcessId) -> Option<Location>
where
    A: Automaton,
    A::Value: Clone + Eq + Debug,
{
    executor.poised(process)?.footprint().write_cell()
}

/// The locations covered by `processes` in the current configuration: the
/// pending-write targets of those that are poised to write.
pub fn covered_locations<A>(executor: &Executor<A>, processes: &[ProcessId]) -> BTreeSet<Location>
where
    A: Automaton,
    A::Value: Clone + Eq + Debug,
{
    processes
        .iter()
        .filter_map(|p| poised_write_location(executor, *p))
        .collect()
}

/// The outcome of [`run_until_poised_outside`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupRun {
    /// Some process of the group is poised to write to a location outside the
    /// covered set (and has **not** performed that write yet).
    PoisedOutside {
        /// The process about to write.
        process: ProcessId,
        /// The location it is about to write.
        location: Location,
        /// Steps executed before it became poised.
        steps: u64,
    },
    /// Every process of the group halted without ever being poised to write
    /// outside the covered set.
    Halted {
        /// Steps executed.
        steps: u64,
    },
    /// The step budget ran out first.
    Exhausted {
        /// Steps executed (equals the budget).
        steps: u64,
    },
}

/// Runs the processes of `group` (one at a time, in group order, exactly like
/// the fragments of the Theorem 2 construction) until one of them is poised
/// to write to a location **outside** `covered`, leaving it poised. Reads,
/// scans, local steps and writes *inside* `covered` are allowed to proceed.
pub fn run_until_poised_outside<A>(
    executor: &mut Executor<A>,
    group: &[ProcessId],
    covered: &BTreeSet<Location>,
    max_steps: u64,
) -> GroupRun
where
    A: Automaton,
    A::Value: Clone + Eq + Debug,
{
    let mut steps = 0;
    loop {
        // The next runnable process in group order.
        let Some(process) = group
            .iter()
            .copied()
            .find(|p| !executor.automaton(*p).is_halted())
        else {
            return GroupRun::Halted { steps };
        };
        if let Some(location) = poised_write_location(executor, process) {
            if !covered.contains(&location) {
                return GroupRun::PoisedOutside {
                    process,
                    location,
                    steps,
                };
            }
        }
        if steps >= max_steps {
            return GroupRun::Exhausted { steps };
        }
        executor.step(process);
        steps += 1;
    }
}

/// Performs a block write: every process of `writers` takes exactly one step,
/// which must be a pending write (the caller established the covering). The
/// set of locations written is returned.
///
/// # Panics
///
/// Panics if some writer is not poised to a write-like operation — that means
/// the covering was not established and the caller's adversary is buggy.
pub fn block_write<A>(executor: &mut Executor<A>, writers: &[ProcessId]) -> BTreeSet<Location>
where
    A: Automaton,
    A::Value: Clone + Eq + Debug,
{
    let mut written = BTreeSet::new();
    for process in writers {
        let location = poised_write_location(executor, *process)
            .unwrap_or_else(|| panic!("{process} is not poised to write; no covering established"));
        executor.step(*process);
        written.insert(location);
    }
    written
}

/// Checks the obliteration property at the current configuration: running the
/// fragment `fragment` (a schedule over non-covering processes) and then
/// releasing the block write of `coverers` leaves the shared memory in
/// exactly the same state as releasing the block write alone.
///
/// This is the step of the Theorem 2 proof that makes spliced fragments
/// invisible. It holds whenever the fragment writes only to locations covered
/// by `coverers`; it fails (returns `false`) as soon as the fragment touches
/// an uncovered location.
pub fn obliterates<A>(
    executor: &Executor<A>,
    coverers: &[ProcessId],
    fragment: &[ProcessId],
) -> bool
where
    A: Automaton + Clone,
    A::Value: Clone + Eq + Debug + Hash,
{
    // Branch 1: fragment, then block write.
    let mut with_fragment = executor.clone();
    for process in fragment {
        if !with_fragment.automaton(*process).is_halted() {
            with_fragment.step(*process);
        }
    }
    block_write(&mut with_fragment, coverers);

    // Branch 2: block write alone.
    let mut without_fragment = executor.clone();
    block_write(&mut without_fragment, coverers);

    with_fragment.memory().content_fingerprint() == without_fragment.memory().content_fingerprint()
}

/// Checks that an observer cannot tell whether the fragment was spliced in:
/// starting from the current configuration, run `fragment`, block-write the
/// coverers, then let `observer` run alone to completion — and compare its
/// decisions with the branch where the fragment never happened.
///
/// Returns `true` when the observer's decisions are identical in both
/// branches (the splice is invisible).
pub fn splice_is_invisible<A>(
    executor: &Executor<A>,
    coverers: &[ProcessId],
    fragment: &[ProcessId],
    observer: ProcessId,
    max_steps: u64,
) -> bool
where
    A: Automaton + Clone,
    A::Value: Clone + Eq + Debug + Hash,
{
    let run_observer = |mut exec: Executor<A>| {
        let mut steps = 0;
        while !exec.automaton(observer).is_halted() && steps < max_steps {
            exec.step(observer);
            steps += 1;
        }
        let decisions = exec.decisions().clone();
        (0u64..)
            .map_while(|i| decisions.decision_of(observer, i + 1).map(|v| (i + 1, v)))
            .collect::<Vec<_>>()
    };

    let mut with_fragment = executor.clone();
    for process in fragment {
        if !with_fragment.automaton(*process).is_halted() {
            with_fragment.step(*process);
        }
    }
    block_write(&mut with_fragment, coverers);

    let mut without_fragment = executor.clone();
    block_write(&mut without_fragment, coverers);

    run_observer(with_fragment) == run_observer(without_fragment)
}

/// One process of a covering: `process` is poised to write `location`.
///
/// A configuration's covering lists the *smallest* poised process per
/// covered location, ordered by location — a canonical choice, so equal
/// configurations always yield byte-equal coverings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoveringPair {
    /// The covering process.
    pub process: ProcessId,
    /// The pending-write target it covers.
    pub location: Location,
}

/// What a goal found in one configuration: the covering structure plus the
/// register counts the lower-bound argument charges.
///
/// `registers` — the bound-facing count — is the size of the union of the
/// locations *already written* and the locations *covered by pending
/// writes*: exactly the registers the Theorem 2 adversary has forced the
/// algorithm to commit, whether the information already landed or is about
/// to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GoalMeasure {
    /// The canonical covering: smallest poised process per covered location,
    /// ordered by location.
    pub covering: Vec<CoveringPair>,
    /// Distinct locations covered by pending writes (`covering.len()`).
    pub registers_covered: usize,
    /// Distinct locations written so far in the execution.
    pub registers_written: usize,
    /// `|written ∪ covered|` — the register count charged to the algorithm.
    pub registers: usize,
}

/// Measures the covering structure of a configuration: which locations are
/// covered by pending writes (and by whom, canonically), which were already
/// written, and the union the lower bound charges.
pub fn covering_measure<A>(executor: &Executor<A>) -> GoalMeasure
where
    A: Automaton,
    A::Value: Clone + Eq + Debug,
{
    let mut covering: Vec<CoveringPair> = Vec::new();
    // Ascending process order, first writer per location kept: the covering
    // is the smallest poised process id per covered location.
    for p in 0..executor.process_count() {
        let process = ProcessId(p);
        if let Some(location) = poised_write_location(executor, process) {
            if !covering.iter().any(|c| c.location == location) {
                covering.push(CoveringPair { process, location });
            }
        }
    }
    covering.sort_by_key(|c| c.location);
    let covered: BTreeSet<Location> = covering.iter().map(|c| c.location).collect();
    let written: BTreeSet<Location> = executor.memory().metrics().written_locations().collect();
    let registers = written.union(&covered).count();
    GoalMeasure {
        registers_covered: covered.len(),
        registers_written: written.len(),
        registers,
        covering,
    }
}

/// A witness structure the adversary-search driver hunts for, evaluated on
/// every first-visited configuration.
///
/// Implementations must be pure functions of the configuration (never of
/// discovery order or thread), so the search stays byte-identical at any
/// thread count.
pub trait WitnessGoal<A: Automaton>: Send + Sync
where
    A::Value: Clone + Eq + Debug,
{
    /// A short identifier for reports.
    fn label(&self) -> String;

    /// Evaluates the configuration; `Some(measure)` when the goal structure
    /// is present.
    fn evaluate(&self, executor: &Executor<A>) -> Option<GoalMeasure>;
}

/// The covering goal: a configuration where at least `registers` processes
/// are poised to write pairwise-distinct locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Covering {
    /// The minimum number of distinct covered locations to count as a hit.
    pub registers: usize,
}

impl<A> WitnessGoal<A> for Covering
where
    A: Automaton,
    A::Value: Clone + Eq + Debug,
{
    fn label(&self) -> String {
        format!("covering>={}", self.registers)
    }

    fn evaluate(&self, executor: &Executor<A>) -> Option<GoalMeasure> {
        let measure = covering_measure(executor);
        (measure.registers_covered >= self.registers.max(1)).then_some(measure)
    }
}

/// The block-write goal: a covering configuration whose covered locations
/// have **all** been written before, and whose pending writes actually
/// execute as a block write — so releasing them obliterates the recorded
/// information, the splice-invisibility step of Theorem 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockWrite;

impl<A> WitnessGoal<A> for BlockWrite
where
    A: Automaton + Clone,
    A::Value: Clone + Eq + Debug,
{
    fn label(&self) -> String {
        "block-write".to_string()
    }

    fn evaluate(&self, executor: &Executor<A>) -> Option<GoalMeasure> {
        let measure = covering_measure(executor);
        if measure.covering.is_empty() {
            return None;
        }
        let written: BTreeSet<Location> = executor.memory().metrics().written_locations().collect();
        if !measure
            .covering
            .iter()
            .all(|c| written.contains(&c.location))
        {
            return None;
        }
        // Release the block write on a clone: every coverer must perform
        // exactly its predicted pending write.
        let coverers: Vec<ProcessId> = measure.covering.iter().map(|c| c.process).collect();
        let covered: BTreeSet<Location> = measure.covering.iter().map(|c| c.location).collect();
        let mut released = executor.clone();
        let block_written = block_write(&mut released, &coverers);
        (block_written == covered).then_some(measure)
    }
}

/// Conjunction of two goals: hits when both hit, yielding the first goal's
/// measure (the second acts as a filter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct And<G, H>(pub G, pub H);

impl<A, G, H> WitnessGoal<A> for And<G, H>
where
    A: Automaton,
    A::Value: Clone + Eq + Debug,
    G: WitnessGoal<A>,
    H: WitnessGoal<A>,
{
    fn label(&self) -> String {
        format!("{}+{}", self.0.label(), self.1.label())
    }

    fn evaluate(&self, executor: &Executor<A>) -> Option<GoalMeasure> {
        let measure = self.0.evaluate(executor)?;
        self.1.evaluate(executor)?;
        Some(measure)
    }
}

/// Disjunction of two goals: the first goal's hit wins, otherwise the
/// second's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Or<G, H>(pub G, pub H);

impl<A, G, H> WitnessGoal<A> for Or<G, H>
where
    A: Automaton,
    A::Value: Clone + Eq + Debug,
    G: WitnessGoal<A>,
    H: WitnessGoal<A>,
{
    fn label(&self) -> String {
        format!("{}|{}", self.0.label(), self.1.label())
    }

    fn evaluate(&self, executor: &Executor<A>) -> Option<GoalMeasure> {
        self.0
            .evaluate(executor)
            .or_else(|| self.1.evaluate(executor))
    }
}

/// The concrete goal behind a [`SearchGoal`] selector — the single mapping
/// both the search driver and the replay verifier use, so a witness always
/// re-verifies under exactly the goal that found it.
pub fn goal_for<A>(goal: SearchGoal) -> Box<dyn WitnessGoal<A>>
where
    A: Automaton + Clone,
    A::Value: Clone + Eq + Debug,
{
    match goal {
        SearchGoal::Covering => Box::new(Covering { registers: 1 }),
        SearchGoal::BlockWrite => Box::new(BlockWrite),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_core::OneShotSetAgreement;
    use sa_model::Params;

    fn executor() -> Executor<OneShotSetAgreement> {
        let params = Params::new(3, 1, 1).unwrap();
        let automata: Vec<_> = (0..3)
            .map(|p| OneShotSetAgreement::new(params, ProcessId(p), 100 + p as u64))
            .collect();
        Executor::new(automata)
    }

    const COMPONENT_0: Location = Location::Component {
        snapshot: 0,
        component: 0,
    };

    #[test]
    fn covering_measure_is_canonical_smallest_process_per_location() {
        // Initially all three Figure 3 processes are poised to update
        // component 0; the canonical covering keeps only p0.
        let exec = executor();
        let measure = covering_measure(&exec);
        assert_eq!(
            measure.covering,
            vec![CoveringPair {
                process: ProcessId(0),
                location: COMPONENT_0,
            }]
        );
        assert_eq!(measure.registers_covered, 1);
        assert_eq!(measure.registers_written, 0);
        assert_eq!(measure.registers, 1);
    }

    #[test]
    fn covering_measure_unions_written_and_covered_locations() {
        // After p0's update, component 0 is both written and (by p1) still
        // covered: the union counts it once.
        let mut exec = executor();
        exec.step(ProcessId(0));
        let measure = covering_measure(&exec);
        assert_eq!(measure.registers_written, 1);
        assert_eq!(measure.registers_covered, 1);
        assert_eq!(measure.registers, 1);
        assert_eq!(measure.covering[0].process, ProcessId(1));
    }

    #[test]
    fn covering_goal_requires_the_requested_width() {
        let exec = executor();
        assert!(WitnessGoal::evaluate(&Covering { registers: 1 }, &exec).is_some());
        assert!(WitnessGoal::evaluate(&Covering { registers: 2 }, &exec).is_none());
        // A zero threshold still demands a non-empty covering.
        assert!(WitnessGoal::evaluate(&Covering { registers: 0 }, &exec).is_some());
    }

    #[test]
    fn block_write_goal_needs_covered_locations_already_written() {
        // Initially nothing has been written, so no covering can be a
        // block-write witness; after one update the surviving covering of
        // component 0 qualifies.
        let mut exec = executor();
        assert!(WitnessGoal::evaluate(&BlockWrite, &exec).is_none());
        exec.step(ProcessId(0));
        let measure = WitnessGoal::evaluate(&BlockWrite, &exec).unwrap();
        assert_eq!(measure.registers_covered, 1);
    }

    #[test]
    fn and_hits_only_when_both_goals_hit_and_keeps_the_first_measure() {
        let goal = And(Covering { registers: 1 }, BlockWrite);
        assert_eq!(
            WitnessGoal::<OneShotSetAgreement>::label(&goal),
            "covering>=1+block-write"
        );
        let mut exec = executor();
        assert!(goal.evaluate(&exec).is_none());
        exec.step(ProcessId(0));
        let measure = goal.evaluate(&exec).unwrap();
        assert_eq!(measure, covering_measure(&exec));
    }

    #[test]
    fn or_falls_through_to_the_second_goal() {
        let goal = Or(Covering { registers: 5 }, BlockWrite);
        assert_eq!(
            WitnessGoal::<OneShotSetAgreement>::label(&goal),
            "covering>=5|block-write"
        );
        let mut exec = executor();
        assert!(goal.evaluate(&exec).is_none());
        exec.step(ProcessId(0));
        assert!(goal.evaluate(&exec).is_some());
    }

    #[test]
    fn goal_for_maps_every_selector_to_its_evaluator() {
        assert_eq!(
            goal_for::<OneShotSetAgreement>(SearchGoal::Covering).label(),
            "covering>=1"
        );
        assert_eq!(
            goal_for::<OneShotSetAgreement>(SearchGoal::BlockWrite).label(),
            "block-write"
        );
    }
}
