//! The open-loop load generator: `rate` proposals per tick from a pool of
//! simulated clients, regardless of how fast the service keeps up.
//!
//! "Open-loop" is the property that makes the latency numbers honest: a
//! closed-loop generator (issue the next request only after the previous
//! answer) throttles itself when the service slows down, hiding queueing
//! delay. Here arrivals are a pure function of the tick counter, the
//! configured rate, and the seed — which also makes the whole arrival
//! schedule deterministic and independent of shard count.

use sa_runtime::ServeLoad;

/// SplitMix64: a tiny, high-quality mixing function for the seed-derived
/// value stream (same finalizer the sweep engine uses for seed derivation).
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic open-loop proposal source.
#[derive(Debug, Clone)]
pub struct LoadGenerator {
    clients: u64,
    rate: u64,
    load: ServeLoad,
    seed: u64,
    issued: u64,
}

impl LoadGenerator {
    /// A generator for `clients` simulated clients issuing `rate` proposals
    /// per tick, with values drawn according to `load`.
    ///
    /// # Panics
    ///
    /// Panics if `clients` or `rate` is 0.
    pub fn new(clients: usize, rate: u64, load: ServeLoad, seed: u64) -> Self {
        assert!(clients >= 1, "clients must be at least 1");
        assert!(rate >= 1, "rate must be at least 1");
        LoadGenerator {
            clients: clients as u64,
            rate,
            load,
            seed,
            issued: 0,
        }
    }

    /// The `(client, value)` pairs arriving during one tick. Clients take
    /// turns round-robin; values follow the configured [`ServeLoad`].
    pub fn tick(&mut self) -> Vec<(u64, u64)> {
        let mut arrivals = Vec::with_capacity(self.rate as usize);
        for _ in 0..self.rate {
            let client = self.issued % self.clients;
            let value = match self.load {
                ServeLoad::Distinct => self.issued,
                ServeLoad::Uniform(value) => value,
                ServeLoad::Random { universe } => {
                    splitmix(self.seed ^ self.issued) % universe.max(1)
                }
            };
            arrivals.push((client, value));
            self.issued += 1;
        }
        arrivals
    }

    /// Proposals issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_issues_rate_proposals_per_tick_round_robin() {
        let mut generator = LoadGenerator::new(3, 5, ServeLoad::Distinct, 0);
        let first = generator.tick();
        assert_eq!(first.len(), 5);
        assert_eq!(
            first.iter().map(|(c, _)| *c).collect::<Vec<_>>(),
            vec![0, 1, 2, 0, 1]
        );
        let second = generator.tick();
        assert_eq!(second[0].0, 2, "round-robin continues across ticks");
        assert_eq!(generator.issued(), 10);
        // Distinct values are globally unique.
        let values: Vec<u64> = first.iter().chain(&second).map(|(_, v)| *v).collect();
        assert_eq!(values, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn value_streams_are_deterministic_in_the_seed() {
        let run = |seed| {
            let mut g = LoadGenerator::new(4, 8, ServeLoad::Random { universe: 50 }, seed);
            (0..3).flat_map(|_| g.tick()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
        assert!(run(7).iter().all(|(_, v)| *v < 50));
        let mut uniform = LoadGenerator::new(2, 4, ServeLoad::Uniform(9), 0);
        assert!(uniform.tick().iter().all(|(_, v)| *v == 9));
    }
}
