//! The service proper: a global deterministic sequencer feeding a sharded
//! execution pool, with a graceful-drain shutdown path.
//!
//! # Architecture
//!
//! ```text
//!  load generator ──► batcher/sequencer ──► per-shard MPSC queues
//!  (open loop,        (cuts batches,        │        │        │
//!   rate/tick)         numbers instances)   ▼        ▼        ▼
//!                                        shard 0  shard 1  shard S-1
//!                                        (one Figure 4 instance
//!                                         per batch, executed on the
//!                                         harness-free AgreementInstance
//!                                         driver from sa-core)
//!                                           │        │        │
//!                                           └────────┴────────┘
//!                                              results channel
//!                                        (reassembled by instance id,
//!                                         per-shard histograms merged)
//! ```
//!
//! # Determinism
//!
//! Under [`ServeClock::Virtual`] the entire report is a pure function of
//! the configuration: arrivals are tick-driven, batch composition depends
//! only on arrival order and `batch_max`, instance ids are assigned by the
//! global sequencer *before* sharding, each batch executes under a fixed
//! deterministic schedule (bounded round-robin contention, then solo
//! completion — guaranteed to terminate by m-obstruction-freedom), and
//! results are reassembled by instance id. The shard count decides only
//! *where* a batch executes, never what it contains or decides, so reports
//! are bit-for-bit identical at any shard count. Under
//! [`ServeClock::Wall`], latencies come from `std::time::Instant` and no
//! reproducibility is claimed — but decided values are still shard-independent.

use crate::batcher::{Batch, Batcher, Proposal};
use crate::histogram::LatencyHistogram;
use crate::loadgen::LoadGenerator;
use sa_core::{AgreementInstance, RepeatedSetAgreement};
use sa_model::{Params, ProcessId};
use sa_runtime::{ServeClock, ServeOptions};
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

/// Round-robin contention steps per participant before the solo
/// completion phase of a batch (see [`execute_batch`]).
const CONTENTION_FACTOR: u64 = 8;

/// What to run: the agreement cell plus the service knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Obstruction degree `m` of each batch's agreement instance.
    pub m: usize,
    /// Agreement degree `k`: at most `k` distinct values per batch.
    pub k: usize,
    /// Service and load-generator knobs.
    pub options: ServeOptions,
    /// Step budget per batch (contention plus every solo completion).
    pub max_steps_per_batch: u64,
}

impl ServeConfig {
    /// A config for `m`-obstruction-free `k`-set agreement batches with
    /// default [`ServeOptions`] and a generous per-batch step budget.
    pub fn new(m: usize, k: usize) -> Self {
        ServeConfig {
            m,
            k,
            options: ServeOptions::default(),
            max_steps_per_batch: 1_000_000,
        }
    }
}

/// One line of the decided-value log: `client`'s proposal in `instance`
/// was answered with `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecidedEntry {
    /// The agreement instance (batch) the proposal participated in.
    pub instance: u64,
    /// The client that proposed.
    pub client: u64,
    /// The value the service decided for this client.
    pub value: u64,
}

/// Everything a service run produced: counters, safety accounting, the
/// merged latency histogram and the full decided-value log.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Proposals issued by the load generator.
    pub proposals: u64,
    /// Batches cut (= agreement instances executed).
    pub batches: u64,
    /// Algorithm steps executed across all batches.
    pub steps: u64,
    /// Proposals whose decided value was outside the batch's inputs.
    pub validity_violations: u64,
    /// Batches deciding more than `k` distinct values.
    pub agreement_violations: u64,
    /// Proposals whose process failed to decide within the step budget.
    pub unfinished: u64,
    /// The largest number of distinct outputs any batch decided.
    pub distinct_outputs_max: usize,
    /// Per-proposal latency, merged across the shard histograms.
    pub histogram: LatencyHistogram,
    /// Run duration in microseconds (virtual: `duration_ticks * 1000`).
    pub duration_us: u64,
    /// The shard count the service ran with.
    pub shards: usize,
    /// The clock that drove the run.
    pub clock: ServeClock,
    /// The decided-value log, sorted by instance id then arrival order.
    pub decided: Vec<DecidedEntry>,
    /// `true` if the drain lost nothing: every accepted proposal was
    /// batched, executed and answered (or counted as unfinished).
    pub drained: bool,
}

impl ServeReport {
    /// Safety violations: validity plus agreement.
    pub fn safety_violations(&self) -> u64 {
        self.validity_violations + self.agreement_violations
    }

    /// Sustained throughput in proposals per second.
    pub fn ops_per_sec(&self) -> u64 {
        self.proposals
            .saturating_mul(1_000_000)
            .checked_div(self.duration_us)
            .unwrap_or(0)
    }

    /// Algorithm steps per second.
    pub fn steps_per_sec(&self) -> u64 {
        self.steps
            .saturating_mul(1_000_000)
            .checked_div(self.duration_us)
            .unwrap_or(0)
    }

    /// An FNV-1a fingerprint of the decided-value log, for cheap
    /// equality assertions across runs (e.g. CI's shard-count compare).
    pub fn decided_fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        let mut eat = |word: u64| {
            for byte in word.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for entry in &self.decided {
            eat(entry.instance);
            eat(entry.client);
            eat(entry.value);
        }
        hash
    }
}

/// What a worker sends back per batch.
struct BatchResult {
    instance: u64,
    steps: u64,
    distinct: usize,
    validity_violations: u64,
    unfinished: u64,
    /// `(client, decided value)` in the batch's arrival order.
    decided: Vec<(u64, u64)>,
}

/// The current stamp in the unit of the active clock: the tick counter
/// under the virtual clock, elapsed microseconds under the wall clock.
fn stamp(clock: ServeClock, tick: u64, epoch: Instant) -> u64 {
    match clock {
        ServeClock::Virtual => tick,
        ServeClock::Wall => epoch.elapsed().as_micros() as u64,
    }
}

/// Executes one batch as one Figure 4 instance per participating process,
/// recording per-proposal latencies into the shard's histogram.
///
/// Batches of `b ≤ k` proposals take the trivial path — each client is
/// answered with its own value, which satisfies k-set agreement (at most
/// `b ≤ k` distinct outputs) and validity at zero shared-memory cost.
/// Larger batches run `Params::new(b, m, k)` (valid since `b > k ≥ m`)
/// under bounded round-robin contention followed by solo completion, a
/// deterministic schedule that m-obstruction-freedom guarantees to
/// terminate.
fn execute_batch(
    batch: &Batch,
    m: usize,
    k: usize,
    max_steps: u64,
    clock: ServeClock,
    epoch: Instant,
    histogram: &mut LatencyHistogram,
) -> BatchResult {
    let b = batch.proposals.len();
    let mut decided: Vec<(u64, Option<u64>)> = Vec::with_capacity(b);
    let mut steps = 0;
    if b <= k {
        for proposal in &batch.proposals {
            decided.push((proposal.client, Some(proposal.value)));
        }
    } else {
        let params = Params::new(b, m.min(k), k).expect("b > k >= m ensures a valid cell");
        let automata: Vec<RepeatedSetAgreement> = batch
            .proposals
            .iter()
            .enumerate()
            .map(|(i, proposal)| {
                RepeatedSetAgreement::new(params, ProcessId(i), vec![proposal.value])
                    .expect("participant ids are in range and inputs non-empty")
            })
            .collect();
        let mut instance = AgreementInstance::new(automata);
        instance.run_round_robin(b as u64 * CONTENTION_FACTOR);
        for (i, proposal) in batch.proposals.iter().enumerate() {
            let halted =
                instance.run_solo(ProcessId(i), max_steps.saturating_sub(instance.steps()));
            let value = if halted {
                instance.decisions().decision_of(ProcessId(i), 1)
            } else {
                None
            };
            decided.push((proposal.client, value));
        }
        steps = instance.steps();
    }

    let inputs: Vec<u64> = batch.proposals.iter().map(|p| p.value).collect();
    let mut outputs: Vec<u64> = Vec::with_capacity(b);
    let mut validity_violations = 0;
    let mut unfinished = 0;
    let mut answered = Vec::with_capacity(b);
    for ((client, value), proposal) in decided.into_iter().zip(&batch.proposals) {
        let Some(value) = value else {
            unfinished += 1;
            continue;
        };
        if !inputs.contains(&value) {
            validity_violations += 1;
        }
        if !outputs.contains(&value) {
            outputs.push(value);
        }
        let latency = match clock {
            // One tick models a millisecond; one algorithm step a
            // microsecond of execution time.
            ServeClock::Virtual => (batch.flushed_at - proposal.arrival) * 1000 + steps,
            ServeClock::Wall => stamp(clock, 0, epoch).saturating_sub(proposal.arrival),
        };
        histogram.record(latency);
        answered.push((client, value));
    }
    BatchResult {
        instance: batch.instance,
        steps,
        distinct: outputs.len(),
        validity_violations,
        unfinished,
        decided: answered,
    }
}

/// One shard: drains its batch queue until the sequencer hangs up, then
/// returns its latency histogram for the final merge.
fn worker(
    batches: mpsc::Receiver<Batch>,
    results: mpsc::Sender<BatchResult>,
    m: usize,
    k: usize,
    max_steps: u64,
    clock: ServeClock,
    epoch: Instant,
) -> LatencyHistogram {
    let mut histogram = LatencyHistogram::new();
    while let Ok(batch) = batches.recv() {
        let result = execute_batch(&batch, m, k, max_steps, clock, epoch, &mut histogram);
        if results.send(result).is_err() {
            break;
        }
    }
    histogram
}

/// Runs the service to completion: `duration_ticks` of open-loop load,
/// then a graceful drain (flush the open batch, close the shard queues,
/// let every worker finish its backlog, merge the shard histograms).
///
/// # Panics
///
/// Panics if the config is degenerate: `m` of 0, `m > k`, or any of
/// `shards`, `batch_max`, `clients`, `rate`, `duration_ticks` being 0.
pub fn serve(config: &ServeConfig) -> ServeReport {
    let options = config.options;
    assert!(config.m >= 1 && config.m <= config.k, "need 1 <= m <= k");
    assert!(options.shards >= 1, "shards must be at least 1");
    assert!(
        options.duration_ticks >= 1,
        "duration must be at least 1 tick"
    );
    let clock = options.clock;
    let epoch = Instant::now();
    let mut generator =
        LoadGenerator::new(options.clients, options.rate, options.load, options.seed);
    let mut batcher = Batcher::new(options.batch_max);

    let mut results: BTreeMap<u64, BatchResult> = BTreeMap::new();
    let mut histogram = LatencyHistogram::new();
    let (result_tx, result_rx) = mpsc::channel::<BatchResult>();
    thread::scope(|s| {
        let mut queues = Vec::with_capacity(options.shards);
        let mut handles = Vec::with_capacity(options.shards);
        for _ in 0..options.shards {
            let (tx, rx) = mpsc::channel::<Batch>();
            queues.push(tx);
            let results = result_tx.clone();
            let (m, k, max_steps) = (config.m, config.k, config.max_steps_per_batch);
            handles.push(s.spawn(move || worker(rx, results, m, k, max_steps, clock, epoch)));
        }
        drop(result_tx);

        let dispatch = |batch: Batch| {
            let shard = (batch.instance % queues.len() as u64) as usize;
            queues[shard]
                .send(batch)
                .expect("workers outlive the dispatch loop");
        };
        for tick in 0..options.duration_ticks {
            let arrival = stamp(clock, tick, epoch);
            for (client, value) in generator.tick() {
                let proposal = Proposal {
                    client,
                    value,
                    arrival,
                };
                if let Some(batch) = batcher.push(proposal, arrival) {
                    dispatch(batch);
                }
            }
            // Linger: the open batch is flushed at every tick boundary, so
            // no proposal waits longer than one tick to be sequenced.
            if let Some(batch) = batcher.flush(stamp(clock, tick, epoch)) {
                dispatch(batch);
            }
            if clock == ServeClock::Wall {
                let next = Duration::from_millis(tick + 1);
                thread::sleep(next.saturating_sub(epoch.elapsed()));
            }
        }
        // Graceful drain: flush whatever is still pending, hang up the
        // shard queues, and let every worker finish its backlog.
        if let Some(batch) = batcher.flush(stamp(clock, options.duration_ticks, epoch)) {
            dispatch(batch);
        }
        drop(queues);
        for result in result_rx.iter() {
            results.insert(result.instance, result);
        }
        for handle in handles {
            let shard_histogram = handle.join().expect("a shard worker panicked");
            histogram.merge(&shard_histogram);
        }
    });

    let duration_us = match clock {
        ServeClock::Virtual => options.duration_ticks * 1000,
        ServeClock::Wall => epoch.elapsed().as_micros() as u64,
    };
    let mut report = ServeReport {
        proposals: generator.issued(),
        batches: batcher.batches(),
        steps: 0,
        validity_violations: 0,
        agreement_violations: 0,
        unfinished: 0,
        distinct_outputs_max: 0,
        histogram,
        duration_us,
        shards: options.shards,
        clock,
        decided: Vec::new(),
        drained: false,
    };
    let mut answered = 0u64;
    for (instance, result) in &results {
        report.steps += result.steps;
        report.validity_violations += result.validity_violations;
        if result.distinct > config.k {
            report.agreement_violations += 1;
        }
        report.unfinished += result.unfinished;
        report.distinct_outputs_max = report.distinct_outputs_max.max(result.distinct);
        answered += result.decided.len() as u64;
        for &(client, value) in &result.decided {
            report.decided.push(DecidedEntry {
                instance: *instance,
                client,
                value,
            });
        }
    }
    report.drained = batcher.pending() == 0
        && batcher.accepted() == batcher.batched()
        && answered + report.unfinished == report.proposals
        && results.len() as u64 == report.batches;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_runtime::ServeLoad;

    fn config(m: usize, k: usize, options: ServeOptions) -> ServeConfig {
        ServeConfig {
            m,
            k,
            options,
            max_steps_per_batch: 1_000_000,
        }
    }

    #[test]
    fn a_virtual_time_run_is_safe_drained_and_deterministic() {
        let options = ServeOptions {
            shards: 2,
            batch_max: 5,
            clients: 16,
            rate: 7,
            duration_ticks: 40,
            clock: ServeClock::Virtual,
            load: ServeLoad::Distinct,
            seed: 3,
        };
        let report = serve(&config(2, 2, options));
        assert_eq!(report.proposals, 280);
        assert_eq!(report.batches, 80, "7/tick = one 5-cut plus one 2-flush");
        assert!(report.drained);
        assert_eq!(report.safety_violations(), 0);
        assert_eq!(report.unfinished, 0);
        assert!(report.distinct_outputs_max <= 2);
        assert_eq!(report.histogram.count(), 280);
        assert_eq!(report.decided.len(), 280);
        assert_eq!(report.duration_us, 40_000);
        assert!(report.ops_per_sec() > 0);
        let again = serve(&config(2, 2, options));
        assert_eq!(report.decided, again.decided);
        assert_eq!(report.decided_fingerprint(), again.decided_fingerprint());
        assert_eq!(report.histogram.summary(), again.histogram.summary());
    }

    #[test]
    fn decided_values_are_identical_at_any_shard_count() {
        let run = |shards| {
            serve(&config(
                1,
                2,
                ServeOptions {
                    shards,
                    batch_max: 6,
                    clients: 10,
                    rate: 9,
                    duration_ticks: 25,
                    clock: ServeClock::Virtual,
                    load: ServeLoad::Random { universe: 40 },
                    seed: 11,
                },
            ))
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.decided, four.decided);
        assert_eq!(one.steps, four.steps);
        assert_eq!(one.batches, four.batches);
        assert_eq!(one.histogram.summary(), four.histogram.summary());
        assert_eq!(one.decided_fingerprint(), four.decided_fingerprint());
        assert_eq!(one.safety_violations(), 0);
        assert_ne!(one.shards, four.shards, "only the shard count differs");
    }

    #[test]
    fn tiny_batches_take_the_trivial_path_and_keep_validity() {
        // rate 1 with batch_max 4: every tick flushes a singleton batch,
        // b = 1 <= k, so each client is answered its own value in 0 steps.
        let report = serve(&config(
            1,
            2,
            ServeOptions {
                shards: 1,
                batch_max: 4,
                clients: 3,
                rate: 1,
                duration_ticks: 12,
                clock: ServeClock::Virtual,
                load: ServeLoad::Distinct,
                seed: 0,
            },
        ));
        assert_eq!(report.batches, 12);
        assert_eq!(report.steps, 0);
        assert_eq!(report.safety_violations(), 0);
        assert_eq!(report.distinct_outputs_max, 1);
        for (i, entry) in report.decided.iter().enumerate() {
            assert_eq!(entry.value, i as u64, "distinct load answers itself");
        }
    }

    #[test]
    fn uniform_load_decides_one_value_per_batch() {
        let report = serve(&config(
            2,
            3,
            ServeOptions {
                shards: 3,
                batch_max: 8,
                clients: 8,
                rate: 8,
                duration_ticks: 10,
                clock: ServeClock::Virtual,
                load: ServeLoad::Uniform(77),
                seed: 0,
            },
        ));
        assert_eq!(report.distinct_outputs_max, 1);
        assert!(report.decided.iter().all(|e| e.value == 77));
        assert_eq!(report.safety_violations(), 0);
        assert!(report.drained);
    }

    #[test]
    fn wall_clock_runs_complete_and_drain() {
        let report = serve(&config(
            1,
            1,
            ServeOptions {
                shards: 2,
                batch_max: 3,
                clients: 4,
                rate: 4,
                duration_ticks: 5,
                clock: ServeClock::Wall,
                load: ServeLoad::Distinct,
                seed: 0,
            },
        ));
        assert_eq!(report.proposals, 20);
        assert!(report.drained);
        assert_eq!(report.safety_violations(), 0);
        assert!(report.duration_us >= 5_000, "five 1ms ticks elapsed");
        assert_eq!(report.clock, ServeClock::Wall);
    }
}
