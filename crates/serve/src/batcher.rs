//! The global sequencer/batcher: turns a stream of proposals into numbered
//! agreement instances.
//!
//! Batching is **shard-independent by construction**: a batch is cut purely
//! by arrival order and the `batch_max` cutoff (plus the end-of-tick and
//! drain flushes the service issues), and instance ids are assigned
//! sequentially at cut time. Which worker thread later *executes* a batch
//! is decided downstream (`instance % shards`), so changing the shard count
//! can never change batch composition — the keystone of the service's
//! determinism guarantee under the virtual clock.

/// One in-flight `propose(client, value)` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Proposal {
    /// The simulated client issuing the proposal.
    pub client: u64,
    /// The proposed value.
    pub value: u64,
    /// Arrival stamp: a tick under the virtual clock, microseconds since
    /// service start under the wall clock.
    pub arrival: u64,
}

/// A cut batch: one repeated-agreement instance with one participating
/// process per proposal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// The sequentially assigned instance id (starting at 0).
    pub instance: u64,
    /// The proposals participating in this instance, in arrival order.
    pub proposals: Vec<Proposal>,
    /// Flush stamp (same unit as [`Proposal::arrival`]).
    pub flushed_at: u64,
}

/// Accumulates proposals and cuts [`Batch`]es at the `batch_max` cutoff or
/// on an explicit flush. Tracks accepted vs batched counts so a drain can
/// assert that no proposal was lost.
#[derive(Debug, Clone)]
pub struct Batcher {
    batch_max: usize,
    pending: Vec<Proposal>,
    next_instance: u64,
    accepted: u64,
    batched: u64,
}

impl Batcher {
    /// A batcher cutting batches of at most `batch_max` proposals.
    ///
    /// # Panics
    ///
    /// Panics if `batch_max` is 0.
    pub fn new(batch_max: usize) -> Self {
        assert!(batch_max >= 1, "batch_max must be at least 1");
        Batcher {
            batch_max,
            pending: Vec::with_capacity(batch_max),
            next_instance: 0,
            accepted: 0,
            batched: 0,
        }
    }

    /// Accepts one proposal; returns a cut batch if this proposal filled it.
    pub fn push(&mut self, proposal: Proposal, now: u64) -> Option<Batch> {
        self.pending.push(proposal);
        self.accepted += 1;
        if self.pending.len() >= self.batch_max {
            self.cut(now)
        } else {
            None
        }
    }

    /// Flushes the open batch, if any (end of tick, or drain on shutdown).
    pub fn flush(&mut self, now: u64) -> Option<Batch> {
        self.cut(now)
    }

    fn cut(&mut self, now: u64) -> Option<Batch> {
        if self.pending.is_empty() {
            return None;
        }
        let proposals = std::mem::replace(&mut self.pending, Vec::with_capacity(self.batch_max));
        self.batched += proposals.len() as u64;
        let instance = self.next_instance;
        self.next_instance += 1;
        Some(Batch {
            instance,
            proposals,
            flushed_at: now,
        })
    }

    /// Proposals accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Proposals handed out in cut batches so far.
    pub fn batched(&self) -> u64 {
        self.batched
    }

    /// Proposals currently waiting in the open batch.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Batches cut so far (also the next instance id to be assigned).
    pub fn batches(&self) -> u64 {
        self.next_instance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proposal(i: u64) -> Proposal {
        Proposal {
            client: i % 4,
            value: 100 + i,
            arrival: i,
        }
    }

    #[test]
    fn batch_max_cuts_exactly_at_the_cutoff() {
        let mut batcher = Batcher::new(3);
        assert!(batcher.push(proposal(0), 0).is_none());
        assert!(batcher.push(proposal(1), 0).is_none());
        let batch = batcher.push(proposal(2), 0).expect("third proposal cuts");
        assert_eq!(batch.instance, 0);
        assert_eq!(batch.proposals.len(), 3);
        assert_eq!(
            batch.proposals.iter().map(|p| p.value).collect::<Vec<_>>(),
            vec![100, 101, 102],
            "proposals keep arrival order"
        );
        assert_eq!(batcher.pending(), 0);
        // The next cut gets the next sequential instance id.
        for i in 3..5 {
            assert!(batcher.push(proposal(i), 1).is_none());
        }
        let batch = batcher.push(proposal(5), 1).unwrap();
        assert_eq!(batch.instance, 1);
        assert_eq!(batch.flushed_at, 1);
    }

    #[test]
    fn batch_max_of_one_cuts_every_proposal() {
        let mut batcher = Batcher::new(1);
        for i in 0..4 {
            let batch = batcher.push(proposal(i), i).expect("every push cuts");
            assert_eq!(batch.instance, i);
            assert_eq!(batch.proposals.len(), 1);
        }
    }

    #[test]
    fn flush_drains_the_open_batch_and_empty_flushes_are_noops() {
        let mut batcher = Batcher::new(10);
        assert!(batcher.flush(0).is_none(), "nothing pending");
        batcher.push(proposal(0), 0);
        batcher.push(proposal(1), 0);
        let batch = batcher.flush(7).expect("partial batch drains");
        assert_eq!(batch.proposals.len(), 2);
        assert_eq!(batch.flushed_at, 7);
        assert!(batcher.flush(8).is_none(), "already drained");
    }

    #[test]
    fn no_proposal_is_lost_across_cuts_and_drain() {
        let mut batcher = Batcher::new(4);
        let mut seen = Vec::new();
        for i in 0..23 {
            if let Some(batch) = batcher.push(proposal(i), i / 4) {
                seen.extend(batch.proposals);
            }
        }
        if let Some(batch) = batcher.flush(99) {
            seen.extend(batch.proposals);
        }
        assert_eq!(batcher.accepted(), 23);
        assert_eq!(batcher.batched(), 23);
        assert_eq!(batcher.pending(), 0);
        assert_eq!(seen.len(), 23);
        let values: Vec<u64> = seen.iter().map(|p| p.value).collect();
        assert_eq!(values, (100..123).collect::<Vec<_>>(), "order preserved");
        assert_eq!(batcher.batches(), 6, "ceil(23 / 4) batches cut");
    }

    #[test]
    #[should_panic(expected = "batch_max must be at least 1")]
    fn zero_batch_max_is_rejected() {
        Batcher::new(0);
    }
}
