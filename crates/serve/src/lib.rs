//! **sa-serve** — set agreement as a service.
//!
//! The paper motivates *repeated* k-set agreement as the backbone of
//! replicated services (Herlihy's universal construction: agree, round
//! after round, on what to apply next). This crate is that story made
//! executable at service scale: a long-running process that accepts
//! `propose(client, value)` calls, batches concurrent proposals into
//! repeated-agreement instances — one batch is one instance of the
//! Figure 4 automaton per participating process — and answers every client
//! with its decided value and instance id.
//!
//! The pieces, each its own module:
//!
//! * [`Batcher`] — the global sequencer: cuts arrival-ordered batches at
//!   the `batch_max` cutoff and numbers them with sequential instance ids,
//!   *before* any sharding decision, so batch composition is independent of
//!   the shard count.
//! * [`LoadGenerator`] — an open-loop driver: `rate` proposals per tick
//!   from a pool of simulated clients, deterministic in the seed.
//! * [`LatencyHistogram`] — HDR-style fixed-memory latency recording with
//!   p50/p90/p99/p999 estimation and exact cross-shard merging.
//! * [`serve`] — the service loop: batches dispatch to `shards` worker
//!   threads over per-shard MPSC queues (`instance % shards`), each batch
//!   executes on the harness-free [`sa_core::AgreementInstance`] driver,
//!   and a graceful drain flushes, hangs up, joins and merges.
//!
//! Executions are driven either directly ([`serve`] with a
//! [`ServeConfig`]) or through the workspace's unified executor surface
//! (`Backend::Serve(ServeOptions)` in the facade crate). Under the virtual
//! clock the full report — decided values, latencies, throughput — is
//! bit-for-bit reproducible at any shard count; see [`service`](self) for
//! the argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batcher;
mod histogram;
mod loadgen;
mod service;

pub use batcher::{Batch, Batcher, Proposal};
pub use histogram::LatencyHistogram;
pub use loadgen::LoadGenerator;
pub use sa_runtime::{ServeClock, ServeLoad, ServeOptions};
pub use service::{serve, DecidedEntry, ServeConfig, ServeReport};
