//! An HDR-style latency histogram: fixed memory, bounded relative error,
//! mergeable across shards.
//!
//! Values (microseconds) are binned into power-of-two tiers of 32 linear
//! sub-buckets each: values below 64 are recorded exactly, larger values
//! with a relative error below 1/32. The whole histogram is ~2k buckets of
//! `u64` regardless of how many samples are recorded, and two histograms
//! recorded on different shards merge by adding counts — the merge of the
//! shard histograms equals the histogram of the combined sample stream.

/// log2 of the linear resolution: 32 sub-buckets per power-of-two tier.
const SUB_BITS: u32 = 5;
/// Sub-buckets per tier.
const SUB: u64 = 1 << SUB_BITS;
/// Total buckets: values up to `u64::MAX` land in tier 58.
const BUCKETS: usize = ((64 - SUB_BITS) as usize + 1) * SUB as usize;

/// The bucket index of `value`.
fn bucket_of(value: u64) -> usize {
    if value < 2 * SUB {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros();
        let tier = (msb - SUB_BITS) as u64;
        let within = (value >> tier) - SUB;
        ((tier + 1) * SUB + within) as usize
    }
}

/// The smallest value mapping to bucket `index`, and the bucket's width.
fn bucket_range(index: usize) -> (u64, u64) {
    let index = index as u64;
    if index < 2 * SUB {
        (index, 1)
    } else {
        let tier = index / SUB - 1;
        let within = index % SUB;
        ((SUB + within) << tier, 1 << tier)
    }
}

/// A fixed-size latency histogram with percentile estimation.
///
/// ```
/// use sa_serve::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for us in 1..=100 {
///     h.record(us);
/// }
/// assert_eq!(h.count(), 100);
/// assert_eq!(h.percentile(50.0), 50);
/// assert!(h.percentile(99.0) >= 99);
/// ```
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one latency sample (in microseconds).
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// The number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The smallest recorded sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// The largest recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The mean of the recorded samples, rounded down (0 if empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / u128::from(self.count)) as u64
        }
    }

    /// An estimate of the `p`-th percentile (0 < p ≤ 100), interpolated
    /// linearly inside the bucket holding the target rank and clamped to
    /// the observed `[min, max]` range. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let target = target.min(self.count);
        let mut cumulative = 0u64;
        for (index, &bucket_count) in self.counts.iter().enumerate() {
            if bucket_count == 0 {
                continue;
            }
            if cumulative + bucket_count >= target {
                let (floor, width) = bucket_range(index);
                // Zero-based rank within the bucket, spread uniformly over
                // the bucket's value range: exact (width-1) buckets always
                // report their exact value.
                let into = (target - cumulative - 1) as f64 / bucket_count as f64;
                let estimate = floor + (into * width as f64).floor() as u64;
                return estimate.clamp(self.min(), self.max);
            }
            cumulative += bucket_count;
        }
        self.max
    }

    /// Adds every sample of `other` into this histogram (shard merge).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The standard percentile summary, as `(p50, p90, p99, p999)`.
    pub fn summary(&self) -> (u64, u64, u64, u64) {
        (
            self.percentile(50.0),
            self.percentile(90.0),
            self.percentile(99.0),
            self.percentile(99.9),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_recorded_exactly() {
        // One bucket per value below 2 * SUB: boundaries at 0, 63.
        for value in [0u64, 1, 31, 32, 63] {
            assert_eq!(bucket_of(value), value as usize);
            let (floor, width) = bucket_range(bucket_of(value));
            assert_eq!((floor, width), (value, 1));
        }
        let mut h = LatencyHistogram::new();
        h.record(63);
        assert_eq!(h.percentile(50.0), 63);
        assert_eq!((h.min(), h.max()), (63, 63));
    }

    #[test]
    fn bucket_boundaries_align_with_power_of_two_tiers() {
        // 64 opens the first coarse tier (width 2): 64 and 65 share a
        // bucket, 66 starts the next.
        assert_eq!(bucket_of(63) + 1, bucket_of(64));
        assert_eq!(bucket_of(64), bucket_of(65));
        assert_eq!(bucket_of(65) + 1, bucket_of(66));
        // Tier boundaries: 128 opens width-4 buckets.
        assert_eq!(bucket_of(127) + 1, bucket_of(128));
        assert_eq!(bucket_of(128), bucket_of(131));
        assert_ne!(bucket_of(131), bucket_of(132));
        // Floors and widths reconstruct the value range.
        assert_eq!(bucket_range(bucket_of(64)), (64, 2));
        assert_eq!(bucket_range(bucket_of(128)), (128, 4));
        // Every representable value maps inside its own bucket range, and
        // buckets tile contiguously across tier boundaries.
        for value in (0..4096u64).chain([u64::MAX / 2, u64::MAX]) {
            let (floor, width) = bucket_range(bucket_of(value));
            assert!(floor <= value && value - floor < width, "value {value}");
        }
        assert!(bucket_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn relative_error_is_bounded_by_the_sub_bucket_resolution() {
        let mut h = LatencyHistogram::new();
        for value in [100u64, 1000, 10_000, 100_000, 1_000_000] {
            h = LatencyHistogram::new();
            h.record(value);
            let got = h.percentile(50.0);
            let err = got.abs_diff(value) as f64 / value as f64;
            assert!(err <= 1.0 / SUB as f64, "value {value} estimated {got}");
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn percentiles_interpolate_within_a_bucket() {
        // 100 exact samples 1..=100: every percentile is the exact rank.
        let mut h = LatencyHistogram::new();
        for us in 1..=100 {
            h.record(us);
        }
        assert_eq!(h.percentile(1.0), 1);
        assert_eq!(h.percentile(50.0), 50);
        assert_eq!(h.percentile(90.0), 90);
        assert_eq!(h.percentile(100.0), 100);
        assert_eq!(h.mean(), 50);
        // All samples in one coarse bucket: interpolation moves with p but
        // never leaves the observed range.
        let mut coarse = LatencyHistogram::new();
        for _ in 0..10 {
            coarse.record(1000);
        }
        assert!(coarse.percentile(10.0) <= coarse.percentile(99.0));
        for p in [10.0, 50.0, 99.0] {
            let got = coarse.percentile(p);
            assert_eq!(got, 1000, "p{p} left the observed range: {got}");
        }
    }

    #[test]
    fn empty_histograms_report_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!((h.min(), h.max(), h.mean()), (0, 0, 0));
    }

    #[test]
    fn merging_shard_histograms_equals_recording_the_union() {
        let samples_a = [3u64, 70, 500, 500, 12_000];
        let samples_b = [1u64, 64, 65, 9_999, 1_000_000];
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut union = LatencyHistogram::new();
        for &s in &samples_a {
            a.record(s);
            union.record(s);
        }
        for &s in &samples_b {
            b.record(s);
            union.record(s);
        }
        a.merge(&b);
        assert_eq!(a.count(), union.count());
        assert_eq!(
            (a.min(), a.max(), a.mean()),
            (union.min(), union.max(), union.mean())
        );
        for p in [10.0, 50.0, 90.0, 99.0, 99.9] {
            assert_eq!(a.percentile(p), union.percentile(p), "p{p} differs");
        }
        assert_eq!(a.summary(), union.summary());
    }

    #[test]
    fn merging_an_empty_histogram_is_the_identity() {
        let mut h = LatencyHistogram::new();
        h.record(42);
        let before = h.summary();
        h.merge(&LatencyHistogram::new());
        assert_eq!(h.summary(), before);
        assert_eq!(h.count(), 1);
        let mut empty = LatencyHistogram::new();
        empty.merge(&h);
        assert_eq!(empty.summary(), before);
    }
}
