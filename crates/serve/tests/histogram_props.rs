//! Property battery for [`LatencyHistogram`]: the invariants the sharded
//! service and the sweep records lean on, checked over generated sample
//! streams instead of hand-picked ones.
//!
//! 1. **Shard merge is exact**: splitting a stream across any number of
//!    shard histograms and merging them equals recording the whole stream
//!    into one histogram — count, min, max, mean, every percentile.
//! 2. **Percentiles are monotone in p**: for p ≤ q, `percentile(p) ≤
//!    percentile(q)`.
//! 3. **Percentiles stay in the observed range**: every estimate lies in
//!    `[min, max]`, including for single-bucket and single-sample streams.

use proptest::collection::vec;
use proptest::prelude::*;
use sa_serve::LatencyHistogram;

/// Latency samples spanning the histogram's regimes: the exact sub-64
/// buckets, the first coarse tiers, and values deep into the wide tiers
/// (where relative error, not absolute, is bounded).
fn sample() -> BoxedStrategy<u64> {
    prop_oneof![
        0u64..64,
        64u64..4096,
        4096u64..1_000_000,
        1_000_000u64..=u64::MAX / 2,
    ]
    .boxed()
}

fn samples() -> impl Strategy<Value = Vec<u64>> {
    vec(sample(), 1..200)
}

fn of(stream: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &s in stream {
        h.record(s);
    }
    h
}

proptest! {
    #[test]
    fn shard_merge_equals_the_combined_stream(
        stream in samples(),
        shard_count in 1usize..8,
        assignment in vec(0usize..8, 1..200),
    ) {
        // Deal the stream across `shard_count` shard histograms using the
        // generated assignment (cycled if shorter than the stream).
        let mut shards = vec![LatencyHistogram::new(); shard_count];
        for (i, &s) in stream.iter().enumerate() {
            shards[assignment[i % assignment.len()] % shard_count].record(s);
        }
        let mut merged = LatencyHistogram::new();
        for shard in &shards {
            merged.merge(shard);
        }
        let combined = of(&stream);
        prop_assert_eq!(merged.count(), combined.count());
        prop_assert_eq!(merged.min(), combined.min());
        prop_assert_eq!(merged.max(), combined.max());
        prop_assert_eq!(merged.mean(), combined.mean());
        for p in [0.1, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0] {
            prop_assert_eq!(
                merged.percentile(p),
                combined.percentile(p),
                "p{} differs between merge and combined stream",
                p
            );
        }
        prop_assert_eq!(merged.summary(), combined.summary());
    }

    #[test]
    fn percentiles_are_monotone_in_p(stream in samples()) {
        let h = of(&stream);
        let ps = [0.1, 1.0, 5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9, 100.0];
        for window in ps.windows(2) {
            let (lo, hi) = (window[0], window[1]);
            prop_assert!(
                h.percentile(lo) <= h.percentile(hi),
                "p{} = {} exceeds p{} = {}",
                lo,
                h.percentile(lo),
                hi,
                h.percentile(hi)
            );
        }
    }

    #[test]
    fn percentiles_stay_within_the_observed_range(stream in samples()) {
        let h = of(&stream);
        let (lo, hi) = (h.min(), h.max());
        prop_assert!(lo <= hi);
        for p in [0.1, 1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let got = h.percentile(p);
            prop_assert!(
                got >= lo && got <= hi,
                "p{} = {} left the observed range [{}, {}]",
                p,
                got,
                lo,
                hi
            );
        }
    }

    #[test]
    fn merging_preserves_range_and_count_pairwise(
        a in samples(),
        b in samples(),
    ) {
        let mut merged = of(&a);
        merged.merge(&of(&b));
        let combined: Vec<u64> = a.iter().chain(&b).copied().collect();
        let expected = of(&combined);
        prop_assert_eq!(merged.count(), expected.count());
        prop_assert_eq!(merged.min(), expected.min());
        prop_assert_eq!(merged.max(), expected.max());
        prop_assert_eq!(merged.summary(), expected.summary());
    }
}
