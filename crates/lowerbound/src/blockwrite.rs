//! Block writes, covering configurations and obliteration — the executable
//! core of the Theorem 2 argument.
//!
//! The mechanics themselves ([`poised_write_location`],
//! [`run_until_poised_outside`], [`block_write`], [`obliterates`],
//! [`splice_is_invisible`]) now live in `sa-search`'s [`goal`][sa_search::goal]
//! module, where the adversary-search driver evaluates them per
//! configuration; the hand-built constructions in this crate and the machine
//! search share that single implementation, so a covering means exactly the
//! same thing in both. This module re-exports them under their historical
//! paths and keeps the original test battery as the executable specification
//! of the mechanics (covering observation, block-write release, obliteration
//! and splice invisibility) against the paper's own algorithms.

pub use sa_search::{
    block_write, covered_locations, obliterates, poised_write_location, run_until_poised_outside,
    splice_is_invisible, GroupRun,
};

#[cfg(test)]
mod tests {
    use super::*;
    use sa_core::OneShotSetAgreement;
    use sa_memory::Location;
    use sa_model::{Params, ProcessId};
    use sa_runtime::Executor;
    use std::collections::BTreeSet;

    /// A deficient width-1 instance: every process only ever writes component
    /// 0, so covering that single location covers everything.
    fn width_one_executor(params: Params) -> Executor<OneShotSetAgreement> {
        let automata: Vec<_> = (0..params.n())
            .map(|p| {
                OneShotSetAgreement::deficient(params, ProcessId(p), 100 + p as u64, 1).unwrap()
            })
            .collect();
        Executor::new(automata)
    }

    fn full_width_executor(params: Params) -> Executor<OneShotSetAgreement> {
        let automata: Vec<_> = (0..params.n())
            .map(|p| OneShotSetAgreement::new(params, ProcessId(p), 100 + p as u64))
            .collect();
        Executor::new(automata)
    }

    const COMPONENT_0: Location = Location::Component {
        snapshot: 0,
        component: 0,
    };

    #[test]
    fn poised_write_location_reports_the_update_target() {
        let params = Params::new(3, 1, 1).unwrap();
        let exec = full_width_executor(params);
        // Initially every Figure 3 process is poised to update component 0.
        for p in 0..3 {
            assert_eq!(
                poised_write_location(&exec, ProcessId(p)),
                Some(COMPONENT_0)
            );
        }
        assert_eq!(
            covered_locations(&exec, &[ProcessId(0), ProcessId(2)]),
            BTreeSet::from([COMPONENT_0])
        );
    }

    #[test]
    fn run_until_poised_outside_finds_the_second_location() {
        // With nothing covered, the group is immediately poised outside; with
        // component 0 covered, it runs until poised to component 1.
        let params = Params::new(3, 1, 1).unwrap();
        let mut exec = full_width_executor(params);
        let group = vec![ProcessId(1)];
        let outcome = run_until_poised_outside(&mut exec, &group, &BTreeSet::new(), 1_000);
        assert!(matches!(
            outcome,
            GroupRun::PoisedOutside {
                location: COMPONENT_0,
                ..
            }
        ));
        let covered = BTreeSet::from([COMPONENT_0]);
        let outcome = run_until_poised_outside(&mut exec, &group, &covered, 1_000);
        match outcome {
            GroupRun::PoisedOutside {
                location, process, ..
            } => {
                assert_eq!(process, ProcessId(1));
                assert_eq!(
                    location,
                    Location::Component {
                        snapshot: 0,
                        component: 1
                    }
                );
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn run_until_poised_outside_reports_halting_groups() {
        // A width-1 process can never write outside {component 0}, so it runs
        // to completion (it decides) without ever being poised outside.
        let params = Params::new(3, 1, 1).unwrap();
        let mut exec = width_one_executor(params);
        let covered = BTreeSet::from([COMPONENT_0]);
        let outcome = run_until_poised_outside(&mut exec, &[ProcessId(0)], &covered, 10_000);
        assert!(matches!(outcome, GroupRun::Halted { .. }), "{outcome:?}");
    }

    #[test]
    fn block_write_steps_every_coverer_once() {
        let params = Params::new(4, 1, 2).unwrap();
        let mut exec = full_width_executor(params);
        let writers = vec![ProcessId(2), ProcessId(3)];
        let written = block_write(&mut exec, &writers);
        assert_eq!(written, BTreeSet::from([COMPONENT_0]));
        assert_eq!(exec.steps(), 2);
    }

    #[test]
    #[should_panic(expected = "not poised to write")]
    fn block_write_rejects_non_covering_processes() {
        let params = Params::new(3, 1, 1).unwrap();
        let mut exec = full_width_executor(params);
        // After its update, p0 is poised to scan — not a covering process.
        exec.step(ProcessId(0));
        block_write(&mut exec, &[ProcessId(0)]);
    }

    #[test]
    fn block_write_obliterates_fragments_confined_to_covered_locations() {
        // Width-1 algorithm: p0 covers component 0; any fragment by p1 writes
        // only component 0, so the block write erases it.
        let params = Params::new(3, 1, 1).unwrap();
        let exec = width_one_executor(params);
        let fragment: Vec<ProcessId> = std::iter::repeat_n(ProcessId(1), 12).collect();
        assert!(obliterates(&exec, &[ProcessId(0)], &fragment));
    }

    #[test]
    fn block_write_does_not_obliterate_uncovered_writes() {
        // Full-width algorithm: p1's fragment eventually writes component 1,
        // which p0 does not cover, so the memories differ.
        let params = Params::new(3, 1, 1).unwrap();
        let exec = full_width_executor(params);
        let fragment: Vec<ProcessId> = std::iter::repeat_n(ProcessId(1), 12).collect();
        assert!(!obliterates(&exec, &[ProcessId(0)], &fragment));
    }

    #[test]
    fn spliced_fragments_are_invisible_to_later_observers() {
        // The heart of Theorem 2: with the width-1 algorithm, whether or not
        // p1 ran (and decided!) before the block write, the later solo
        // observer p2 decides exactly the same values.
        let params = Params::new(3, 1, 1).unwrap();
        let exec = width_one_executor(params);
        let fragment: Vec<ProcessId> = std::iter::repeat_n(ProcessId(1), 30).collect();
        assert!(splice_is_invisible(
            &exec,
            &[ProcessId(0)],
            &fragment,
            ProcessId(2),
            10_000
        ));
    }

    #[test]
    fn splice_visibility_returns_false_when_traces_survive() {
        // With the full-width algorithm the fragment's writes to uncovered
        // locations survive the block write and change what the observer
        // decides (p2 adopts p1's value instead of its own in one branch).
        let params = Params::new(3, 1, 1).unwrap();
        let exec = full_width_executor(params);
        let fragment: Vec<ProcessId> = std::iter::repeat_n(ProcessId(1), 40).collect();
        assert!(!splice_is_invisible(
            &exec,
            &[ProcessId(0)],
            &fragment,
            ProcessId(2),
            10_000
        ));
    }
}
