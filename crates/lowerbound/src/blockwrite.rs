//! Block writes, covering configurations and obliteration — the executable
//! core of the Theorem 2 argument.
//!
//! The covering lower bound rests on one mechanical fact: if a set `P` of
//! processes is *poised* to write to a set `A` of locations (it "covers"
//! `A`), and another group `Q` runs a fragment that only writes inside `A`,
//! then releasing `P`'s pending writes (a *block write*) leaves the shared
//! memory in exactly the state it would have had if `Q`'s fragment had never
//! happened. The fragment can therefore be spliced into the execution without
//! any later process being able to tell — which is how the proof collects
//! `k + 1` outputs from an algorithm that uses too few registers.
//!
//! This module provides those mechanics over real executors:
//!
//! * [`poised_write_location`] — what a process is about to write, if
//!   anything (the observation the adversary of Figure 2 relies on).
//! * [`run_until_poised_outside`] — advance a group until some member is
//!   about to write outside a covered set (the loop body of Figure 2).
//! * [`block_write`] — release one pending write of every covering process.
//! * [`obliterates`] — check, by running both branches, that a fragment's
//!   traces are erased by the block write.
//! * [`splice_is_invisible`] — check that a later observer decides the same
//!   values whether or not the fragment was spliced in.

use sa_memory::Location;
use sa_model::{Automaton, Op, ProcessId};
use sa_runtime::Executor;
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::hash::Hash;

/// The location `process` is poised to write, or `None` if it is halted, or
/// poised to a read, a scan or a local step.
pub fn poised_write_location<A>(executor: &Executor<A>, process: ProcessId) -> Option<Location>
where
    A: Automaton,
    A::Value: Clone + Eq + Debug,
{
    match executor.poised(process)? {
        Op::Write { register, .. } => Some(Location::Register(register)),
        Op::Update {
            snapshot,
            component,
            ..
        } => Some(Location::Component {
            snapshot,
            component,
        }),
        _ => None,
    }
}

/// The locations covered by `processes` in the current configuration: the
/// pending-write targets of those that are poised to write.
pub fn covered_locations<A>(executor: &Executor<A>, processes: &[ProcessId]) -> BTreeSet<Location>
where
    A: Automaton,
    A::Value: Clone + Eq + Debug,
{
    processes
        .iter()
        .filter_map(|p| poised_write_location(executor, *p))
        .collect()
}

/// The outcome of [`run_until_poised_outside`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupRun {
    /// Some process of the group is poised to write to a location outside the
    /// covered set (and has **not** performed that write yet).
    PoisedOutside {
        /// The process about to write.
        process: ProcessId,
        /// The location it is about to write.
        location: Location,
        /// Steps executed before it became poised.
        steps: u64,
    },
    /// Every process of the group halted without ever being poised to write
    /// outside the covered set.
    Halted {
        /// Steps executed.
        steps: u64,
    },
    /// The step budget ran out first.
    Exhausted {
        /// Steps executed (equals the budget).
        steps: u64,
    },
}

/// Runs the processes of `group` (one at a time, in group order, exactly like
/// the fragments of the Theorem 2 construction) until one of them is poised
/// to write to a location **outside** `covered`, leaving it poised. Reads,
/// scans, local steps and writes *inside* `covered` are allowed to proceed.
pub fn run_until_poised_outside<A>(
    executor: &mut Executor<A>,
    group: &[ProcessId],
    covered: &BTreeSet<Location>,
    max_steps: u64,
) -> GroupRun
where
    A: Automaton,
    A::Value: Clone + Eq + Debug,
{
    let mut steps = 0;
    loop {
        // The next runnable process in group order.
        let Some(process) = group
            .iter()
            .copied()
            .find(|p| !executor.automaton(*p).is_halted())
        else {
            return GroupRun::Halted { steps };
        };
        if let Some(location) = poised_write_location(executor, process) {
            if !covered.contains(&location) {
                return GroupRun::PoisedOutside {
                    process,
                    location,
                    steps,
                };
            }
        }
        if steps >= max_steps {
            return GroupRun::Exhausted { steps };
        }
        executor.step(process);
        steps += 1;
    }
}

/// Performs a block write: every process of `writers` takes exactly one step,
/// which must be a pending write (the caller established the covering). The
/// set of locations written is returned.
///
/// # Panics
///
/// Panics if some writer is not poised to a write-like operation — that means
/// the covering was not established and the caller's adversary is buggy.
pub fn block_write<A>(executor: &mut Executor<A>, writers: &[ProcessId]) -> BTreeSet<Location>
where
    A: Automaton,
    A::Value: Clone + Eq + Debug,
{
    let mut written = BTreeSet::new();
    for process in writers {
        let location = poised_write_location(executor, *process)
            .unwrap_or_else(|| panic!("{process} is not poised to write; no covering established"));
        executor.step(*process);
        written.insert(location);
    }
    written
}

/// Checks the obliteration property at the current configuration: running the
/// fragment `fragment` (a schedule over non-covering processes) and then
/// releasing the block write of `coverers` leaves the shared memory in
/// exactly the same state as releasing the block write alone.
///
/// This is the step of the Theorem 2 proof that makes spliced fragments
/// invisible. It holds whenever the fragment writes only to locations covered
/// by `coverers`; it fails (returns `false`) as soon as the fragment touches
/// an uncovered location.
pub fn obliterates<A>(
    executor: &Executor<A>,
    coverers: &[ProcessId],
    fragment: &[ProcessId],
) -> bool
where
    A: Automaton + Clone,
    A::Value: Clone + Eq + Debug + Hash,
{
    // Branch 1: fragment, then block write.
    let mut with_fragment = executor.clone();
    for process in fragment {
        if !with_fragment.automaton(*process).is_halted() {
            with_fragment.step(*process);
        }
    }
    block_write(&mut with_fragment, coverers);

    // Branch 2: block write alone.
    let mut without_fragment = executor.clone();
    block_write(&mut without_fragment, coverers);

    with_fragment.memory().content_fingerprint() == without_fragment.memory().content_fingerprint()
}

/// Checks that an observer cannot tell whether the fragment was spliced in:
/// starting from the current configuration, run `fragment`, block-write the
/// coverers, then let `observer` run alone to completion — and compare its
/// decisions with the branch where the fragment never happened.
///
/// Returns `true` when the observer's decisions are identical in both
/// branches (the splice is invisible).
pub fn splice_is_invisible<A>(
    executor: &Executor<A>,
    coverers: &[ProcessId],
    fragment: &[ProcessId],
    observer: ProcessId,
    max_steps: u64,
) -> bool
where
    A: Automaton + Clone,
    A::Value: Clone + Eq + Debug + Hash,
{
    let run_observer = |mut exec: Executor<A>| {
        let mut steps = 0;
        while !exec.automaton(observer).is_halted() && steps < max_steps {
            exec.step(observer);
            steps += 1;
        }
        let decisions = exec.decisions().clone();
        (0u64..)
            .map_while(|i| decisions.decision_of(observer, i + 1).map(|v| (i + 1, v)))
            .collect::<Vec<_>>()
    };

    let mut with_fragment = executor.clone();
    for process in fragment {
        if !with_fragment.automaton(*process).is_halted() {
            with_fragment.step(*process);
        }
    }
    block_write(&mut with_fragment, coverers);

    let mut without_fragment = executor.clone();
    block_write(&mut without_fragment, coverers);

    run_observer(with_fragment) == run_observer(without_fragment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sa_core::OneShotSetAgreement;
    use sa_model::Params;

    /// A deficient width-1 instance: every process only ever writes component
    /// 0, so covering that single location covers everything.
    fn width_one_executor(params: Params) -> Executor<OneShotSetAgreement> {
        let automata: Vec<_> = (0..params.n())
            .map(|p| {
                OneShotSetAgreement::deficient(params, ProcessId(p), 100 + p as u64, 1).unwrap()
            })
            .collect();
        Executor::new(automata)
    }

    fn full_width_executor(params: Params) -> Executor<OneShotSetAgreement> {
        let automata: Vec<_> = (0..params.n())
            .map(|p| OneShotSetAgreement::new(params, ProcessId(p), 100 + p as u64))
            .collect();
        Executor::new(automata)
    }

    const COMPONENT_0: Location = Location::Component {
        snapshot: 0,
        component: 0,
    };

    #[test]
    fn poised_write_location_reports_the_update_target() {
        let params = Params::new(3, 1, 1).unwrap();
        let exec = full_width_executor(params);
        // Initially every Figure 3 process is poised to update component 0.
        for p in 0..3 {
            assert_eq!(
                poised_write_location(&exec, ProcessId(p)),
                Some(COMPONENT_0)
            );
        }
        assert_eq!(
            covered_locations(&exec, &[ProcessId(0), ProcessId(2)]),
            BTreeSet::from([COMPONENT_0])
        );
    }

    #[test]
    fn run_until_poised_outside_finds_the_second_location() {
        // With nothing covered, the group is immediately poised outside; with
        // component 0 covered, it runs until poised to component 1.
        let params = Params::new(3, 1, 1).unwrap();
        let mut exec = full_width_executor(params);
        let group = vec![ProcessId(1)];
        let outcome = run_until_poised_outside(&mut exec, &group, &BTreeSet::new(), 1_000);
        assert!(matches!(
            outcome,
            GroupRun::PoisedOutside {
                location: COMPONENT_0,
                ..
            }
        ));
        let covered = BTreeSet::from([COMPONENT_0]);
        let outcome = run_until_poised_outside(&mut exec, &group, &covered, 1_000);
        match outcome {
            GroupRun::PoisedOutside {
                location, process, ..
            } => {
                assert_eq!(process, ProcessId(1));
                assert_eq!(
                    location,
                    Location::Component {
                        snapshot: 0,
                        component: 1
                    }
                );
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn run_until_poised_outside_reports_halting_groups() {
        // A width-1 process can never write outside {component 0}, so it runs
        // to completion (it decides) without ever being poised outside.
        let params = Params::new(3, 1, 1).unwrap();
        let mut exec = width_one_executor(params);
        let covered = BTreeSet::from([COMPONENT_0]);
        let outcome = run_until_poised_outside(&mut exec, &[ProcessId(0)], &covered, 10_000);
        assert!(matches!(outcome, GroupRun::Halted { .. }), "{outcome:?}");
    }

    #[test]
    fn block_write_steps_every_coverer_once() {
        let params = Params::new(4, 1, 2).unwrap();
        let mut exec = full_width_executor(params);
        let writers = vec![ProcessId(2), ProcessId(3)];
        let written = block_write(&mut exec, &writers);
        assert_eq!(written, BTreeSet::from([COMPONENT_0]));
        assert_eq!(exec.steps(), 2);
    }

    #[test]
    #[should_panic(expected = "not poised to write")]
    fn block_write_rejects_non_covering_processes() {
        let params = Params::new(3, 1, 1).unwrap();
        let mut exec = full_width_executor(params);
        // After its update, p0 is poised to scan — not a covering process.
        exec.step(ProcessId(0));
        block_write(&mut exec, &[ProcessId(0)]);
    }

    #[test]
    fn block_write_obliterates_fragments_confined_to_covered_locations() {
        // Width-1 algorithm: p0 covers component 0; any fragment by p1 writes
        // only component 0, so the block write erases it.
        let params = Params::new(3, 1, 1).unwrap();
        let exec = width_one_executor(params);
        let fragment: Vec<ProcessId> = std::iter::repeat_n(ProcessId(1), 12).collect();
        assert!(obliterates(&exec, &[ProcessId(0)], &fragment));
    }

    #[test]
    fn block_write_does_not_obliterate_uncovered_writes() {
        // Full-width algorithm: p1's fragment eventually writes component 1,
        // which p0 does not cover, so the memories differ.
        let params = Params::new(3, 1, 1).unwrap();
        let exec = full_width_executor(params);
        let fragment: Vec<ProcessId> = std::iter::repeat_n(ProcessId(1), 12).collect();
        assert!(!obliterates(&exec, &[ProcessId(0)], &fragment));
    }

    #[test]
    fn spliced_fragments_are_invisible_to_later_observers() {
        // The heart of Theorem 2: with the width-1 algorithm, whether or not
        // p1 ran (and decided!) before the block write, the later solo
        // observer p2 decides exactly the same values.
        let params = Params::new(3, 1, 1).unwrap();
        let exec = width_one_executor(params);
        let fragment: Vec<ProcessId> = std::iter::repeat_n(ProcessId(1), 30).collect();
        assert!(splice_is_invisible(
            &exec,
            &[ProcessId(0)],
            &fragment,
            ProcessId(2),
            10_000
        ));
    }

    #[test]
    fn splice_visibility_returns_false_when_traces_survive() {
        // With the full-width algorithm the fragment's writes to uncovered
        // locations survive the block write and change what the observer
        // decides (p2 adopts p1's value instead of its own in one branch).
        let params = Params::new(3, 1, 1).unwrap();
        let exec = full_width_executor(params);
        let fragment: Vec<ProcessId> = std::iter::repeat_n(ProcessId(1), 40).collect();
        assert!(!splice_is_invisible(
            &exec,
            &[ProcessId(0)],
            &fragment,
            ProcessId(2),
            10_000
        ));
    }
}
