//! Executable witnesses of the cloning lower-bound mechanism (Lemma 9 /
//! Theorem 10).
//!
//! The anonymous lower bound argues about *clones*: because anonymous
//! processes are identically programmed, a process `p'` with the same input
//! as `p` that is scheduled immediately after every step of `p` performs
//! exactly the same steps — the two are indistinguishable to everyone,
//! including themselves. The proof of Lemma 9 parks clones just before
//! writes and later releases them as block writes that obliterate every
//! trace of a group's execution, letting `⌈(k+1)/m⌉` groups decide disjoint
//! value sets.
//!
//! This module provides:
//!
//! * [`LockstepScheduler`] — schedules designated clones immediately after
//!   their originals, producing the canonical cloned execution.
//! * [`clones_behave_identically`] — the executable form of the
//!   indistinguishability fact the proof relies on: in a lockstep run of the
//!   anonymous algorithm, a clone performs exactly the same operations and
//!   reaches exactly the same decision as its original.
//! * [`clone_attack`] — the group-isolation attack of Theorem 10 run against
//!   under-provisioned instances of the anonymous algorithm of Figure 5,
//!   reporting how many distinct values are output.

use crate::covering::{AttackOutcome, GroupSequentialScheduler};
use sa_core::AnonymousSetAgreement;
use sa_model::{Params, ProcessId};
use sa_runtime::{Executor, RunConfig, Scheduler, SchedulerView};

/// Schedules each clone immediately after its original: whenever the original
/// takes a step, the clone takes its next step right afterwards, exactly the
/// "whenever p takes a step, p' takes an identical step immediately
/// afterwards" discipline of Section 5.
///
/// Processes that are neither originals nor clones are scheduled round-robin
/// in the remaining slots.
#[derive(Debug, Clone)]
pub struct LockstepScheduler {
    /// `pairs[i] = (original, clone)`.
    pairs: Vec<(ProcessId, ProcessId)>,
    /// Clones that owe a step (their original stepped more recently than they
    /// did).
    pending: Vec<ProcessId>,
    cursor: usize,
}

impl LockstepScheduler {
    /// Creates a lockstep scheduler for the given original/clone pairs.
    pub fn new(pairs: Vec<(ProcessId, ProcessId)>) -> Self {
        LockstepScheduler {
            pairs,
            pending: Vec::new(),
            cursor: 0,
        }
    }

    /// The original/clone pairs driven by this scheduler.
    pub fn pairs(&self) -> &[(ProcessId, ProcessId)] {
        &self.pairs
    }

    fn is_clone(&self, p: ProcessId) -> bool {
        self.pairs.iter().any(|(_, clone)| *clone == p)
    }
}

impl Scheduler for LockstepScheduler {
    fn next(&mut self, view: &SchedulerView<'_>) -> Option<ProcessId> {
        // A clone that owes a step goes first.
        while let Some(clone) = self.pending.first().copied() {
            if view.runnable.contains(&clone) {
                self.pending.remove(0);
                return Some(clone);
            }
            self.pending.remove(0);
        }
        // Otherwise schedule a non-clone round-robin; stepping an original
        // queues its clone.
        let candidates: Vec<ProcessId> = view
            .runnable
            .iter()
            .copied()
            .filter(|p| !self.is_clone(*p))
            .collect();
        if candidates.is_empty() {
            // Only clones remain runnable (their originals halted): let them
            // finish on their own.
            return view.runnable.first().copied();
        }
        let pick = candidates[self.cursor % candidates.len()];
        self.cursor = self.cursor.wrapping_add(1);
        if let Some((_, clone)) = self.pairs.iter().find(|(original, _)| *original == pick) {
            self.pending.push(*clone);
        }
        Some(pick)
    }

    fn name(&self) -> &str {
        "lockstep-clones"
    }
}

/// The observable behaviour of one process in a run: the sequence of
/// operation kinds it performed and the values it decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessBehaviour {
    /// Operation kinds in execution order.
    pub ops: Vec<sa_model::OpKind>,
    /// Decisions in the order they were produced.
    pub decisions: Vec<sa_model::Decision>,
}

/// Runs the **anonymous** one-shot algorithm with `n` processes where process
/// 1 is a clone of process 0 (same input), driving them in lockstep, and
/// returns the observable behaviour of the original and of the clone.
///
/// The pair of behaviours being equal is the indistinguishability property
/// that the cloning argument of Lemma 9 relies on.
pub fn lockstep_behaviours(params: Params, steps: u64) -> (ProcessBehaviour, ProcessBehaviour) {
    let automata: Vec<AnonymousSetAgreement> = (0..params.n())
        .map(|p| {
            // Processes 0 and 1 share an input; everyone else differs.
            let input = if p <= 1 { 500 } else { 600 + p as u64 };
            AnonymousSetAgreement::one_shot(params, input)
        })
        .collect();
    let mut exec = Executor::new(automata);
    let mut scheduler = LockstepScheduler::new(vec![(ProcessId(0), ProcessId(1))]);
    let report = exec.run(&mut scheduler, RunConfig::with_max_steps(steps).traced());
    let trace = report.trace.expect("trace recording was enabled");
    let behaviour_of = |p: ProcessId| ProcessBehaviour {
        ops: trace.steps_of(p).map(|e| e.op).collect(),
        decisions: report
            .decisions
            .instances()
            .filter_map(|i| {
                report
                    .decisions
                    .decision_of(p, i)
                    .map(|v| sa_model::Decision::new(i, v))
            })
            .collect(),
    };
    (behaviour_of(ProcessId(0)), behaviour_of(ProcessId(1)))
}

/// `true` if, in a lockstep run, the clone's observable behaviour is
/// identical to its original's — the executable core of the cloning
/// argument.
pub fn clones_behave_identically(params: Params, steps: u64) -> bool {
    let (original, clone) = lockstep_behaviours(params, steps);
    original == clone
}

/// Runs the group-isolation attack of Theorem 10 against the anonymous
/// algorithm of Figure 5 instantiated with `width` snapshot components.
/// Groups of `m` processes run one at a time with disjoint input sets; if
/// `width` is too small, a group cannot see `ℓ = n − k + m` copies of an
/// earlier group's value, so it never adopts and decides its own inputs —
/// producing more than `k` distinct outputs overall.
pub fn clone_attack(params: Params, width: usize, max_steps: u64) -> AttackOutcome {
    let automata: Vec<AnonymousSetAgreement> = (0..params.n())
        .map(|p| {
            AnonymousSetAgreement::deficient(params, vec![100 + p as u64], width)
                .expect("width is positive and inputs are non-empty")
        })
        .collect();
    let mut exec = Executor::new(automata);
    let mut scheduler = GroupSequentialScheduler::consecutive(params.n(), params.m());
    let report = exec.run(&mut scheduler, RunConfig::with_max_steps(max_steps));
    AttackOutcome {
        params,
        width,
        decisions: report.decisions.clone(),
        steps: report.steps,
        completed: report.all_halted(),
    }
}

/// Sweeps the anonymous attack over widths `1..=max_width`.
pub fn clone_attack_sweep(params: Params, max_width: usize, max_steps: u64) -> Vec<AttackOutcome> {
    (1..=max_width)
        .map(|width| clone_attack(params, width, max_steps))
        .collect()
}

/// The smallest width at which the anonymous group-isolation attack no longer
/// violates k-agreement. Compared against `√(m(n/k − 2))` (the Theorem 10
/// bound, which it must exceed) and `(m+1)(n−k) + m²` (the Theorem 11 width,
/// which it can never exceed) in EXPERIMENTS.md.
pub fn minimal_resilient_anonymous_width(params: Params, max_steps: u64) -> usize {
    for outcome in clone_attack_sweep(params, params.anonymous_snapshot_components(), max_steps) {
        if !outcome.violates_agreement() {
            return outcome.width;
        }
    }
    params.anonymous_snapshot_components()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lockstep_scheduler_steps_clone_right_after_original() {
        let mut sched = LockstepScheduler::new(vec![(ProcessId(0), ProcessId(1))]);
        let runnable = vec![ProcessId(0), ProcessId(1), ProcessId(2)];
        let view = |step| SchedulerView {
            step,
            runnable: &runnable,
        };
        let mut picks = Vec::new();
        for step in 0..6 {
            picks.push(sched.next(&view(step)).unwrap());
        }
        // Whenever p0 appears, p1 follows immediately.
        for window in picks.windows(2) {
            if window[0] == ProcessId(0) {
                assert_eq!(window[1], ProcessId(1), "clone did not follow: {picks:?}");
            }
        }
        assert!(picks.contains(&ProcessId(2)));
        assert_eq!(sched.pairs().len(), 1);
        assert_eq!(sched.name(), "lockstep-clones");
    }

    #[test]
    fn lockstep_scheduler_lets_orphaned_clones_finish() {
        let mut sched = LockstepScheduler::new(vec![(ProcessId(0), ProcessId(1))]);
        // Only the clone is still runnable.
        let runnable = vec![ProcessId(1)];
        let view = SchedulerView {
            step: 0,
            runnable: &runnable,
        };
        assert_eq!(sched.next(&view), Some(ProcessId(1)));
    }

    #[test]
    fn clones_are_indistinguishable_in_lockstep_runs() {
        for (n, m, k) in [(4, 1, 2), (5, 2, 3)] {
            let params = Params::new(n, m, k).unwrap();
            assert!(
                clones_behave_identically(params, 50_000),
                "clone diverged for n={n} m={m} k={k}"
            );
        }
    }

    #[test]
    fn lockstep_behaviours_are_nonempty() {
        let params = Params::new(4, 1, 2).unwrap();
        let (original, clone) = lockstep_behaviours(params, 50_000);
        assert!(!original.ops.is_empty());
        assert_eq!(original.ops.len(), clone.ops.len());
    }

    #[test]
    fn under_provisioned_anonymous_algorithm_is_defeated() {
        // Anonymous 1-set agreement (consensus) among 4 processes with a
        // single component: groups decide their own values.
        let params = Params::new(4, 1, 1).unwrap();
        let outcome = clone_attack(params, 1, 200_000);
        assert!(outcome.completed, "attack did not finish");
        assert!(outcome.violates_agreement(), "{outcome}");
    }

    #[test]
    fn paper_width_resists_the_anonymous_attack() {
        for (n, m, k) in [(4, 1, 1), (4, 1, 2), (5, 2, 3)] {
            let params = Params::new(n, m, k).unwrap();
            let outcome = clone_attack(params, params.anonymous_snapshot_components(), 500_000);
            assert!(outcome.completed, "did not finish for n={n} m={m} k={k}");
            assert!(!outcome.violates_agreement(), "{outcome}");
        }
    }

    #[test]
    fn resilient_width_sits_between_the_paper_bounds() {
        for (n, m, k) in [(4, 1, 1), (5, 1, 2), (5, 2, 3)] {
            let params = Params::new(n, m, k).unwrap();
            let width = minimal_resilient_anonymous_width(params, 300_000);
            assert!(width >= 1);
            assert!(
                width <= params.anonymous_snapshot_components(),
                "resilient width exceeds Theorem 11 width for n={n} m={m} k={k}"
            );
        }
    }
}
