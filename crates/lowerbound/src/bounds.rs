//! The register bounds of Figure 1 of the paper, as executable formulas.
//!
//! Figure 1 tabulates, for `m`-obstruction-free `k`-set agreement among `n`
//! processes, lower and upper bounds on the number of MWMR registers in four
//! settings: {repeated, one-shot} × {non-anonymous, anonymous}. This module
//! evaluates every cell for arbitrary parameters, renders the table, and
//! exposes the consistency relations between cells that the bench harness
//! and property tests check.

use sa_model::{ParamSweep, Params};
use std::fmt;

/// Whether processes solve a single instance or an infinite sequence of
/// instances of set agreement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Setting {
    /// Every process invokes `Propose` at most once.
    OneShot,
    /// Processes access an infinite sequence of independent instances.
    Repeated,
}

impl fmt::Display for Setting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Setting::OneShot => f.write_str("one-shot"),
            Setting::Repeated => f.write_str("repeated"),
        }
    }
}

/// Whether processes have unique identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Naming {
    /// Processes have unique identifiers (the model of Sections 3–4).
    NonAnonymous,
    /// Processes are identically programmed and have no identifiers
    /// (Sections 5–6).
    Anonymous,
}

impl fmt::Display for Naming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Naming::NonAnonymous => f.write_str("non-anonymous"),
            Naming::Anonymous => f.write_str("anonymous"),
        }
    }
}

/// A lower or upper bound value. Lower bounds may be fractional (the
/// anonymous one-shot bound is `√(m(n/k − 2))`), so both an exact integer
/// form (when meaningful) and a raw floating-point form are carried.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bound {
    /// The bound in registers, rounded to the integer actually implied for an
    /// algorithm (lower bounds round up to the smallest excluded-from-below
    /// register count, upper bounds are exact).
    pub registers: usize,
    /// The raw value of the formula before rounding.
    pub raw: f64,
    /// The formula as the paper writes it.
    pub formula: &'static str,
    /// Where in the paper the bound is established.
    pub source: &'static str,
}

impl Bound {
    fn exact(registers: usize, formula: &'static str, source: &'static str) -> Self {
        Bound {
            registers,
            raw: registers as f64,
            formula,
            source,
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.registers, self.formula)
    }
}

/// One cell of Figure 1: the best known lower and upper bound for a given
/// setting and naming assumption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundsCell {
    /// One-shot or repeated.
    pub setting: Setting,
    /// Anonymous or non-anonymous.
    pub naming: Naming,
    /// The lower bound (registers necessary).
    pub lower: Bound,
    /// The upper bound (registers sufficient).
    pub upper: Bound,
}

impl BoundsCell {
    /// `true` when the bounds are tight (lower equals upper).
    pub fn is_tight(&self) -> bool {
        self.lower.registers == self.upper.registers
    }

    /// The additive gap between the upper and lower bound.
    pub fn gap(&self) -> usize {
        self.upper.registers.saturating_sub(self.lower.registers)
    }
}

/// Evaluates the lower bound of Figure 1 for the given setting and naming.
///
/// * repeated (both namings): `n + m − k` registers — Theorem 2 (the
///   anonymous case is a corollary, since an anonymous algorithm is a special
///   case of a non-anonymous one).
/// * one-shot, non-anonymous: `2` registers, the bound inherited from \[4\].
/// * one-shot, anonymous: strictly more than `√(m(n/k − 2))` registers —
///   Theorem 10.
pub fn lower_bound(params: Params, setting: Setting, naming: Naming) -> Bound {
    match (setting, naming) {
        (Setting::Repeated, _) => {
            Bound::exact(params.repeated_lower_bound(), "n + m - k", "Theorem 2")
        }
        (Setting::OneShot, Naming::NonAnonymous) => Bound::exact(2, "2", "[4]"),
        (Setting::OneShot, Naming::Anonymous) => Bound {
            registers: params.anonymous_oneshot_lower_bound(),
            raw: params.anonymous_oneshot_lower_bound_raw(),
            formula: "> sqrt(m(n/k - 2))",
            source: "Theorem 10",
        },
    }
}

/// Evaluates the upper bound of Figure 1 for the given setting and naming.
///
/// * non-anonymous (both settings): `min(n + 2m − k, n)` registers —
///   Theorems 7 and 8 (Figures 3 and 4).
/// * anonymous, one-shot: `(m+1)(n−k) + m²` registers — Theorem 11 without
///   the helper register.
/// * anonymous, repeated: `(m+1)(n−k) + m² + 1` registers — Theorem 11.
pub fn upper_bound(params: Params, setting: Setting, naming: Naming) -> Bound {
    match (setting, naming) {
        (_, Naming::NonAnonymous) => Bound::exact(
            params.register_upper_bound(),
            "min(n + 2m - k, n)",
            "Theorems 7 and 8",
        ),
        (Setting::OneShot, Naming::Anonymous) => Bound::exact(
            params.anonymous_snapshot_components(),
            "(m+1)(n-k) + m^2",
            "Theorem 11 (remark)",
        ),
        (Setting::Repeated, Naming::Anonymous) => Bound::exact(
            params.anonymous_repeated_registers(),
            "(m+1)(n-k) + m^2 + 1",
            "Theorem 11",
        ),
    }
}

/// Evaluates one cell of Figure 1.
pub fn cell(params: Params, setting: Setting, naming: Naming) -> BoundsCell {
    BoundsCell {
        setting,
        naming,
        lower: lower_bound(params, setting, naming),
        upper: upper_bound(params, setting, naming),
    }
}

/// All four cells of Figure 1 for one parameter triple.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure1 {
    /// The parameters the table is evaluated for.
    pub params: Params,
    /// The four cells in a fixed order: (repeated, non-anon), (one-shot,
    /// non-anon), (repeated, anon), (one-shot, anon).
    pub cells: [BoundsCell; 4],
}

impl Figure1 {
    /// Evaluates Figure 1 for `params`.
    pub fn for_params(params: Params) -> Self {
        Figure1 {
            params,
            cells: [
                cell(params, Setting::Repeated, Naming::NonAnonymous),
                cell(params, Setting::OneShot, Naming::NonAnonymous),
                cell(params, Setting::Repeated, Naming::Anonymous),
                cell(params, Setting::OneShot, Naming::Anonymous),
            ],
        }
    }

    /// The cell for a given setting and naming.
    pub fn cell(&self, setting: Setting, naming: Naming) -> &BoundsCell {
        self.cells
            .iter()
            .find(|c| c.setting == setting && c.naming == naming)
            .expect("all four cells are always present")
    }

    /// Consistency relations between cells that must hold for every valid
    /// parameter triple; returns a description of the first violated relation
    /// (property tests assert this is always `None`).
    pub fn consistency_violation(&self) -> Option<String> {
        for cell in &self.cells {
            if cell.lower.registers > cell.upper.registers {
                return Some(format!(
                    "{} {} lower bound {} exceeds upper bound {}",
                    cell.setting, cell.naming, cell.lower.registers, cell.upper.registers
                ));
            }
        }
        // Repeated is at least as hard as one-shot within a naming.
        for naming in [Naming::NonAnonymous, Naming::Anonymous] {
            let repeated = self.cell(Setting::Repeated, naming);
            let one_shot = self.cell(Setting::OneShot, naming);
            if repeated.lower.registers < one_shot.lower.registers {
                return Some(format!(
                    "{naming}: repeated lower bound below one-shot lower bound"
                ));
            }
            if repeated.upper.registers < one_shot.upper.registers {
                return Some(format!(
                    "{naming}: repeated upper bound below one-shot upper bound"
                ));
            }
        }
        // Anonymity never helps: anonymous upper bounds are at least the
        // non-anonymous ones (an anonymous algorithm is also non-anonymous).
        for setting in [Setting::OneShot, Setting::Repeated] {
            let anon = self.cell(setting, Naming::Anonymous);
            let named = self.cell(setting, Naming::NonAnonymous);
            if anon.upper.registers < named.upper.registers {
                return Some(format!(
                    "{setting}: anonymous upper bound below non-anonymous upper bound"
                ));
            }
        }
        // For m = k = 1 (repeated consensus) the non-anonymous bounds are
        // tight at exactly n registers.
        if self.params.is_consensus() && self.params.is_obstruction_free() {
            let cell = self.cell(Setting::Repeated, Naming::NonAnonymous);
            if !cell.is_tight() || cell.lower.registers != self.params.n() {
                return Some("repeated consensus bounds must be tight at n".to_string());
            }
        }
        None
    }

    /// Renders the table in the layout of Figure 1 of the paper.
    pub fn render(&self) -> String {
        let p = self.params;
        let mut out = String::new();
        out.push_str(&format!(
            "Figure 1 — registers for {} (n={}, m={}, k={})\n",
            p,
            p.n(),
            p.m(),
            p.k()
        ));
        out.push_str(&format!(
            "{:<16} {:<28} {:<28}\n",
            "", "Repeated", "One-shot"
        ));
        for naming in [Naming::NonAnonymous, Naming::Anonymous] {
            let repeated = self.cell(Setting::Repeated, naming);
            let one_shot = self.cell(Setting::OneShot, naming);
            out.push_str(&format!(
                "{:<16} lower: {:<21} lower: {:<21}\n",
                naming.to_string(),
                repeated.lower.registers,
                one_shot.lower.registers
            ));
            out.push_str(&format!(
                "{:<16} upper: {:<21} upper: {:<21}\n",
                "", repeated.upper.registers, one_shot.upper.registers
            ));
        }
        out
    }
}

/// A row of a parameter sweep over Figure 1, used by the `figure1` bench
/// binary and EXPERIMENTS.md.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// The parameters of this row.
    pub params: Params,
    /// The evaluated table.
    pub figure1: Figure1,
}

/// Evaluates Figure 1 for every valid `(n, m, k)` with `n ≤ max_n`.
pub fn sweep(max_n: usize) -> Vec<SweepRow> {
    ParamSweep::up_to(max_n)
        .map(|params| SweepRow {
            params,
            figure1: Figure1::for_params(params),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: usize, m: usize, k: usize) -> Params {
        Params::new(n, m, k).unwrap()
    }

    #[test]
    fn repeated_nonanonymous_bounds_match_paper() {
        let fig = Figure1::for_params(p(10, 2, 4));
        let cell = fig.cell(Setting::Repeated, Naming::NonAnonymous);
        assert_eq!(cell.lower.registers, 8); // n + m - k
        assert_eq!(cell.upper.registers, 10); // min(n + 2m - k, n)
        assert_eq!(cell.gap(), 2);
    }

    #[test]
    fn oneshot_nonanonymous_lower_bound_is_two() {
        let fig = Figure1::for_params(p(10, 2, 4));
        assert_eq!(
            fig.cell(Setting::OneShot, Naming::NonAnonymous)
                .lower
                .registers,
            2
        );
    }

    #[test]
    fn anonymous_bounds_match_paper() {
        let fig = Figure1::for_params(p(10, 2, 4));
        let one_shot = fig.cell(Setting::OneShot, Naming::Anonymous);
        let repeated = fig.cell(Setting::Repeated, Naming::Anonymous);
        assert_eq!(one_shot.upper.registers, 3 * 6 + 4);
        assert_eq!(repeated.upper.registers, 3 * 6 + 4 + 1);
        assert_eq!(repeated.lower.registers, 8);
        // sqrt(2 * (10/4 - 2)) = 1, so the smallest non-excluded count is 2.
        assert_eq!(one_shot.lower.registers, 2);
    }

    #[test]
    fn anonymous_oneshot_lower_bound_recovers_fhs() {
        // m = k = 1: the bound is sqrt(n - 2), the Fich–Herlihy–Shavit bound.
        let fig = Figure1::for_params(p(102, 1, 1));
        let cell = fig.cell(Setting::OneShot, Naming::Anonymous);
        assert!((cell.lower.raw - 10.0).abs() < 1e-9);
        assert_eq!(cell.lower.registers, 11);
    }

    #[test]
    fn repeated_consensus_is_tight_at_n() {
        let fig = Figure1::for_params(p(7, 1, 1));
        let cell = fig.cell(Setting::Repeated, Naming::NonAnonymous);
        assert!(cell.is_tight());
        assert_eq!(cell.lower.registers, 7);
        assert_eq!(cell.upper.registers, 7);
    }

    #[test]
    fn consistency_holds_across_sweep() {
        for row in sweep(14) {
            assert_eq!(
                row.figure1.consistency_violation(),
                None,
                "inconsistent bounds for {:?}",
                row.params
            );
        }
    }

    #[test]
    fn render_contains_every_register_count() {
        let fig = Figure1::for_params(p(10, 2, 4));
        let rendered = fig.render();
        for cell in &fig.cells {
            assert!(
                rendered.contains(&cell.lower.registers.to_string()),
                "missing {}",
                cell.lower.registers
            );
            assert!(rendered.contains(&cell.upper.registers.to_string()));
        }
        assert!(rendered.contains("Repeated") && rendered.contains("One-shot"));
    }

    #[test]
    fn display_impls_are_informative() {
        assert_eq!(Setting::OneShot.to_string(), "one-shot");
        assert_eq!(Naming::Anonymous.to_string(), "anonymous");
        let b = lower_bound(p(6, 1, 2), Setting::Repeated, Naming::NonAnonymous);
        assert!(b.to_string().contains('5'));
    }

    #[test]
    fn sweep_has_one_row_per_valid_triple() {
        let rows = sweep(6);
        let expected: usize = (2..=6usize).map(|n| (1..n).sum::<usize>()).sum();
        assert_eq!(rows.len(), expected);
    }

    #[test]
    fn machine_search_rediscovers_the_oneshot_register_count() {
        // The adversary-search driver, pointed at the paper's own one-shot
        // algorithm, must rediscover a witness committing exactly the
        // n + 2m − k registers the Figure 1 upper bound provisions — the
        // machine-found counterpart of the hand-built construction, checked
        // on every known small cell for both goals.
        use sa_core::OneShotSetAgreement;
        use sa_model::ProcessId;
        use sa_runtime::{Executor, SearchConfig, SearchGoal, SymmetryMode};

        for (n, m, k) in [(2, 1, 1), (3, 1, 2), (3, 1, 1)] {
            let params = p(n, m, k);
            // The Figure 3 algorithm is provisioned with n + 2m − k snapshot
            // components; the Figure 1 table reports that same count clamped
            // to the trivial n-register fallback.
            let target = params.snapshot_components();
            assert_eq!(
                upper_bound(params, Setting::OneShot, Naming::NonAnonymous).registers,
                target.min(n)
            );
            let automata: Vec<OneShotSetAgreement> = (0..n)
                .map(|q| OneShotSetAgreement::new(params, ProcessId(q), 100 + q as u64))
                .collect();
            let initial = Executor::new(automata);
            for goal in [SearchGoal::Covering, SearchGoal::BlockWrite] {
                let report = sa_search::search(
                    &initial,
                    SearchConfig {
                        goal,
                        target_registers: target,
                        max_depth: 24,
                        max_states: 400_000,
                        threads: 1,
                        symmetry: SymmetryMode::ProcessIds,
                        reduction: sa_runtime::ReductionMode::SleepSets,
                    },
                );
                let witness = report
                    .witness
                    .unwrap_or_else(|| panic!("no {} witness for n={n} m={m} k={k}", goal.label()));
                assert_eq!(
                    witness.certificate.registers,
                    target,
                    "n={n} m={m} k={k} {}: rediscovered {} registers, the paper says {}",
                    goal.label(),
                    witness.certificate.registers,
                    target
                );
                assert!(report.target_reached && report.verified);
            }
        }
    }

    #[test]
    fn upper_bound_improves_prior_work_for_m1() {
        // Section 4: for m = 1 the paper's algorithm uses n - k + 2 components
        // versus 2(n - k) for [4]; the improvement is real whenever n - k > 2.
        for n in 5..20 {
            for k in 1..(n - 2) {
                let params = p(n, 1, k);
                let ours = upper_bound(params, Setting::OneShot, Naming::NonAnonymous).registers;
                let prior = 2 * (n - k);
                if n - k > 2 {
                    assert!(ours < prior, "no improvement for n={n} k={k}");
                }
            }
        }
    }
}
