//! Executable witnesses of the covering lower-bound mechanism (Theorem 2).
//!
//! Theorem 2 proves that repeated `k`-set agreement needs `n + m − k`
//! registers by building an execution in which `c = ⌈(k+1)/m⌉` disjoint
//! groups of `m` processes each run essentially in isolation: every trace a
//! group leaves in shared memory is overwritten (by a block write) before the
//! next group looks, so each group decides its own `m` values and the
//! execution produces `k + 1` distinct outputs — a contradiction whenever an
//! algorithm uses too few registers.
//!
//! This module makes that mechanism executable against the paper's own
//! algorithms instantiated with **deliberately under-provisioned** snapshot
//! objects (`OneShotSetAgreement::deficient` and friends):
//!
//! * [`GroupSequentialScheduler`] — the adversary schedule of the
//!   construction, reduced to its essence: groups of `m` processes run one
//!   group at a time, so a group's writes are the only fresh traces the next
//!   group can see (and an under-provisioned object cannot retain older
//!   traces).
//! * [`attack_one_shot`] / [`attack_repeated`] — run the attack against a
//!   given width and report how many distinct values were output.
//! * [`minimal_resilient_width`] — the smallest width at which the attack no
//!   longer violates k-agreement, compared against the paper's formulas in
//!   EXPERIMENTS.md.
//! * [`exhaustive_violation`] — for tiny configurations, search **all**
//!   interleavings for an agreement violation of an under-provisioned
//!   variant using the bounded explorer.
//! * [`hand_built_witness`] — the construction re-expressed as a replayable
//!   [`Witness`] (schedule + goal + certificate): the group-sequential
//!   schedule is recorded step by step, the best covering configuration
//!   along it is certified, and the result is checked by the **same**
//!   replay verifier (`sa-search`'s [`verify`]) that checks machine-found
//!   witnesses — one verification path for both.

use sa_core::{OneShotSetAgreement, RepeatedSetAgreement};
use sa_model::{DecisionSet, Params, ProcessId};
use sa_runtime::{
    agreement_predicate, explore, Executor, Exploration, ExploreConfig, RunConfig, RunReport,
    Scheduler, SchedulerView, SearchGoal,
};
use sa_search::{goal_for, verify, Certificate, Witness};
use std::fmt;

/// The adversary schedule of the covering construction: processes are
/// partitioned into groups and scheduled one group at a time; **within** a
/// group, members also run one by one (each to completion before the next
/// starts), exactly like the fragments `γ_j` of the Theorem 2 proof, where
/// "the processes in `Q_j` run one by one until each completes its first `s`
/// invocations of Propose".
///
/// At every point at most one process is taking steps, so the schedule is
/// `m`-obstruction-free for every `m ≥ 1` and a correct algorithm must let
/// every scheduled process decide — which is exactly what the lower-bound
/// argument exploits.
#[derive(Debug, Clone)]
pub struct GroupSequentialScheduler {
    groups: Vec<Vec<ProcessId>>,
}

impl GroupSequentialScheduler {
    /// Creates the scheduler from an explicit partition into groups.
    pub fn new(groups: Vec<Vec<ProcessId>>) -> Self {
        GroupSequentialScheduler { groups }
    }

    /// Partitions processes `0..n` into consecutive groups of size `m` (the
    /// last group may be smaller) — the shape used by the Theorem 2
    /// construction.
    pub fn consecutive(n: usize, m: usize) -> Self {
        let mut groups = Vec::new();
        let mut next = 0;
        while next < n {
            let end = (next + m).min(n);
            groups.push((next..end).map(ProcessId).collect());
            next = end;
        }
        GroupSequentialScheduler::new(groups)
    }

    /// The group partition driven by this scheduler.
    pub fn groups(&self) -> &[Vec<ProcessId>] {
        &self.groups
    }
}

impl Scheduler for GroupSequentialScheduler {
    fn next(&mut self, view: &SchedulerView<'_>) -> Option<ProcessId> {
        for group in &self.groups {
            if let Some(pick) = group.iter().copied().find(|p| view.runnable.contains(p)) {
                return Some(pick);
            }
        }
        None
    }

    fn name(&self) -> &str {
        "group-sequential"
    }
}

/// The outcome of a covering attack against a (possibly under-provisioned)
/// algorithm instance.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// The problem parameters.
    pub params: Params,
    /// The snapshot width the attacked algorithm was instantiated with.
    pub width: usize,
    /// Every decision produced during the attack.
    pub decisions: DecisionSet,
    /// Total steps executed.
    pub steps: u64,
    /// `true` if every scheduled process halted within the step budget.
    pub completed: bool,
}

impl AttackOutcome {
    fn from_report(params: Params, width: usize, report: &RunReport) -> Self {
        AttackOutcome {
            params,
            width,
            decisions: report.decisions.clone(),
            steps: report.steps,
            completed: report.all_halted(),
        }
    }

    /// The largest number of distinct values output in any single instance.
    pub fn max_distinct_outputs(&self) -> usize {
        self.decisions
            .instances()
            .map(|i| self.decisions.distinct_outputs(i))
            .max()
            .unwrap_or(0)
    }

    /// `true` if some instance output more than `k` distinct values — the
    /// k-agreement violation the lower bound predicts for under-provisioned
    /// algorithms.
    pub fn violates_agreement(&self) -> bool {
        self.max_distinct_outputs() > self.params.k()
    }
}

impl fmt::Display for AttackOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "width {:>3}: {} distinct outputs (k = {}) in {} steps{}",
            self.width,
            self.max_distinct_outputs(),
            self.params.k(),
            self.steps,
            if self.violates_agreement() {
                " — VIOLATION"
            } else {
                ""
            }
        )
    }
}

/// Runs the covering attack against the **one-shot** algorithm of Figure 3
/// instantiated with `width` snapshot components. Process `p` proposes the
/// distinct value `100 + p`.
///
/// For widths below the paper's `n + 2m − k` the pigeonhole step of the
/// k-agreement proof fails and the attack typically produces more than `k`
/// distinct outputs; at the paper's width it never can.
pub fn attack_one_shot(params: Params, width: usize, max_steps: u64) -> AttackOutcome {
    let automata: Vec<OneShotSetAgreement> = (0..params.n())
        .map(|p| {
            OneShotSetAgreement::deficient(params, ProcessId(p), 100 + p as u64, width)
                .expect("width is positive and ids are in range")
        })
        .collect();
    let mut exec = Executor::new(automata);
    let mut scheduler = GroupSequentialScheduler::consecutive(params.n(), params.m());
    let report = exec.run(&mut scheduler, RunConfig::with_max_steps(max_steps));
    AttackOutcome::from_report(params, width, &report)
}

/// Runs the covering attack against the **repeated** algorithm of Figure 4
/// with `instances` instances per process. Process `p` proposes
/// `100 · t + p` in its `t`-th instance, so inputs are distinct within every
/// instance.
pub fn attack_repeated(
    params: Params,
    width: usize,
    instances: usize,
    max_steps: u64,
) -> AttackOutcome {
    let automata: Vec<RepeatedSetAgreement> = (0..params.n())
        .map(|p| {
            let inputs = (1..=instances as u64).map(|t| 100 * t + p as u64).collect();
            RepeatedSetAgreement::deficient(params, ProcessId(p), inputs, width)
                .expect("width is positive and ids are in range")
        })
        .collect();
    let mut exec = Executor::new(automata);
    let mut scheduler = GroupSequentialScheduler::consecutive(params.n(), params.m());
    let report = exec.run(&mut scheduler, RunConfig::with_max_steps(max_steps));
    AttackOutcome::from_report(params, width, &report)
}

/// Sweeps the one-shot attack over widths `1..=params.snapshot_components()`
/// and returns one outcome per width, in increasing width order. Used by the
/// `lower_bound_witness` binary and the space benches.
pub fn width_sweep_one_shot(params: Params, max_steps: u64) -> Vec<AttackOutcome> {
    (1..=params.snapshot_components())
        .map(|width| attack_one_shot(params, width, max_steps))
        .collect()
}

/// The smallest snapshot width at which the covering attack no longer
/// violates k-agreement for the one-shot algorithm.
///
/// This is an **empirical** quantity for one specific adversary, so it is a
/// lower estimate of the true requirement; the paper's guarantee is that it
/// can never exceed `n + 2m − k` (at that width the algorithm is proven
/// correct against *every* adversary).
pub fn minimal_resilient_width(params: Params, max_steps: u64) -> usize {
    for outcome in width_sweep_one_shot(params, max_steps) {
        if !outcome.violates_agreement() {
            return outcome.width;
        }
    }
    params.snapshot_components()
}

/// Builds the Theorem 2 construction as a replayable [`Witness`]: runs the
/// one-shot algorithm at `width` snapshot components under the
/// group-sequential adversary, recording the exact schedule, and certifies
/// the best `goal` configuration encountered along it (most registers
/// charged, then widest covering, then shallowest — the same order the
/// machine search uses).
///
/// The returned witness has already been checked by the shared replay
/// verifier, so it is interchangeable with a machine-found one: same
/// format, same certificate semantics, same verification path. Returns
/// `None` when no configuration along the schedule exhibits the goal
/// within `max_steps` (e.g. `BlockWrite` at width 1 before any write
/// lands).
///
/// # Panics
///
/// Panics if the freshly recorded witness fails replay verification —
/// that would mean the construction and the verifier disagree, which is a
/// bug, not a caller error.
pub fn hand_built_witness(
    params: Params,
    width: usize,
    goal: SearchGoal,
    max_steps: u64,
) -> Option<Witness> {
    let build = || -> Executor<OneShotSetAgreement> {
        let automata: Vec<OneShotSetAgreement> = (0..params.n())
            .map(|p| {
                OneShotSetAgreement::deficient(params, ProcessId(p), 100 + p as u64, width)
                    .expect("width is positive and ids are in range")
            })
            .collect();
        Executor::new(automata)
    };
    let evaluator = goal_for::<OneShotSetAgreement>(goal);
    let mut exec = build();
    let mut scheduler = GroupSequentialScheduler::consecutive(params.n(), params.m());
    let mut schedule: Vec<ProcessId> = Vec::new();
    // best = (registers, registers_covered, schedule prefix, measure): the
    // earliest prefix wins ties because later equal measures never replace
    // an earlier one.
    let mut best: Option<(usize, usize, usize, Certificate)> = None;
    let mut consider = |depth: usize, exec: &Executor<OneShotSetAgreement>| {
        if let Some(measure) = evaluator.evaluate(exec) {
            let key = (measure.registers, measure.registers_covered);
            if best.as_ref().is_none_or(|(r, c, _, _)| key > (*r, *c)) {
                let cert = Certificate::from_measure(goal, depth as u64, measure);
                best = Some((key.0, key.1, depth, cert));
            }
        }
    };
    consider(0, &exec);
    while (schedule.len() as u64) < max_steps {
        let runnable = exec.runnable();
        let view = SchedulerView {
            step: schedule.len() as u64,
            runnable: &runnable,
        };
        let Some(process) = scheduler.next(&view) else {
            break;
        };
        exec.step(process);
        schedule.push(process);
        consider(schedule.len(), &exec);
    }
    let (_, _, depth, certificate) = best?;
    schedule.truncate(depth);
    let witness = Witness {
        goal,
        schedule,
        certificate,
    };
    verify(&build(), &witness)
        .expect("a freshly recorded construction must replay to its own certificate");
    Some(witness)
}

/// Exhaustively searches every interleaving (up to `config.max_depth` steps)
/// of the one-shot algorithm instantiated with `width` components for a
/// k-agreement violation. Only feasible for very small `(n, m, k)`.
pub fn exhaustive_violation(params: Params, width: usize, config: ExploreConfig) -> Exploration {
    let automata: Vec<OneShotSetAgreement> = (0..params.n())
        .map(|p| {
            OneShotSetAgreement::deficient(params, ProcessId(p), 100 + p as u64, width)
                .expect("width is positive and ids are in range")
        })
        .collect();
    let exec = Executor::new(automata);
    explore(&exec, config, agreement_predicate(params.k()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_groups_partition_all_processes() {
        let sched = GroupSequentialScheduler::consecutive(7, 3);
        assert_eq!(sched.groups().len(), 3);
        assert_eq!(sched.groups()[0].len(), 3);
        assert_eq!(sched.groups()[2], vec![ProcessId(6)]);
        let total: usize = sched.groups().iter().map(|g| g.len()).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn scheduler_prefers_earliest_unfinished_group() {
        let mut sched = GroupSequentialScheduler::new(vec![
            vec![ProcessId(0), ProcessId(1)],
            vec![ProcessId(2)],
        ]);
        // While p0/p1 are runnable the scheduler never picks p2.
        let runnable = vec![ProcessId(0), ProcessId(1), ProcessId(2)];
        for _ in 0..10 {
            let view = SchedulerView {
                step: 0,
                runnable: &runnable,
            };
            let pick = sched.next(&view).unwrap();
            assert_ne!(pick, ProcessId(2));
        }
        // Once group 0 has halted, p2 runs.
        let runnable = vec![ProcessId(2)];
        let view = SchedulerView {
            step: 0,
            runnable: &runnable,
        };
        assert_eq!(sched.next(&view), Some(ProcessId(2)));
        assert_eq!(sched.name(), "group-sequential");
    }

    #[test]
    fn scheduler_exhausts_when_nothing_is_runnable() {
        let mut sched = GroupSequentialScheduler::consecutive(3, 1);
        let view = SchedulerView {
            step: 0,
            runnable: &[],
        };
        assert_eq!(sched.next(&view), None);
    }

    #[test]
    fn under_provisioned_consensus_is_defeated() {
        // Obstruction-free consensus among 3 processes with only 2 components
        // (below both n + 2m - k = 4 and the repeated lower bound n + m - k = 3).
        let params = Params::new(3, 1, 1).unwrap();
        let outcome = attack_one_shot(params, 2, 100_000);
        assert!(outcome.completed, "attack did not finish");
        assert!(
            outcome.violates_agreement(),
            "expected a violation: {outcome}"
        );
    }

    #[test]
    fn paper_width_resists_the_attack() {
        for (n, m, k) in [(3, 1, 1), (4, 1, 2), (5, 2, 3), (6, 2, 2)] {
            let params = Params::new(n, m, k).unwrap();
            let outcome = attack_one_shot(params, params.snapshot_components(), 500_000);
            assert!(
                outcome.completed,
                "attack did not finish for n={n} m={m} k={k}"
            );
            assert!(
                !outcome.violates_agreement(),
                "paper width violated agreement: {outcome}"
            );
        }
    }

    #[test]
    fn repeated_attack_defeats_single_component() {
        let params = Params::new(4, 1, 2).unwrap();
        let outcome = attack_repeated(params, 1, 2, 200_000);
        assert!(outcome.completed);
        assert!(outcome.violates_agreement(), "{outcome}");
    }

    #[test]
    fn repeated_attack_at_paper_width_is_safe() {
        let params = Params::new(4, 1, 2).unwrap();
        let outcome = attack_repeated(params, params.snapshot_components(), 3, 500_000);
        assert!(outcome.completed);
        assert!(!outcome.violates_agreement(), "{outcome}");
    }

    #[test]
    fn minimal_resilient_width_never_exceeds_paper_width() {
        for (n, m, k) in [(3, 1, 1), (4, 1, 2), (4, 2, 3), (5, 2, 3)] {
            let params = Params::new(n, m, k).unwrap();
            let width = minimal_resilient_width(params, 300_000);
            assert!(
                width <= params.snapshot_components(),
                "resilient width {width} exceeds paper width for n={n} m={m} k={k}"
            );
            assert!(width >= 1);
        }
    }

    #[test]
    fn width_sweep_is_ordered_and_complete() {
        let params = Params::new(4, 1, 2).unwrap();
        let sweep = width_sweep_one_shot(params, 100_000);
        assert_eq!(sweep.len(), params.snapshot_components());
        for (i, outcome) in sweep.iter().enumerate() {
            assert_eq!(outcome.width, i + 1);
        }
        // The rendering mentions the width and the verdict.
        assert!(sweep[0].to_string().contains("width"));
    }

    #[test]
    fn exhaustive_search_finds_violation_in_tiny_config() {
        // 2 processes, consensus, a single component: some interleaving must
        // produce two distinct outputs.
        let params = Params::new(2, 1, 1).unwrap();
        let result = exhaustive_violation(params, 1, ExploreConfig::with_depth(40));
        assert!(result.violation.is_some(), "no violation found: {result:?}");
    }

    #[test]
    fn hand_built_witnesses_reach_the_paper_register_count() {
        // At the paper's width the group-sequential construction commits
        // exactly n + 2m − k registers (written or covered) — the count the
        // Theorem 2 argument charges — for both witness goals.
        for (n, m, k) in [(2, 1, 1), (3, 1, 2), (3, 1, 1), (4, 1, 2)] {
            let params = Params::new(n, m, k).unwrap();
            let width = params.snapshot_components();
            for goal in [SearchGoal::Covering, SearchGoal::BlockWrite] {
                let witness = hand_built_witness(params, width, goal, 10_000)
                    .unwrap_or_else(|| panic!("no {} witness for n={n} m={m} k={k}", goal.label()));
                assert_eq!(
                    witness.certificate.registers,
                    width,
                    "n={n} m={m} k={k} {}: {}",
                    goal.label(),
                    witness
                );
                assert_eq!(witness.schedule.len() as u64, witness.certificate.depth);
            }
        }
    }

    #[test]
    fn hand_built_witnesses_replay_through_the_shared_verifier() {
        let params = Params::new(3, 1, 1).unwrap();
        let width = params.snapshot_components();
        let witness = hand_built_witness(params, width, SearchGoal::BlockWrite, 10_000).unwrap();
        let initial = |width: usize| {
            let automata: Vec<OneShotSetAgreement> = (0..params.n())
                .map(|p| {
                    OneShotSetAgreement::deficient(params, ProcessId(p), 100 + p as u64, width)
                        .unwrap()
                })
                .collect();
            Executor::new(automata)
        };
        // The emitted witness re-verifies from a fresh initial configuration.
        let replayed = verify(&initial(width), &witness).expect("hand-built witness must verify");
        assert_eq!(replayed, witness.certificate);
        // A tampered certificate is caught by the same path.
        let mut tampered = witness.clone();
        tampered.certificate.registers += 1;
        assert!(matches!(
            verify(&initial(width), &tampered),
            Err(sa_search::VerifyError::CertificateMismatch { .. })
        ));
        // Replaying against the wrong initial configuration is caught too.
        assert!(verify(&initial(1), &witness).is_err());
    }

    #[test]
    fn hand_built_witness_is_none_before_any_write_lands() {
        // With a zero step budget nothing has been written yet, so no
        // covered location can already carry information: no block-write
        // witness exists (while a bare covering does — all processes start
        // poised to update component 0).
        let params = Params::new(3, 1, 1).unwrap();
        let width = params.snapshot_components();
        assert!(hand_built_witness(params, width, SearchGoal::BlockWrite, 0).is_none());
        let covering = hand_built_witness(params, width, SearchGoal::Covering, 0).unwrap();
        assert_eq!(covering.certificate.depth, 0);
        assert_eq!(covering.schedule, Vec::<ProcessId>::new());
    }

    #[test]
    fn exhaustive_search_verifies_paper_width_in_tiny_config() {
        let params = Params::new(2, 1, 1).unwrap();
        let result = exhaustive_violation(
            params,
            params.snapshot_components(),
            ExploreConfig::with_depth(24),
        );
        assert!(
            result.violation.is_none(),
            "unexpected violation: {result:?}"
        );
    }
}
