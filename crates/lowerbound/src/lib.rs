//! Executable lower-bound machinery for the set-agreement reproduction.
//!
//! The non-constructive half of "On the Space Complexity of Set Agreement"
//! (PODC 2015) consists of two lower-bound arguments and the bounds table of
//! Figure 1. This crate turns all three into running code:
//!
//! * [`bounds`] — every cell of **Figure 1** as an executable formula, with
//!   consistency relations, rendering and parameter sweeps (used by the
//!   `figure1` bench binary and EXPERIMENTS.md).
//! * [`blockwrite`] — the mechanical core of **Theorem 2**: covering
//!   configurations, block writes, the obliteration check (a block write
//!   erases every trace of a fragment confined to the covered locations) and
//!   the splice-invisibility check (re-exported from `sa-search`, which
//!   evaluates the same mechanics during adversary search).
//! * [`covering`] — the covering attack of **Theorem 2** run against
//!   deliberately under-provisioned instances of the paper's algorithms:
//!   group-sequential adversary schedules, width sweeps, the empirical
//!   "smallest resilient width", exhaustive searches over all
//!   interleavings for tiny configurations, and
//!   [`hand_built_witness`](covering::hand_built_witness) — the
//!   construction emitted as a replayable `sa-search` `Witness`, checked
//!   by the same replay verifier as machine-found ones.
//! * [`cloning`] — the cloning mechanism of **Lemma 9 / Theorem 10** for
//!   anonymous algorithms: lockstep clone schedules, the executable
//!   indistinguishability property, and the anonymous group-isolation
//!   attack.
//!
//! Lower bounds are statements about *all* algorithms, so no experiment can
//! prove them; what this crate provides are witnesses of the mechanisms the
//! proofs use (traces get overwritten, clones are indistinguishable) and
//! falsification evidence: the paper's algorithms, stripped of the registers
//! the bounds say are necessary, visibly violate k-agreement, while at the
//! paper's widths the same adversaries are powerless.
//!
//! # Example
//!
//! ```
//! use sa_lowerbound::bounds::{Figure1, Naming, Setting};
//! use sa_lowerbound::covering::attack_one_shot;
//! use sa_model::Params;
//!
//! let params = Params::new(4, 1, 2)?;
//! // Figure 1, repeated non-anonymous cell: lower n + m - k, upper n + 2m - k.
//! let table = Figure1::for_params(params);
//! let cell = table.cell(Setting::Repeated, Naming::NonAnonymous);
//! assert_eq!(cell.lower.registers, 3);
//! assert_eq!(cell.upper.registers, 4);
//!
//! // The covering attack defeats a 1-component instantiation of Figure 3...
//! assert!(attack_one_shot(params, 1, 100_000).violates_agreement());
//! // ...but not the paper's n + 2m - k = 4 components.
//! assert!(!attack_one_shot(params, 4, 100_000).violates_agreement());
//! # Ok::<(), sa_model::ParamsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod blockwrite;
pub mod bounds;
pub mod cloning;
pub mod covering;

pub use blockwrite::{block_write, covered_locations, obliterates, splice_is_invisible, GroupRun};
pub use bounds::{Bound, BoundsCell, Figure1, Naming, Setting, SweepRow};
pub use cloning::{clone_attack, clones_behave_identically, LockstepScheduler, ProcessBehaviour};
pub use covering::{
    attack_one_shot, attack_repeated, hand_built_witness, minimal_resilient_width, AttackOutcome,
    GroupSequentialScheduler,
};
