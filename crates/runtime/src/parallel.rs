//! The work-stealing exhaustive explorer.
//!
//! [`parallel_explore`] checks the same property as [`explore`](crate::explore)
//! — a safety predicate in **every** reachable configuration — but spreads
//! the search over a pool of worker threads, which is what pushes exhaustive
//! verification past the cell sizes the serial depth-first explorer can
//! finish in a reasonable budget.
//!
//! # Design
//!
//! The search is a **level-synchronized breadth-first traversal** with
//! work-stealing inside each level:
//!
//! * the current BFS level is the shared frontier: its `(Executor, schedule)`
//!   entries are pushed into a [`crossbeam::deque::Injector`], and each
//!   worker refills a local [`crossbeam::deque::Worker`] deque in batches,
//!   stealing from its peers' [`Stealer`](crossbeam::deque::Stealer)s when
//!   both run dry (cooperative termination: a worker exits once its own
//!   deque, the injector and every peer report `Empty`, retrying on
//!   contended `Retry` results);
//! * discovered successors are deduplicated against a **sharded seen-set**
//!   (shards selected by a [`StateKey`] prefix) holding the same
//!   collision-resistant 128-bit keys as the serial explorer;
//! * levels are separated by a barrier at which the next frontier is frozen,
//!   the predicate is evaluated once per newly discovered state, and
//!   violations are resolved.
//!
//! # Determinism
//!
//! The report is **byte-identical at any thread count** — matching the sweep
//! engine's guarantee that parallelism changes wall-clock time, never
//! output. Every reported field is a pure function of the state space:
//!
//! * a state's BFS depth does not depend on which worker discovered it, so
//!   `states_visited`, `paths`, `max_depth_reached` and the memory
//!   statistics are fixed by the reachable state space and the budgets;
//! * when the same successor is discovered from several parents in one
//!   level, the **lexicographically smallest** schedule is kept (parents'
//!   schedules are final when their level expands, so by induction every
//!   state carries the lexicographically smallest of its shortest
//!   schedules);
//! * budgets are enforced at level barriers, so truncation decisions never
//!   depend on scheduling races;
//! * sleep-set reduction keeps its masks deterministic the same way:
//!   concurrent sleep promises for one key merge by **intersection** (a
//!   commutative, associative operation), and stored-mask updates — the
//!   owed-transition revisits of Godefroid's state-matching discipline —
//!   are resolved only at barriers, while workers merely read masks frozen
//!   by the previous barrier;
//! * when a level discovers violations, the whole level is still finished
//!   and the violation with the lexicographically smallest schedule is
//!   reported — the first violation in breadth-first order, deterministic
//!   regardless of which worker stumbled on it first.
//!
//! Note the serial explorer visits states in depth-first order, so against
//! *violating* systems the two explorers may report different (both
//! correct) witness schedules, and `max_depth_reached`/`frontier_peak`
//! measure a stack rather than a level. On *verified* runs `states_visited`,
//! `verified` and the absence of a violation agree exactly; the
//! serial-vs-parallel equivalence suite pins that.

use crate::executor::Executor;
use crate::explore::{
    entry_bytes, keyed, keyed_relabeled, mask_of, persistent_set, persistent_set_applies,
    relabel_mask, replay, successor_sleep, unrelabel_mask, Exploration, ExploredViolation,
    FrontierSemantics, ReductionMode, StateKey, SymmetryMode, SymmetryPlan,
};
use crate::store::{
    read_segment, KeyTable, ScheduleArena, SegmentKind, SegmentWriter, SpillDir, SCHEDULE_ROOT,
};
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use sa_model::{Automaton, IdRelabeling, ProcessId};
use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of seen-set (and next-frontier) shards. A power of two so a
/// [`StateKey`] prefix selects a shard with a mask; 64 shards keep lock
/// contention negligible at any realistic worker count.
const SHARDS: usize = 64;

/// Configuration of a parallel bounded exploration.
///
/// Compared to [`ExploreConfig`](crate::ExploreConfig) there is no `dedup`
/// flag: the sharded seen-set *is* the shared search structure, and sound
/// (collision-resistant) dedup is always on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelExploreConfig {
    /// Worker threads; 0 means one per available CPU. The result does not
    /// depend on this value — only the wall-clock time does.
    pub threads: usize,
    /// Maximum schedule depth (breadth-first radius) to explore.
    pub max_depth: u64,
    /// Maximum number of states to visit before giving up. Enforced at
    /// level granularity: a level in flight is always finished, so the
    /// count may overshoot by up to one level, but never silently — the
    /// report is marked truncated whenever unexplored work remains.
    pub max_states: u64,
    /// Whether to deduplicate up to process-id symmetry. Like everything
    /// else here, canonicalization is a pure function of the state, so the
    /// byte-identical-at-any-thread-count guarantee holds with symmetry on.
    /// Falls back to [`SymmetryMode::Off`] for automata that do not opt in
    /// (see [`SymmetryMode::ProcessIds`]).
    pub symmetry: SymmetryMode,
    /// Whether to prune commuting interleavings with sleep sets (falls back
    /// to [`ReductionMode::Off`] beyond 64 processes — see
    /// [`ReductionMode::SleepSets`]). Sleep masks ride the seen-set and the
    /// next-frontier merge, and both are resolved with order-independent
    /// operations (mask intersection) at single-threaded barriers, so the
    /// byte-identical-at-any-thread-count guarantee holds with reduction
    /// on. Composes with [`symmetry`](Self::symmetry): masks are kept in
    /// canonical process coordinates. Seen-set shards stay resident under
    /// reduction (their masks must remain probe-able), so only BFS levels
    /// spill then.
    pub reduction: ReductionMode,
    /// Whether the explorer may spill frozen BFS levels (and seen-set
    /// shards) to disk when they exceed
    /// [`max_resident_bytes`](Self::max_resident_bytes). Spilled level
    /// records carry only a schedule-arena node and an orbit weight; the
    /// executor states are rebuilt by deterministic replay, so the report
    /// stays byte-identical with spill on or off — and still at any thread
    /// count — except for [`Exploration::spilled_entries`].
    pub spill: bool,
    /// A budget, in estimated deep bytes, on a resident BFS level. `0`
    /// means unlimited. Over budget: with [`spill`](Self::spill) the frozen
    /// level moves to disk (and seen shards follow when their tables exceed
    /// the same budget); without it the search deterministically truncates
    /// at the level barrier, reporting the pending count in
    /// [`Exploration::pending_at_exit`].
    pub max_resident_bytes: u64,
}

impl Default for ParallelExploreConfig {
    fn default() -> Self {
        ParallelExploreConfig {
            threads: 0,
            max_depth: 60,
            max_states: 2_000_000,
            symmetry: SymmetryMode::Off,
            reduction: ReductionMode::Off,
            spill: false,
            max_resident_bytes: 0,
        }
    }
}

impl ParallelExploreConfig {
    /// A config with the given worker count.
    pub fn with_threads(threads: usize) -> Self {
        ParallelExploreConfig {
            threads,
            ..ParallelExploreConfig::default()
        }
    }

    /// Resolves `threads = 0` to the machine's parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// A frontier entry awaiting expansion. States are kept in their *original*
/// labeling — canonical forms exist only inside the dedup keys and masks.
struct Entry<A: Automaton> {
    /// The configuration; absent when the level was thawed from disk —
    /// workers rebuild it by deterministic replay.
    state: Option<Executor<A>>,
    /// Schedule-arena node of the delta-encoded path that produced it, the
    /// lexicographically smallest among its shortest schedules.
    node: u32,
    /// Orbit-size lower bound (0 for revisit entries — the state was
    /// already weighed when it was first visited).
    orbit_lower: u64,
    /// The sleep set the entry arrived with, in its own labeling (always 0
    /// without sleep-set reduction).
    sleep: u64,
    /// `Some(owed)` marks a **revisit**: an already-visited state whose
    /// stored sleep mask promised too little for this level's arrivals —
    /// exactly the `owed` transitions must still be expanded. Revisits are
    /// not re-counted in `states_visited`.
    expand: Option<u64>,
}

/// A successor discovered while expanding a level, before the barrier
/// resolves it: the state, its (still mergeable) schedule plus the
/// `(parent, step)` delta the arena will commit, the orbit-size lower
/// bound, the entry's deep-byte charge, and whether the predicate rejected
/// it.
///
/// With symmetry on, several *distinct* configurations of one orbit can be
/// discovered under the same canonical key in one level; the barrier keeps
/// the one whose schedule is lexicographically smallest (state, schedule,
/// delta, weight and bytes are always replaced together, so the retained
/// tuple stays consistent and deterministic). All orbit members have
/// relabel-identical futures and identical predicate verdicts, so which one
/// expands cannot change any reported verdict — only the (deterministically
/// chosen) witness labels.
struct Discovered<A: Automaton> {
    state: Executor<A>,
    schedule: Vec<ProcessId>,
    parent: u32,
    step: ProcessId,
    orbit_lower: u64,
    bytes: u64,
    violating: bool,
    /// Intersection of the canonical-coordinate sleep masks of every
    /// arrival at this key this level (0 without sleep-set reduction).
    /// Intersection is commutative, so the merged mask never depends on
    /// arrival order.
    sleep_canon: u64,
    /// The canonical relabeling of the **retained** member — what converts
    /// the merged canonical masks back into that member's own labeling at
    /// the barrier. Replaced together with the state.
    relabel: IdRelabeling,
    /// `true` if the key was already in the seen-set when the level began
    /// (stable: the seen-set only changes at barriers): the barrier
    /// resolves it into a revisit entry instead of a fresh one. Seen states
    /// were predicate-checked at first discovery, so revisit candidates are
    /// never violating.
    revisit: bool,
}

/// One seen-set shard: a live open-addressed key table plus the sealed
/// segments its earlier generations were spilled to. Spilled keys are
/// invisible to [`ShardedSeen::contains`] — workers may re-discover a
/// spilled state, and the barrier filters those candidates against the
/// on-disk generations before treating them as new. That deferral is sound:
/// every spilled key belongs to a state whose level already completed
/// without ending the search, so dropping its re-discovery changes no
/// verdict and no statistic.
struct SeenShard {
    live: KeyTable,
    /// Key → canonical sleep mask: the seen structure under sleep-set
    /// reduction (the `live` table stays empty then, and vice versa). The
    /// map is only ever probed by key, never iterated, so the std
    /// `HashMap`'s seeded hasher cannot leak nondeterminism into output.
    masks: HashMap<StateKey, u64>,
    spilled: Vec<PathBuf>,
    spilled_count: u64,
}

/// The seen-set, sharded by key prefix so workers rarely contend on the
/// same lock.
struct ShardedSeen {
    shards: Vec<Mutex<SeenShard>>,
}

impl ShardedSeen {
    fn new() -> Self {
        ShardedSeen {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(SeenShard {
                        live: KeyTable::new(),
                        masks: HashMap::new(),
                        spilled: Vec::new(),
                        spilled_count: 0,
                    })
                })
                .collect(),
        }
    }

    /// `true` if the key is in the shard's **live** table. Spilled keys
    /// report `false`; see [`SeenShard`] for why that is sound.
    fn contains(&self, key: &StateKey) -> bool {
        self.shards[key.shard(SHARDS)]
            .lock()
            .expect("seen shard poisoned")
            .live
            .contains(key)
    }

    fn insert(&self, key: StateKey) -> bool {
        self.shards[key.shard(SHARDS)]
            .lock()
            .expect("seen shard poisoned")
            .live
            .insert(key)
    }

    /// The canonical sleep mask stored for a visited key, `None` if the key
    /// is unseen. Only meaningful under sleep-set reduction; stable while a
    /// level is in flight (masks change only at barriers), which is what
    /// makes the workers' owed-transition test deterministic.
    fn stored_mask(&self, key: &StateKey) -> Option<u64> {
        self.shards[key.shard(SHARDS)]
            .lock()
            .expect("seen shard poisoned")
            .masks
            .get(key)
            .copied()
    }

    /// Commits a fresh key with its canonical sleep mask (the reduction
    /// counterpart of [`insert`](Self::insert)).
    fn insert_masked(&self, key: StateKey, mask: u64) -> bool {
        self.shards[key.shard(SHARDS)]
            .lock()
            .expect("seen shard poisoned")
            .masks
            .insert(key, mask)
            .is_none()
    }

    /// Shrinks the stored promise of an already-visited key (barrier-side
    /// revisit resolution).
    fn update_mask(&self, key: StateKey, mask: u64) {
        self.shards[key.shard(SHARDS)]
            .lock()
            .expect("seen shard poisoned")
            .masks
            .insert(key, mask);
    }

    /// Total distinct keys committed, live and spilled.
    fn len(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                let shard = s.lock().expect("seen shard poisoned");
                shard.live.len() as u64 + shard.spilled_count + shard.masks.len() as u64
            })
            .sum()
    }

    /// Deep bytes of the live tables (what a spill decision polices).
    fn live_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("seen shard poisoned")
                    .live
                    .allocated_bytes()
            })
            .sum()
    }

    /// The deterministic byte charge of holding **every** committed key
    /// resident, computed from per-shard counts alone — so the reported
    /// figure is identical with spill on or off, at any thread count.
    fn table_bytes_if_resident(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                let shard = s.lock().expect("seen shard poisoned");
                let count =
                    shard.live.len() as u64 + shard.spilled_count + shard.masks.len() as u64;
                // One mask word per entry under reduction — the same charge
                // the serial explorer's masked seen-set reports.
                KeyTable::bytes_for_len(count)
                    + shard.masks.len() as u64 * std::mem::size_of::<u64>() as u64
            })
            .sum()
    }

    /// Moves every non-empty live table to a sealed on-disk generation.
    fn spill_live(&self, dir: &SpillDir, generation: u64) {
        for (index, shard) in self.shards.iter().enumerate() {
            let mut shard = shard.lock().expect("seen shard poisoned");
            if shard.live.is_empty() {
                continue;
            }
            let path = dir.file(&format!("seen-{index:02}-{generation:08}.seg"));
            let mut writer = SegmentWriter::create(&path, SegmentKind::SeenShard, generation)
                .expect("creating a seen-shard spill segment");
            for key in shard.live.iter() {
                let parts = key.parts();
                let mut record = [0u8; 16];
                record[..8].copy_from_slice(&parts[0].to_le_bytes());
                record[8..].copy_from_slice(&parts[1].to_le_bytes());
                writer.append(&record).expect("writing a seen-shard key");
            }
            writer.finish().expect("sealing a seen-shard spill segment");
            shard.spilled_count += shard.live.len() as u64;
            shard.spilled.push(path);
            shard.live = KeyTable::new();
        }
    }
}

/// Loads a shard's spilled generations back into one lookup table (used at
/// barriers to filter re-discovered states).
fn load_spilled_keys(paths: &[PathBuf]) -> KeyTable {
    let mut table = KeyTable::new();
    for path in paths {
        let (_tag, records) =
            read_segment(path, SegmentKind::SeenShard).expect("reading a seen-shard segment");
        for record in records {
            assert_eq!(record.len(), 16, "seen-shard records are 16-byte keys");
            let lo = u64::from_le_bytes(record[..8].try_into().expect("8 bytes"));
            let hi = u64::from_le_bytes(record[8..].try_into().expect("8 bytes"));
            table.insert(StateKey::from_parts([lo, hi]));
        }
    }
    table
}

/// A frozen BFS level: resident entries, or a sealed segment of
/// `(arena node, orbit weight, sleep mask, owed mask)` records awaiting
/// thaw.
enum PendingLevel<A: Automaton> {
    Resident(Vec<Entry<A>>),
    Spilled { path: PathBuf, count: u64 },
}

/// Length of one spilled-level record: arena node (u32), orbit weight
/// (u64), sleep mask (u64), revisit flag (u8), owed mask (u64) — all LE.
const LEVEL_RECORD_LEN: usize = 4 + 8 + 8 + 1 + 8;

/// Encodes one spilled-level record.
fn encode_level_record(
    node: u32,
    orbit_lower: u64,
    sleep: u64,
    expand: Option<u64>,
) -> [u8; LEVEL_RECORD_LEN] {
    let mut record = [0u8; LEVEL_RECORD_LEN];
    record[..4].copy_from_slice(&node.to_le_bytes());
    record[4..12].copy_from_slice(&orbit_lower.to_le_bytes());
    record[12..20].copy_from_slice(&sleep.to_le_bytes());
    record[20] = expand.is_some() as u8;
    record[21..29].copy_from_slice(&expand.unwrap_or(0).to_le_bytes());
    record
}

/// Decodes [`encode_level_record`] output.
fn decode_level_record(record: &[u8]) -> (u32, u64, u64, Option<u64>) {
    assert_eq!(
        record.len(),
        LEVEL_RECORD_LEN,
        "level records are {LEVEL_RECORD_LEN} bytes"
    );
    let node = u32::from_le_bytes(record[..4].try_into().expect("4 bytes"));
    let orbit = u64::from_le_bytes(record[4..12].try_into().expect("8 bytes"));
    let sleep = u64::from_le_bytes(record[12..20].try_into().expect("8 bytes"));
    let expand =
        (record[20] != 0).then(|| u64::from_le_bytes(record[21..29].try_into().expect("8 bytes")));
    (node, orbit, sleep, expand)
}

/// Pulls the next task for a worker: local deque first, then the shared
/// injector (in batches), then the peers — retrying while any source
/// reports a contended `Retry`, terminating once all report `Empty`.
fn find_task<T>(local: &Worker<T>, injector: &Injector<T>, stealers: &[Stealer<T>]) -> Option<T> {
    if let Some(task) = local.pop() {
        return Some(task);
    }
    loop {
        let mut contended = false;
        match injector.steal_batch_and_pop(local) {
            Steal::Success(task) => return Some(task),
            Steal::Retry => contended = true,
            Steal::Empty => {}
        }
        for stealer in stealers {
            match stealer.steal() {
                Steal::Success(task) => return Some(task),
                Steal::Retry => contended = true,
                Steal::Empty => {}
            }
        }
        if !contended {
            return None;
        }
        std::hint::spin_loop();
    }
}

/// Exhaustively explores every interleaving of the executor's processes on a
/// pool of work-stealing workers, checking `predicate` in every reachable
/// configuration — including the initial one.
///
/// The report is byte-identical at any `config.threads` (see the module
/// docs for how); the predicate must therefore be pure with respect to the
/// reported fields, though it may accumulate its own statistics through
/// interior mutability. It is evaluated once per newly discovered dedup key
/// (in nondeterministic order), plus once more per *violating* key at the
/// level barrier to bind the description to the retained witness state.
/// With [`SymmetryMode::ProcessIds`] the predicate must additionally be
/// relabeling-invariant — true of any predicate over decided value sets
/// and memory contents, like the safety properties.
pub fn parallel_explore<A, F>(
    initial: &Executor<A>,
    config: ParallelExploreConfig,
    predicate: F,
) -> Exploration
where
    A: Automaton + Clone + Hash + Send + Sync,
    A::Value: Hash + Clone + Eq + Debug + Send + Sync,
    F: Fn(&Executor<A>) -> Option<String> + Sync,
{
    let threads = config.effective_threads();
    let plan = SymmetryPlan::for_executor(initial, config.symmetry);
    // Sleep masks are u64 bit sets riding the (always-on) seen-set, so
    // reduction falls back only when the system outgrows the mask width.
    let n = initial.process_count();
    let reduce = matches!(
        config.reduction,
        ReductionMode::SleepSets | ReductionMode::PersistentSets
    ) && n > 0
        && n <= u64::BITS as usize;
    // Persistent-set cuts ride on top of the sleep discipline. With no DFS
    // path to hang backtrack sets on, the cut is applied only at states
    // where it is locally provable ([`persistent_set_applies`]): there the
    // non-members have no future operations, so pset-first expansion covers
    // every behavior (the state graph is acyclic — each step advances a
    // bounded program — and violations are stable), and the stored promise
    // mask can stay the plain sleep mask. Both the set and the gate are
    // pure functions of the configuration, keeping reports byte-identical
    // at any worker count.
    let persistent = reduce && config.reduction == ReductionMode::PersistentSets;
    let mut result = Exploration {
        states_visited: 0,
        paths: 0,
        violation: None,
        truncated: false,
        max_depth_reached: 0,
        frontier_peak: 0,
        frontier_semantics: FrontierSemantics::BfsLevelWidth,
        pending_at_exit: 0,
        seen_entries: 0,
        approx_bytes: 0,
        spilled_entries: 0,
        symmetry_applied: plan.applied(),
        full_states_lower_bound: 0,
        reduction_applied: reduce,
        expansions: 0,
        sleep_pruned: 0,
        persistent_expanded: 0,
        states_cut: 0,
    };
    if let Some(description) = predicate(initial) {
        result.states_visited = 1;
        result.full_states_lower_bound = 1;
        result.violation = Some(ExploredViolation {
            schedule: Vec::new(),
            description,
        });
        return result;
    }
    let seen = ShardedSeen::new();
    let (initial_key, initial_orbit) = keyed(initial, &plan);
    if reduce {
        // The root arrives with the empty sleep set, whose canonical image
        // is itself.
        seen.insert_masked(initial_key, 0);
    } else {
        seen.insert(initial_key);
    }
    // Delta-encoded schedules: every frontier entry references an arena
    // node; the node chain materializes its schedule. The arena is only
    // mutated at single-threaded barriers, so workers share it by
    // reference while a level is in flight.
    let mut arena = ScheduleArena::new();
    let cap = config.max_resident_bytes;
    let mut spill_dir: Option<SpillDir> = None;
    let mut seen_spill_generation: u64 = 0;
    let mut pending: PendingLevel<A> = PendingLevel::Resident(vec![Entry {
        state: Some(initial.clone()),
        node: SCHEDULE_ROOT,
        orbit_lower: initial_orbit,
        sleep: 0,
        expand: None,
    }]);
    // Peak deep bytes of any single level — the frontier term of
    // `approx_bytes`. Tracked from barrier sums (plus the root entry), so
    // it is a pure function of the state space.
    let mut level_bytes_peak: u64 = entry_bytes(initial, 0);
    let mut depth: u64 = 0;
    loop {
        // Thaw a spilled level: records carry only (node, orbit); workers
        // rebuild the executors by replaying the materialized schedules.
        let level: Vec<Entry<A>> =
            match std::mem::replace(&mut pending, PendingLevel::Resident(Vec::new())) {
                PendingLevel::Resident(entries) => entries,
                PendingLevel::Spilled { path, count } => {
                    let (_tag, records) = read_segment(&path, SegmentKind::FrontierLevel)
                        .expect("reading back a spilled level segment");
                    let _ = std::fs::remove_file(&path);
                    debug_assert_eq!(records.len() as u64, count);
                    records
                        .iter()
                        .map(|record| {
                            let (node, orbit, sleep, expand) = decode_level_record(record);
                            Entry {
                                state: None,
                                node,
                                orbit_lower: orbit,
                                sleep,
                                expand,
                            }
                        })
                        .collect()
                }
            };
        // Revisit entries re-expand owed transitions of an already-counted
        // state; only fresh entries are visits.
        let fresh = level.iter().filter(|e| e.expand.is_none()).count() as u64;
        result.states_visited += fresh;
        for entry in &level {
            result.full_states_lower_bound = result
                .full_states_lower_bound
                .saturating_add(entry.orbit_lower);
        }
        result.frontier_peak = result.frontier_peak.max(level.len() as u64);
        result.max_depth_reached = depth;
        let at_depth_limit = depth >= config.max_depth;

        // Expand the level across the worker pool. Successors land in the
        // sharded next-frontier map keyed by state, merging duplicate
        // discoveries to the lexicographically smallest schedule.
        let next: Vec<Mutex<HashMap<StateKey, Discovered<A>>>> =
            (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect();
        let terminal_paths = AtomicU64::new(0);
        let expansions = AtomicU64::new(0);
        let sleep_pruned = AtomicU64::new(0);
        let persistent_expanded = AtomicU64::new(0);
        let states_cut = AtomicU64::new(0);
        let depth_cut = AtomicBool::new(false);
        let injector: Injector<Entry<A>> = Injector::new();
        for entry in level {
            injector.push(entry);
        }
        let workers: Vec<Worker<Entry<A>>> = (0..threads).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<Entry<A>>> = workers.iter().map(Worker::stealer).collect();
        std::thread::scope(|scope| {
            for local in workers {
                let stealers = &stealers;
                let injector = &injector;
                let seen = &seen;
                let next = &next;
                let terminal_paths = &terminal_paths;
                let expansions = &expansions;
                let sleep_pruned = &sleep_pruned;
                let persistent_expanded = &persistent_expanded;
                let states_cut = &states_cut;
                let depth_cut = &depth_cut;
                let predicate = &predicate;
                let plan = &plan;
                let arena = &arena;
                scope.spawn(move || {
                    while let Some(entry) = find_task(&local, injector, stealers) {
                        let Entry {
                            state,
                            node,
                            sleep,
                            expand,
                            ..
                        } = entry;
                        let schedule = arena.materialize(node);
                        let state = state.unwrap_or_else(|| replay(initial, &schedule));
                        let is_revisit = expand.is_some();
                        let runnable = state.runnable();
                        if runnable.is_empty() {
                            if !is_revisit {
                                terminal_paths.fetch_add(1, Ordering::Relaxed);
                            }
                            continue;
                        }
                        if at_depth_limit {
                            // The depth bound cut this path short. A
                            // revisit's state was already a counted path
                            // when it first hit the bound.
                            if !is_revisit {
                                terminal_paths.fetch_add(1, Ordering::Relaxed);
                            }
                            depth_cut.store(true, Ordering::Relaxed);
                            continue;
                        }
                        // Fresh entries expand everything enabled outside
                        // their sleep set; revisits exactly the owed
                        // transitions. (Enabledness is monotone, so both
                        // masks only name still-runnable processes.)
                        let runnable_mask = mask_of(&runnable);
                        let mut targets = expand.unwrap_or(runnable_mask & !sleep);
                        if reduce && !is_revisit {
                            sleep_pruned.fetch_add(
                                (sleep & runnable_mask).count_ones() as u64,
                                Ordering::Relaxed,
                            );
                            // Fresh states under persistent-set reduction
                            // narrow their expansion to the persistent
                            // subset where the cut is locally provable;
                            // owed revisits always expand exactly what was
                            // demanded. Both checks are pure, so the
                            // narrowed mask is worker-count-invariant.
                            if persistent {
                                let pset = persistent_set(&state, &runnable);
                                if persistent_set_applies(&state, pset, &runnable) {
                                    let cut = targets & !pset;
                                    if cut != 0 {
                                        states_cut
                                            .fetch_add(cut.count_ones() as u64, Ordering::Relaxed);
                                        targets &= pset;
                                    }
                                    persistent_expanded
                                        .fetch_add(targets.count_ones() as u64, Ordering::Relaxed);
                                }
                            }
                        }
                        let mut sleep_cur = sleep;
                        for process in runnable {
                            let bit = 1u64 << process.index();
                            if targets & bit == 0 {
                                continue;
                            }
                            expansions.fetch_add(1, Ordering::Relaxed);
                            let mut successor = state.clone();
                            successor.step(process);
                            // The successor sleeps on every still-independent
                            // member of the *current* sleep set, which grows
                            // by each transition expanded from this state.
                            // Growing it is sound even when the successor is
                            // skipped below: a skip means the successor's
                            // coverage is promised by a stored mask.
                            let child_sleep = if reduce {
                                successor_sleep(&state, process, sleep_cur)
                            } else {
                                0
                            };
                            sleep_cur |= bit;
                            let (key, orbit_lower, relabel, canon_sleep, revisit) = if reduce {
                                let (key, orbit_lower, relabel) = keyed_relabeled(&successor, plan);
                                let canon_sleep = relabel_mask(child_sleep, &relabel);
                                match seen.stored_mask(&key) {
                                    Some(stored) => {
                                        // Visited with stored promise M: its
                                        // expansion covers enabled∖M. This
                                        // arrival needs enabled∖Z — anything
                                        // in M∖Z is still owed. Nothing owed
                                        // ⇒ skip; masks are stable during
                                        // the level, so the test is
                                        // deterministic.
                                        if stored & !canon_sleep == 0 {
                                            continue;
                                        }
                                        (key, 0, relabel, canon_sleep, true)
                                    }
                                    None => (key, orbit_lower, relabel, canon_sleep, false),
                                }
                            } else {
                                let (key, orbit_lower) = keyed(&successor, plan);
                                if seen.contains(&key) {
                                    // A spilled key reads as unseen here; the
                                    // barrier re-filters against the on-disk
                                    // generations before committing.
                                    continue;
                                }
                                (key, orbit_lower, IdRelabeling::identity(0), 0, false)
                            };
                            let mut successor_schedule = schedule.clone();
                            successor_schedule.push(process);
                            let bytes = entry_bytes(&successor, successor_schedule.len());
                            let mut shard =
                                next[key.shard(SHARDS)].lock().expect("next shard poisoned");
                            match shard.entry(key) {
                                std::collections::hash_map::Entry::Occupied(mut occupied) => {
                                    let kept = occupied.get_mut();
                                    // Sleep promises of concurrent arrivals
                                    // merge by intersection — commutative,
                                    // so the merged mask never depends on
                                    // arrival order.
                                    kept.sleep_canon &= canon_sleep;
                                    // Same key, different parent: keep the
                                    // lexicographically smallest schedule —
                                    // and the state it produced, which with
                                    // symmetry on may be a different member
                                    // of the same orbit — so the retained
                                    // tuple never depends on timing.
                                    if successor_schedule < kept.schedule {
                                        kept.state = successor;
                                        kept.schedule = successor_schedule;
                                        kept.parent = node;
                                        kept.step = process;
                                        // The orbit weight, byte charge and
                                        // relabeling belong to the retained
                                        // member, so they travel with the
                                        // state to stay deterministic.
                                        kept.orbit_lower = orbit_lower;
                                        kept.bytes = bytes;
                                        kept.relabel = relabel;
                                    }
                                }
                                std::collections::hash_map::Entry::Vacant(vacant) => {
                                    // First discovery this level: evaluate
                                    // the predicate once per fresh key
                                    // (verdicts are identical across an
                                    // orbit, so whichever member arrives
                                    // first decides the same way; revisits
                                    // were checked at first discovery).
                                    let violating = !revisit && predicate(&successor).is_some();
                                    vacant.insert(Discovered {
                                        state: successor,
                                        schedule: successor_schedule,
                                        parent: node,
                                        step: process,
                                        orbit_lower,
                                        bytes,
                                        violating,
                                        sleep_canon: canon_sleep,
                                        relabel,
                                        revisit,
                                    });
                                }
                            }
                        }
                    }
                });
            }
        });
        result.paths += terminal_paths.load(Ordering::Relaxed);
        result.expansions += expansions.load(Ordering::Relaxed);
        result.sleep_pruned += sleep_pruned.load(Ordering::Relaxed);
        result.persistent_expanded += persistent_expanded.load(Ordering::Relaxed);
        result.states_cut += states_cut.load(Ordering::Relaxed);
        if at_depth_limit {
            result.truncated |= depth_cut.load(Ordering::Relaxed);
            break;
        }

        // Barrier: filter candidates against spilled seen generations,
        // commit the survivors' keys and arena deltas, resolve violations,
        // freeze the next frontier. The spilled-filter runs FIRST: a
        // re-discovered spilled key must vanish before violation handling,
        // which keeps the output identical to a spill-off run (a seen key
        // is never violating — its discovery level would have ended the
        // search). Violation descriptions are (re)computed from the
        // *retained* state, so the reported witness schedule and its
        // description always describe the same configuration, whichever
        // orbit member was discovered first.
        let mut violations: Vec<ExploredViolation> = Vec::new();
        let mut next_level: Vec<Entry<A>> = Vec::new();
        let mut next_level_bytes: u64 = 0;
        for (index, shard) in next.into_iter().enumerate() {
            let candidates = shard.into_inner().expect("next shard poisoned");
            if candidates.is_empty() {
                continue;
            }
            let spilled_paths = {
                let shard = seen.shards[index].lock().expect("seen shard poisoned");
                shard.spilled.clone()
            };
            let spilled_keys =
                (!spilled_paths.is_empty()).then(|| load_spilled_keys(&spilled_paths));
            for (key, discovered) in candidates {
                if discovered.revisit {
                    // Wake the owed transitions: shrink the stored promise
                    // to what this level's arrivals jointly cover, and
                    // queue a revisit for exactly the difference — masks
                    // converted into the retained member's own labeling.
                    // (Seen shards never spill under reduction, so the
                    // stored mask is always live here.)
                    let stored = seen
                        .stored_mask(&key)
                        .expect("revisit candidates carry a stored mask");
                    let owed_canon = stored & !discovered.sleep_canon;
                    debug_assert_ne!(
                        owed_canon, 0,
                        "a candidate survived the worker-side owed test, and merging \
                         can only grow the owed set"
                    );
                    seen.update_mask(key, stored & discovered.sleep_canon);
                    let node = arena.push(discovered.parent, discovered.step);
                    next_level_bytes += discovered.bytes;
                    next_level.push(Entry {
                        state: Some(discovered.state),
                        node,
                        orbit_lower: 0,
                        sleep: unrelabel_mask(discovered.sleep_canon, &discovered.relabel),
                        expand: Some(unrelabel_mask(owed_canon, &discovered.relabel)),
                    });
                    continue;
                }
                if let Some(spilled) = &spilled_keys {
                    if spilled.contains(&key) {
                        continue;
                    }
                }
                let inserted = if reduce {
                    seen.insert_masked(key, discovered.sleep_canon)
                } else {
                    seen.insert(key)
                };
                if !inserted {
                    continue;
                }
                if discovered.violating {
                    let description = predicate(&discovered.state).expect(
                        "the predicate rejected an orbit member of this state; verdicts \
                         must be pure and relabeling-invariant",
                    );
                    violations.push(ExploredViolation {
                        schedule: discovered.schedule,
                        description,
                    });
                } else {
                    let node = arena.push(discovered.parent, discovered.step);
                    next_level_bytes += discovered.bytes;
                    let sleep = if reduce {
                        unrelabel_mask(discovered.sleep_canon, &discovered.relabel)
                    } else {
                        0
                    };
                    next_level.push(Entry {
                        state: Some(discovered.state),
                        node,
                        orbit_lower: discovered.orbit_lower,
                        sleep,
                        expand: None,
                    });
                }
            }
        }
        if !violations.is_empty() {
            violations.sort_by(|a, b| a.schedule.cmp(&b.schedule));
            let chosen = violations.swap_remove(0);
            result.max_depth_reached = result.max_depth_reached.max(chosen.schedule.len() as u64);
            result.violation = Some(chosen);
            break;
        }
        if next_level.is_empty() {
            break;
        }
        level_bytes_peak = level_bytes_peak.max(next_level_bytes);
        if result.states_visited >= config.max_states {
            // Budget exhausted while work remains — at level granularity,
            // so the decision is a pure function of the state space.
            result.truncated = true;
            result.pending_at_exit = next_level.len() as u64;
            break;
        }
        if cap > 0 && !config.spill && next_level_bytes > cap {
            // Over the resident-byte budget with spill disabled: a
            // deterministic truncation, decided at the barrier from the
            // frozen level alone.
            result.truncated = true;
            result.pending_at_exit = next_level.len() as u64;
            break;
        }
        if config.spill && cap > 0 && next_level_bytes > cap {
            // Freeze the level to a sealed segment of (node, orbit)
            // records; the executors are dropped here and rebuilt by
            // replay when the level thaws.
            let dir = match &spill_dir {
                Some(dir) => dir,
                None => {
                    spill_dir = Some(SpillDir::fresh().expect("creating the spill directory"));
                    spill_dir.as_ref().expect("just created")
                }
            };
            let path = dir.file(&format!("level-{depth:08}.seg"));
            let mut writer = SegmentWriter::create(&path, SegmentKind::FrontierLevel, depth)
                .expect("creating a level spill segment");
            let count = next_level.len() as u64;
            for entry in next_level.drain(..) {
                writer
                    .append(&encode_level_record(
                        entry.node,
                        entry.orbit_lower,
                        entry.sleep,
                        entry.expand,
                    ))
                    .expect("writing a level spill record");
            }
            writer.finish().expect("sealing a level spill segment");
            result.spilled_entries += count;
            pending = PendingLevel::Spilled { path, count };
        } else {
            pending = PendingLevel::Resident(next_level);
        }
        // Seen-set shards follow the same budget: once the live tables
        // outgrow it, they move to sealed per-shard generations. Under
        // sleep-set reduction the shards hold masks that must stay
        // probe-able (and mutable) — they never spill.
        if config.spill && cap > 0 && !reduce && seen.live_bytes() > cap {
            let dir = match &spill_dir {
                Some(dir) => dir,
                None => {
                    spill_dir = Some(SpillDir::fresh().expect("creating the spill directory"));
                    spill_dir.as_ref().expect("just created")
                }
            };
            seen.spill_live(dir, seen_spill_generation);
            seen_spill_generation += 1;
        }
        depth += 1;
    }
    result.seen_entries = seen.len();
    result.approx_bytes = level_bytes_peak + seen.table_bytes_if_resident();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{agreement_predicate, explore, ExploreConfig};
    use crate::toy::{RacyConsensus, ToyWriter};

    fn writers(n: usize) -> Executor<ToyWriter> {
        Executor::new((0..n).map(|p| ToyWriter::new(p, p as u64 + 1)).collect())
    }

    fn racy() -> Executor<RacyConsensus> {
        Executor::new(vec![
            RacyConsensus::new(ProcessId(0), 10),
            RacyConsensus::new(ProcessId(1), 20),
        ])
    }

    #[test]
    fn matches_the_serial_explorer_on_verified_systems() {
        let exec = writers(3);
        let serial = explore(&exec, ExploreConfig::default(), agreement_predicate(3));
        assert!(serial.verified());
        for threads in [1, 2, 8] {
            let parallel = parallel_explore(
                &exec,
                ParallelExploreConfig::with_threads(threads),
                agreement_predicate(3),
            );
            assert!(parallel.verified(), "threads={threads}: {parallel:?}");
            assert_eq!(
                parallel.states_visited, serial.states_visited,
                "threads={threads}"
            );
            assert_eq!(parallel.paths, serial.paths, "threads={threads}");
            assert_eq!(parallel.violation, serial.violation);
            assert_eq!(parallel.seen_entries, serial.seen_entries);
        }
    }

    #[test]
    fn reports_are_identical_at_any_thread_count() {
        let exec = racy();
        let reference = parallel_explore(
            &exec,
            ParallelExploreConfig::with_threads(1),
            agreement_predicate(1),
        );
        let violation = reference.violation.clone().expect("the race must be found");
        assert!(violation.description.contains("exceeding k = 1"));
        for threads in [2, 4, 8] {
            let other = parallel_explore(
                &exec,
                ParallelExploreConfig::with_threads(threads),
                agreement_predicate(1),
            );
            assert_eq!(other.states_visited, reference.states_visited);
            assert_eq!(other.paths, reference.paths);
            assert_eq!(other.max_depth_reached, reference.max_depth_reached);
            assert_eq!(other.truncated, reference.truncated);
            assert_eq!(other.violation, reference.violation);
            assert_eq!(other.frontier_peak, reference.frontier_peak);
            assert_eq!(other.seen_entries, reference.seen_entries);
            assert_eq!(other.approx_bytes, reference.approx_bytes);
        }
    }

    #[test]
    fn violating_schedule_is_breadth_first_minimal_and_replays() {
        let exec = racy();
        let result = parallel_explore(
            &exec,
            ParallelExploreConfig::default(),
            agreement_predicate(1),
        );
        let violation = result.violation.expect("the race must be found");
        // The witness replays: stepping the schedule on a fresh executor
        // reproduces the violation in the final configuration.
        let mut replay = racy();
        for &process in &violation.schedule {
            replay.step(process);
        }
        assert!(
            agreement_predicate(1)(&replay).is_some(),
            "the reported schedule must reproduce the violation"
        );
        // Breadth-first minimality: no strictly shorter schedule violates
        // (the serial explorer, which enumerates every interleaving, finds
        // no violation below that depth).
        let shallower = explore(
            &exec,
            ExploreConfig {
                max_depth: violation.schedule.len() as u64 - 1,
                ..ExploreConfig::default()
            },
            agreement_predicate(1),
        );
        assert!(shallower.violation.is_none());
    }

    #[test]
    fn checks_the_initial_configuration() {
        let exec = writers(2);
        let result = parallel_explore(
            &exec,
            ParallelExploreConfig::default(),
            |e: &Executor<ToyWriter>| (e.steps() == 0).then(|| "rejected root".to_string()),
        );
        assert!(!result.verified());
        let violation = result.violation.expect("root violation must be reported");
        assert!(violation.schedule.is_empty());
    }

    #[test]
    fn exact_state_budget_is_exhausted_not_truncated() {
        let exec = writers(2);
        let space = parallel_explore(
            &exec,
            ParallelExploreConfig::default(),
            agreement_predicate(2),
        );
        assert!(space.verified());
        let exact = ParallelExploreConfig {
            max_states: space.states_visited,
            ..ParallelExploreConfig::default()
        };
        let result = parallel_explore(&exec, exact, agreement_predicate(2));
        assert!(result.verified(), "{result:?}");
        assert_eq!(result.states_visited, space.states_visited);
    }

    #[test]
    fn depth_bound_truncates_deterministically() {
        let exec = writers(2);
        let config = ParallelExploreConfig {
            max_depth: 1,
            ..ParallelExploreConfig::default()
        };
        let a = parallel_explore(&exec, config, agreement_predicate(2));
        let b = parallel_explore(&exec, config, agreement_predicate(2));
        assert!(a.truncated && !a.verified());
        assert_eq!(a.max_depth_reached, 1);
        assert_eq!(a.states_visited, b.states_visited);
        assert_eq!(a.paths, b.paths);
    }

    #[test]
    fn state_budget_truncates_at_level_granularity() {
        let exec = writers(3);
        let config = ParallelExploreConfig {
            max_states: 2,
            ..ParallelExploreConfig::default()
        };
        let result = parallel_explore(&exec, config, agreement_predicate(3));
        assert!(result.truncated);
        assert!(!result.verified());
        // The level in flight is finished, so the count can overshoot the
        // budget, but only by that level.
        assert!(result.states_visited >= 2);
    }

    #[test]
    fn memory_statistics_reflect_the_widest_level() {
        let exec = writers(3);
        let result = parallel_explore(
            &exec,
            ParallelExploreConfig::default(),
            agreement_predicate(3),
        );
        assert!(result.verified());
        assert!(result.frontier_peak > 1, "BFS levels must widen");
        assert_eq!(result.seen_entries, result.states_visited);
        assert!(result.approx_bytes > 0);
    }

    #[test]
    fn symmetry_reduction_matches_serial_and_is_thread_count_invariant() {
        let exec = Executor::new(vec![
            ToyWriter::new(0, 7),
            ToyWriter::new(0, 7),
            ToyWriter::new(1, 9),
        ]);
        let serial_off = explore(&exec, ExploreConfig::default(), agreement_predicate(3));
        let serial_sym = explore(
            &exec,
            ExploreConfig {
                symmetry: SymmetryMode::ProcessIds,
                ..ExploreConfig::default()
            },
            agreement_predicate(3),
        );
        assert!(serial_sym.symmetry_applied);
        assert!(serial_sym.states_visited < serial_off.states_visited);
        let mut previous: Option<Exploration> = None;
        for threads in [1, 2, 8] {
            let parallel = parallel_explore(
                &exec,
                ParallelExploreConfig {
                    threads,
                    symmetry: SymmetryMode::ProcessIds,
                    ..ParallelExploreConfig::default()
                },
                agreement_predicate(3),
            );
            assert!(parallel.symmetry_applied, "threads={threads}");
            assert!(parallel.verified(), "threads={threads}");
            // The two explorers share one canonical key function, so the
            // quotient they exhaust is the identical state set.
            assert_eq!(parallel.states_visited, serial_sym.states_visited);
            assert_eq!(parallel.seen_entries, serial_sym.seen_entries);
            assert_eq!(
                parallel.full_states_lower_bound,
                serial_sym.full_states_lower_bound
            );
            assert_eq!(parallel.full_states_lower_bound, serial_off.states_visited);
            if let Some(previous) = &previous {
                assert_eq!(parallel.paths, previous.paths);
                assert_eq!(parallel.frontier_peak, previous.frontier_peak);
                assert_eq!(parallel.max_depth_reached, previous.max_depth_reached);
                assert_eq!(parallel.approx_bytes, previous.approx_bytes);
            }
            previous = Some(parallel);
        }
    }

    #[test]
    fn symmetric_witnesses_are_deterministic_and_replay() {
        // Two racy processes with the same input value are one orbit; the
        // third carries a distinct value, so 1-agreement is violated. The
        // witness must be identical at any thread count (and between runs)
        // and must replay on the ORIGINAL (un-relabeled) process ids.
        let exec = Executor::new(vec![
            RacyConsensus::new(ProcessId(0), 5),
            RacyConsensus::new(ProcessId(1), 5),
            RacyConsensus::new(ProcessId(2), 9),
        ]);
        let config = |threads| ParallelExploreConfig {
            threads,
            symmetry: SymmetryMode::ProcessIds,
            ..ParallelExploreConfig::default()
        };
        let reference = parallel_explore(&exec, config(1), agreement_predicate(1));
        assert!(reference.symmetry_applied);
        let witness = reference.violation.clone().expect("the race must be found");
        for threads in [2, 8] {
            let other = parallel_explore(&exec, config(threads), agreement_predicate(1));
            assert_eq!(
                other.violation.as_ref(),
                Some(&witness),
                "threads={threads}"
            );
            assert_eq!(other.states_visited, reference.states_visited);
        }
        let mut replay = Executor::new(vec![
            RacyConsensus::new(ProcessId(0), 5),
            RacyConsensus::new(ProcessId(1), 5),
            RacyConsensus::new(ProcessId(2), 9),
        ]);
        for &process in &witness.schedule {
            assert!(replay.step(process).is_some(), "witness must be steppable");
        }
        assert!(
            agreement_predicate(1)(&replay).is_some(),
            "the witness schedule must reproduce the violation"
        );
    }

    #[test]
    fn frontier_semantics_distinguish_the_backends() {
        // Regression for the conflated `frontier_peak` field: the serial
        // explorer reports a DFS stack depth, the parallel one a BFS level
        // width — same field, incomparable quantities, now labeled.
        let exec = writers(3);
        let serial = explore(&exec, ExploreConfig::default(), agreement_predicate(3));
        let parallel = parallel_explore(
            &exec,
            ParallelExploreConfig::default(),
            agreement_predicate(3),
        );
        assert_eq!(
            serial.frontier_semantics,
            crate::explore::FrontierSemantics::DfsStackDepth
        );
        assert_eq!(
            parallel.frontier_semantics,
            crate::explore::FrontierSemantics::BfsLevelWidth
        );
        assert_eq!(serial.frontier_semantics.label(), "dfs-stack-depth");
        assert_eq!(parallel.frontier_semantics.label(), "bfs-level-width");
    }

    #[test]
    fn spill_mode_is_byte_identical_at_any_worker_count() {
        let exec = writers(3);
        let base = parallel_explore(
            &exec,
            ParallelExploreConfig::with_threads(1),
            agreement_predicate(3),
        );
        assert!(base.verified());
        assert_eq!(base.spilled_entries, 0);
        for threads in [1, 2, 8] {
            let spilled = parallel_explore(
                &exec,
                ParallelExploreConfig {
                    threads,
                    spill: true,
                    max_resident_bytes: 1,
                    ..ParallelExploreConfig::default()
                },
                agreement_predicate(3),
            );
            assert!(
                spilled.spilled_entries > 0,
                "threads={threads}: the tiny cap must force level spills"
            );
            assert!(spilled.verified(), "threads={threads}: {spilled:?}");
            assert_eq!(spilled.states_visited, base.states_visited);
            assert_eq!(spilled.paths, base.paths);
            assert_eq!(spilled.violation, base.violation);
            assert_eq!(spilled.max_depth_reached, base.max_depth_reached);
            assert_eq!(spilled.frontier_peak, base.frontier_peak);
            assert_eq!(spilled.pending_at_exit, base.pending_at_exit);
            assert_eq!(spilled.seen_entries, base.seen_entries);
            assert_eq!(spilled.approx_bytes, base.approx_bytes);
            assert_eq!(
                spilled.full_states_lower_bound,
                base.full_states_lower_bound
            );
        }
    }

    #[test]
    fn spill_mode_finds_the_same_violation() {
        let exec = racy();
        let base = parallel_explore(
            &exec,
            ParallelExploreConfig::with_threads(2),
            agreement_predicate(1),
        );
        let spilled = parallel_explore(
            &exec,
            ParallelExploreConfig {
                threads: 2,
                spill: true,
                max_resident_bytes: 1,
                ..ParallelExploreConfig::default()
            },
            agreement_predicate(1),
        );
        assert_eq!(spilled.violation, base.violation, "witness must not change");
        assert_eq!(spilled.states_visited, base.states_visited);
    }

    #[test]
    fn memory_cap_without_spill_truncates_and_spill_rescues_it() {
        let exec = writers(3);
        let capped = parallel_explore(
            &exec,
            ParallelExploreConfig {
                max_resident_bytes: 1,
                ..ParallelExploreConfig::default()
            },
            agreement_predicate(3),
        );
        assert!(capped.truncated, "over budget in-core must truncate");
        assert!(!capped.verified());
        assert!(capped.pending_at_exit > 0);
        let rescued = parallel_explore(
            &exec,
            ParallelExploreConfig {
                spill: true,
                max_resident_bytes: 1,
                ..ParallelExploreConfig::default()
            },
            agreement_predicate(3),
        );
        assert!(
            rescued.verified(),
            "spill must let the capped cell exhaust: {rescued:?}"
        );
        assert_eq!(rescued.pending_at_exit, 0);
    }

    #[test]
    fn sleep_sets_preserve_states_and_reduce_expansions() {
        let exec = writers(3);
        let off = parallel_explore(
            &exec,
            ParallelExploreConfig::default(),
            agreement_predicate(3),
        );
        assert!(off.verified());
        assert!(!off.reduction_applied);
        assert_eq!(off.sleep_pruned, 0);
        let serial_on = explore(
            &exec,
            ExploreConfig {
                reduction: ReductionMode::SleepSets,
                ..ExploreConfig::default()
            },
            agreement_predicate(3),
        );
        assert!(serial_on.reduction_applied);
        let mut previous: Option<Exploration> = None;
        for threads in [1, 2, 8] {
            let on = parallel_explore(
                &exec,
                ParallelExploreConfig {
                    threads,
                    reduction: ReductionMode::SleepSets,
                    ..ParallelExploreConfig::default()
                },
                agreement_predicate(3),
            );
            assert!(on.reduction_applied, "threads={threads}");
            assert!(on.verified(), "threads={threads}: {on:?}");
            // Sleep sets skip transitions, never states: the visited set is
            // the full reachable space, shared with the serial reducer.
            assert_eq!(on.states_visited, off.states_visited, "threads={threads}");
            assert_eq!(on.seen_entries, off.seen_entries);
            assert_eq!(on.states_visited, serial_on.states_visited);
            assert!(
                on.expansions < off.expansions,
                "threads={threads}: {} !< {}",
                on.expansions,
                off.expansions
            );
            assert!(on.sleep_pruned > 0, "threads={threads}");
            if let Some(previous) = &previous {
                assert_eq!(on.expansions, previous.expansions);
                assert_eq!(on.sleep_pruned, previous.sleep_pruned);
                assert_eq!(on.paths, previous.paths);
                assert_eq!(on.frontier_peak, previous.frontier_peak);
                assert_eq!(on.max_depth_reached, previous.max_depth_reached);
                assert_eq!(on.approx_bytes, previous.approx_bytes);
            }
            previous = Some(on);
        }
    }

    #[test]
    fn sleep_sets_find_the_race_and_stay_thread_invariant() {
        let exec = racy();
        let config = |threads| ParallelExploreConfig {
            threads,
            reduction: ReductionMode::SleepSets,
            ..ParallelExploreConfig::default()
        };
        let reference = parallel_explore(&exec, config(1), agreement_predicate(1));
        assert!(reference.reduction_applied);
        let witness = reference.violation.clone().expect("the race must be found");
        assert!(witness.description.contains("exceeding k = 1"));
        // The witness replays on the original executor.
        let mut replayed = racy();
        for &process in &witness.schedule {
            assert!(replayed.step(process).is_some());
        }
        assert!(agreement_predicate(1)(&replayed).is_some());
        for threads in [2, 8] {
            let other = parallel_explore(&exec, config(threads), agreement_predicate(1));
            assert_eq!(
                other.violation.as_ref(),
                Some(&witness),
                "threads={threads}"
            );
            assert_eq!(other.states_visited, reference.states_visited);
            assert_eq!(other.expansions, reference.expansions);
            assert_eq!(other.sleep_pruned, reference.sleep_pruned);
        }
    }

    #[test]
    fn sleep_sets_compose_with_symmetry() {
        // Writers 0 and 1 contend on one register (dependent), writer 2 is
        // independent of both; slots 0 and 1 additionally form one orbit.
        let exec = Executor::new(vec![
            ToyWriter::new(0, 7),
            ToyWriter::new(0, 7),
            ToyWriter::new(1, 9),
        ]);
        let serial_both = explore(
            &exec,
            ExploreConfig {
                symmetry: SymmetryMode::ProcessIds,
                reduction: ReductionMode::SleepSets,
                ..ExploreConfig::default()
            },
            agreement_predicate(3),
        );
        assert!(serial_both.symmetry_applied && serial_both.reduction_applied);
        let sym_only = parallel_explore(
            &exec,
            ParallelExploreConfig {
                symmetry: SymmetryMode::ProcessIds,
                ..ParallelExploreConfig::default()
            },
            agreement_predicate(3),
        );
        for threads in [1, 2, 8] {
            let both = parallel_explore(
                &exec,
                ParallelExploreConfig {
                    threads,
                    symmetry: SymmetryMode::ProcessIds,
                    reduction: ReductionMode::SleepSets,
                    ..ParallelExploreConfig::default()
                },
                agreement_predicate(3),
            );
            assert!(both.symmetry_applied && both.reduction_applied);
            assert!(both.verified(), "threads={threads}: {both:?}");
            // The quotient is the same state set; sleep sets only thin the
            // transitions between its representatives — the two reductions
            // multiply.
            assert_eq!(both.states_visited, sym_only.states_visited);
            assert_eq!(both.states_visited, serial_both.states_visited);
            assert_eq!(
                both.full_states_lower_bound,
                sym_only.full_states_lower_bound
            );
            assert!(
                both.expansions < sym_only.expansions,
                "threads={threads}: {} !< {}",
                both.expansions,
                sym_only.expansions
            );
        }
    }

    #[test]
    fn sleep_set_levels_spill_byte_identically() {
        let exec = writers(3);
        let base = parallel_explore(
            &exec,
            ParallelExploreConfig {
                reduction: ReductionMode::SleepSets,
                ..ParallelExploreConfig::default()
            },
            agreement_predicate(3),
        );
        assert!(base.verified() && base.reduction_applied);
        for threads in [1, 2, 8] {
            let spilled = parallel_explore(
                &exec,
                ParallelExploreConfig {
                    threads,
                    reduction: ReductionMode::SleepSets,
                    spill: true,
                    max_resident_bytes: 1,
                    ..ParallelExploreConfig::default()
                },
                agreement_predicate(3),
            );
            assert!(spilled.spilled_entries > 0, "threads={threads}");
            assert!(spilled.verified(), "threads={threads}: {spilled:?}");
            assert_eq!(spilled.states_visited, base.states_visited);
            assert_eq!(spilled.expansions, base.expansions);
            assert_eq!(spilled.sleep_pruned, base.sleep_pruned);
            assert_eq!(spilled.paths, base.paths);
            assert_eq!(spilled.approx_bytes, base.approx_bytes);
        }
    }

    #[test]
    fn level_records_roundtrip_sleep_masks() {
        let record = encode_level_record(7, 42, 0b101, Some(0b010));
        assert_eq!(decode_level_record(&record), (7, 42, 0b101, Some(0b010)));
        let fresh = encode_level_record(0, 1, 0, None);
        assert_eq!(decode_level_record(&fresh), (0, 1, 0, None));
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        assert!(ParallelExploreConfig::default().effective_threads() >= 1);
        assert_eq!(
            ParallelExploreConfig::with_threads(3).effective_threads(),
            3
        );
    }
}
