//! The work-stealing exhaustive explorer.
//!
//! [`parallel_explore`] checks the same property as [`explore`](crate::explore)
//! — a safety predicate in **every** reachable configuration — but spreads
//! the search over a pool of worker threads, which is what pushes exhaustive
//! verification past the cell sizes the serial depth-first explorer can
//! finish in a reasonable budget.
//!
//! # Design
//!
//! The search is a **level-synchronized breadth-first traversal** with
//! work-stealing inside each level:
//!
//! * the current BFS level is the shared frontier: its `(Executor, schedule)`
//!   entries are pushed into a [`crossbeam::deque::Injector`], and each
//!   worker refills a local [`crossbeam::deque::Worker`] deque in batches,
//!   stealing from its peers' [`Stealer`](crossbeam::deque::Stealer)s when
//!   both run dry (cooperative termination: a worker exits once its own
//!   deque, the injector and every peer report `Empty`, retrying on
//!   contended `Retry` results);
//! * discovered successors are deduplicated against a **sharded seen-set**
//!   (shards selected by a [`StateKey`] prefix) holding the same
//!   collision-resistant 128-bit keys as the serial explorer;
//! * levels are separated by a barrier at which the next frontier is frozen,
//!   the predicate is evaluated once per newly discovered state, and
//!   violations are resolved.
//!
//! # Determinism
//!
//! The report is **byte-identical at any thread count** — matching the sweep
//! engine's guarantee that parallelism changes wall-clock time, never
//! output. Every reported field is a pure function of the state space:
//!
//! * a state's BFS depth does not depend on which worker discovered it, so
//!   `states_visited`, `paths`, `max_depth_reached` and the memory
//!   statistics are fixed by the reachable state space and the budgets;
//! * when the same successor is discovered from several parents in one
//!   level, the **lexicographically smallest** schedule is kept (parents'
//!   schedules are final when their level expands, so by induction every
//!   state carries the lexicographically smallest of its shortest
//!   schedules);
//! * budgets are enforced at level barriers, so truncation decisions never
//!   depend on scheduling races;
//! * when a level discovers violations, the whole level is still finished
//!   and the violation with the lexicographically smallest schedule is
//!   reported — the first violation in breadth-first order, deterministic
//!   regardless of which worker stumbled on it first.
//!
//! Note the serial explorer visits states in depth-first order, so against
//! *violating* systems the two explorers may report different (both
//! correct) witness schedules, and `max_depth_reached`/`frontier_peak`
//! measure a stack rather than a level. On *verified* runs `states_visited`,
//! `verified` and the absence of a violation agree exactly; the
//! serial-vs-parallel equivalence suite pins that.

use crate::executor::Executor;
use crate::explore::{
    estimate_bytes, keyed, Exploration, ExploredViolation, StateKey, SymmetryMode, SymmetryPlan,
};
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use sa_model::{Automaton, ProcessId};
use std::collections::{HashMap, HashSet};
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of seen-set (and next-frontier) shards. A power of two so a
/// [`StateKey`] prefix selects a shard with a mask; 64 shards keep lock
/// contention negligible at any realistic worker count.
const SHARDS: usize = 64;

/// Configuration of a parallel bounded exploration.
///
/// Compared to [`ExploreConfig`](crate::ExploreConfig) there is no `dedup`
/// flag: the sharded seen-set *is* the shared search structure, and sound
/// (collision-resistant) dedup is always on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelExploreConfig {
    /// Worker threads; 0 means one per available CPU. The result does not
    /// depend on this value — only the wall-clock time does.
    pub threads: usize,
    /// Maximum schedule depth (breadth-first radius) to explore.
    pub max_depth: u64,
    /// Maximum number of states to visit before giving up. Enforced at
    /// level granularity: a level in flight is always finished, so the
    /// count may overshoot by up to one level, but never silently — the
    /// report is marked truncated whenever unexplored work remains.
    pub max_states: u64,
    /// Whether to deduplicate up to process-id symmetry. Like everything
    /// else here, canonicalization is a pure function of the state, so the
    /// byte-identical-at-any-thread-count guarantee holds with symmetry on.
    /// Falls back to [`SymmetryMode::Off`] for automata that do not opt in
    /// (see [`SymmetryMode::ProcessIds`]).
    pub symmetry: SymmetryMode,
}

impl Default for ParallelExploreConfig {
    fn default() -> Self {
        ParallelExploreConfig {
            threads: 0,
            max_depth: 60,
            max_states: 2_000_000,
            symmetry: SymmetryMode::Off,
        }
    }
}

impl ParallelExploreConfig {
    /// A config with the given worker count.
    pub fn with_threads(threads: usize) -> Self {
        ParallelExploreConfig {
            threads,
            ..ParallelExploreConfig::default()
        }
    }

    /// Resolves `threads = 0` to the machine's parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// A frontier entry: a reachable configuration, the schedule that produced
/// it (the lexicographically smallest among its shortest schedules), and
/// its orbit-size lower bound.
type Entry<A> = (Executor<A>, Vec<ProcessId>, u64);

/// A successor discovered while expanding a level, before the barrier
/// resolves it: the state, its (still mergeable) schedule, the orbit-size
/// lower bound, and whether the predicate rejected it.
///
/// With symmetry on, several *distinct* configurations of one orbit can be
/// discovered under the same canonical key in one level; the barrier keeps
/// the one whose schedule is lexicographically smallest (state and schedule
/// are always replaced together, so the retained pair stays consistent and
/// deterministic). All orbit members have relabel-identical futures and
/// identical predicate verdicts, so which one expands cannot change any
/// reported verdict — only the (deterministically chosen) witness labels.
struct Discovered<A: Automaton> {
    state: Executor<A>,
    schedule: Vec<ProcessId>,
    orbit_lower: u64,
    violating: bool,
}

/// The seen-set, sharded by key prefix so workers rarely contend on the
/// same lock.
struct ShardedSeen {
    shards: Vec<Mutex<HashSet<StateKey>>>,
}

impl ShardedSeen {
    fn new() -> Self {
        ShardedSeen {
            shards: (0..SHARDS).map(|_| Mutex::new(HashSet::new())).collect(),
        }
    }

    fn contains(&self, key: &StateKey) -> bool {
        self.shards[key.shard(SHARDS)]
            .lock()
            .expect("seen shard poisoned")
            .contains(key)
    }

    fn insert(&self, key: StateKey) -> bool {
        self.shards[key.shard(SHARDS)]
            .lock()
            .expect("seen shard poisoned")
            .insert(key)
    }

    fn len(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("seen shard poisoned").len() as u64)
            .sum()
    }
}

/// Pulls the next task for a worker: local deque first, then the shared
/// injector (in batches), then the peers — retrying while any source
/// reports a contended `Retry`, terminating once all report `Empty`.
fn find_task<T>(local: &Worker<T>, injector: &Injector<T>, stealers: &[Stealer<T>]) -> Option<T> {
    if let Some(task) = local.pop() {
        return Some(task);
    }
    loop {
        let mut contended = false;
        match injector.steal_batch_and_pop(local) {
            Steal::Success(task) => return Some(task),
            Steal::Retry => contended = true,
            Steal::Empty => {}
        }
        for stealer in stealers {
            match stealer.steal() {
                Steal::Success(task) => return Some(task),
                Steal::Retry => contended = true,
                Steal::Empty => {}
            }
        }
        if !contended {
            return None;
        }
        std::hint::spin_loop();
    }
}

/// Exhaustively explores every interleaving of the executor's processes on a
/// pool of work-stealing workers, checking `predicate` in every reachable
/// configuration — including the initial one.
///
/// The report is byte-identical at any `config.threads` (see the module
/// docs for how); the predicate must therefore be pure with respect to the
/// reported fields, though it may accumulate its own statistics through
/// interior mutability. It is evaluated once per newly discovered dedup key
/// (in nondeterministic order), plus once more per *violating* key at the
/// level barrier to bind the description to the retained witness state.
/// With [`SymmetryMode::ProcessIds`] the predicate must additionally be
/// relabeling-invariant — true of any predicate over decided value sets
/// and memory contents, like the safety properties.
pub fn parallel_explore<A, F>(
    initial: &Executor<A>,
    config: ParallelExploreConfig,
    predicate: F,
) -> Exploration
where
    A: Automaton + Clone + Hash + Send,
    A::Value: Hash + Clone + Eq + Debug + Send + Sync,
    F: Fn(&Executor<A>) -> Option<String> + Sync,
{
    let threads = config.effective_threads();
    let plan = SymmetryPlan::for_executor(initial, config.symmetry);
    let mut result = Exploration {
        states_visited: 0,
        paths: 0,
        violation: None,
        truncated: false,
        max_depth_reached: 0,
        frontier_peak: 0,
        seen_entries: 0,
        approx_bytes: 0,
        symmetry_applied: plan.applied(),
        full_states_lower_bound: 0,
    };
    if let Some(description) = predicate(initial) {
        result.states_visited = 1;
        result.full_states_lower_bound = 1;
        result.violation = Some(ExploredViolation {
            schedule: Vec::new(),
            description,
        });
        return result;
    }
    let seen = ShardedSeen::new();
    let (initial_key, initial_orbit) = keyed(initial, &plan);
    seen.insert(initial_key);
    let mut level: Vec<Entry<A>> = vec![(initial.clone(), Vec::new(), initial_orbit)];
    let mut depth: u64 = 0;
    loop {
        result.states_visited += level.len() as u64;
        for (_, _, orbit_lower) in &level {
            result.full_states_lower_bound =
                result.full_states_lower_bound.saturating_add(*orbit_lower);
        }
        result.frontier_peak = result.frontier_peak.max(level.len() as u64);
        result.max_depth_reached = depth;
        let at_depth_limit = depth >= config.max_depth;

        // Expand the level across the worker pool. Successors land in the
        // sharded next-frontier map keyed by state, merging duplicate
        // discoveries to the lexicographically smallest schedule.
        let next: Vec<Mutex<HashMap<StateKey, Discovered<A>>>> =
            (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect();
        let terminal_paths = AtomicU64::new(0);
        let depth_cut = AtomicBool::new(false);
        let injector: Injector<Entry<A>> = Injector::new();
        for entry in level.drain(..) {
            injector.push(entry);
        }
        let workers: Vec<Worker<Entry<A>>> = (0..threads).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<Entry<A>>> = workers.iter().map(Worker::stealer).collect();
        std::thread::scope(|scope| {
            for local in workers {
                let stealers = &stealers;
                let injector = &injector;
                let seen = &seen;
                let next = &next;
                let terminal_paths = &terminal_paths;
                let depth_cut = &depth_cut;
                let predicate = &predicate;
                let plan = &plan;
                scope.spawn(move || {
                    while let Some((state, schedule, _)) = find_task(&local, injector, stealers) {
                        let runnable = state.runnable();
                        if runnable.is_empty() {
                            terminal_paths.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                        if at_depth_limit {
                            // The depth bound cut this path short.
                            terminal_paths.fetch_add(1, Ordering::Relaxed);
                            depth_cut.store(true, Ordering::Relaxed);
                            continue;
                        }
                        for process in runnable {
                            let mut successor = state.clone();
                            successor.step(process);
                            let (key, orbit_lower) = keyed(&successor, plan);
                            if seen.contains(&key) {
                                continue;
                            }
                            let mut successor_schedule = schedule.clone();
                            successor_schedule.push(process);
                            let mut shard =
                                next[key.shard(SHARDS)].lock().expect("next shard poisoned");
                            match shard.entry(key) {
                                std::collections::hash_map::Entry::Occupied(mut occupied) => {
                                    // Same key, different parent: keep the
                                    // lexicographically smallest schedule —
                                    // and the state it produced, which with
                                    // symmetry on may be a different member
                                    // of the same orbit — so the retained
                                    // (state, schedule) pair never depends
                                    // on timing.
                                    if successor_schedule < occupied.get().schedule {
                                        let kept = occupied.get_mut();
                                        kept.state = successor;
                                        kept.schedule = successor_schedule;
                                        // The orbit weight belongs to the
                                        // retained member (members of one
                                        // orbit can carry different weights
                                        // when merging crossed input
                                        // classes), so it must travel with
                                        // the state to stay deterministic.
                                        kept.orbit_lower = orbit_lower;
                                    }
                                }
                                std::collections::hash_map::Entry::Vacant(vacant) => {
                                    // First discovery: evaluate the predicate
                                    // once per key (verdicts are identical
                                    // across an orbit, so whichever member
                                    // arrives first decides the same way).
                                    let violating = predicate(&successor).is_some();
                                    vacant.insert(Discovered {
                                        state: successor,
                                        schedule: successor_schedule,
                                        orbit_lower,
                                        violating,
                                    });
                                }
                            }
                        }
                    }
                });
            }
        });
        result.paths += terminal_paths.load(Ordering::Relaxed);
        if at_depth_limit {
            result.truncated |= depth_cut.load(Ordering::Relaxed);
            break;
        }

        // Barrier: freeze the next frontier, resolve violations, commit the
        // discovered keys to the seen-set. Violation descriptions are
        // (re)computed from the *retained* state, so the reported witness
        // schedule and its description always describe the same
        // configuration, whichever orbit member was discovered first.
        let mut violations: Vec<ExploredViolation> = Vec::new();
        let mut next_level: Vec<Entry<A>> = Vec::new();
        for shard in next {
            let shard = shard.into_inner().expect("next shard poisoned");
            for (key, discovered) in shard {
                seen.insert(key);
                if discovered.violating {
                    let description = predicate(&discovered.state).expect(
                        "the predicate rejected an orbit member of this state; verdicts \
                         must be pure and relabeling-invariant",
                    );
                    violations.push(ExploredViolation {
                        schedule: discovered.schedule,
                        description,
                    });
                } else {
                    next_level.push((
                        discovered.state,
                        discovered.schedule,
                        discovered.orbit_lower,
                    ));
                }
            }
        }
        if !violations.is_empty() {
            violations.sort_by(|a, b| a.schedule.cmp(&b.schedule));
            let chosen = violations.swap_remove(0);
            result.max_depth_reached = result.max_depth_reached.max(chosen.schedule.len() as u64);
            result.violation = Some(chosen);
            break;
        }
        if next_level.is_empty() {
            break;
        }
        if result.states_visited >= config.max_states {
            // Budget exhausted while work remains — at level granularity,
            // so the decision is a pure function of the state space.
            result.truncated = true;
            break;
        }
        level = next_level;
        depth += 1;
    }
    result.seen_entries = seen.len();
    result.approx_bytes = estimate_bytes::<A>(
        initial.process_count(),
        result.seen_entries,
        result.frontier_peak,
        result.max_depth_reached,
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{agreement_predicate, explore, ExploreConfig};
    use crate::toy::{RacyConsensus, ToyWriter};

    fn writers(n: usize) -> Executor<ToyWriter> {
        Executor::new((0..n).map(|p| ToyWriter::new(p, p as u64 + 1)).collect())
    }

    fn racy() -> Executor<RacyConsensus> {
        Executor::new(vec![
            RacyConsensus::new(ProcessId(0), 10),
            RacyConsensus::new(ProcessId(1), 20),
        ])
    }

    #[test]
    fn matches_the_serial_explorer_on_verified_systems() {
        let exec = writers(3);
        let serial = explore(&exec, ExploreConfig::default(), agreement_predicate(3));
        assert!(serial.verified());
        for threads in [1, 2, 8] {
            let parallel = parallel_explore(
                &exec,
                ParallelExploreConfig::with_threads(threads),
                agreement_predicate(3),
            );
            assert!(parallel.verified(), "threads={threads}: {parallel:?}");
            assert_eq!(
                parallel.states_visited, serial.states_visited,
                "threads={threads}"
            );
            assert_eq!(parallel.paths, serial.paths, "threads={threads}");
            assert_eq!(parallel.violation, serial.violation);
            assert_eq!(parallel.seen_entries, serial.seen_entries);
        }
    }

    #[test]
    fn reports_are_identical_at_any_thread_count() {
        let exec = racy();
        let reference = parallel_explore(
            &exec,
            ParallelExploreConfig::with_threads(1),
            agreement_predicate(1),
        );
        let violation = reference.violation.clone().expect("the race must be found");
        assert!(violation.description.contains("exceeding k = 1"));
        for threads in [2, 4, 8] {
            let other = parallel_explore(
                &exec,
                ParallelExploreConfig::with_threads(threads),
                agreement_predicate(1),
            );
            assert_eq!(other.states_visited, reference.states_visited);
            assert_eq!(other.paths, reference.paths);
            assert_eq!(other.max_depth_reached, reference.max_depth_reached);
            assert_eq!(other.truncated, reference.truncated);
            assert_eq!(other.violation, reference.violation);
            assert_eq!(other.frontier_peak, reference.frontier_peak);
            assert_eq!(other.seen_entries, reference.seen_entries);
            assert_eq!(other.approx_bytes, reference.approx_bytes);
        }
    }

    #[test]
    fn violating_schedule_is_breadth_first_minimal_and_replays() {
        let exec = racy();
        let result = parallel_explore(
            &exec,
            ParallelExploreConfig::default(),
            agreement_predicate(1),
        );
        let violation = result.violation.expect("the race must be found");
        // The witness replays: stepping the schedule on a fresh executor
        // reproduces the violation in the final configuration.
        let mut replay = racy();
        for &process in &violation.schedule {
            replay.step(process);
        }
        assert!(
            agreement_predicate(1)(&replay).is_some(),
            "the reported schedule must reproduce the violation"
        );
        // Breadth-first minimality: no strictly shorter schedule violates
        // (the serial explorer, which enumerates every interleaving, finds
        // no violation below that depth).
        let shallower = explore(
            &exec,
            ExploreConfig {
                max_depth: violation.schedule.len() as u64 - 1,
                ..ExploreConfig::default()
            },
            agreement_predicate(1),
        );
        assert!(shallower.violation.is_none());
    }

    #[test]
    fn checks_the_initial_configuration() {
        let exec = writers(2);
        let result = parallel_explore(
            &exec,
            ParallelExploreConfig::default(),
            |e: &Executor<ToyWriter>| (e.steps() == 0).then(|| "rejected root".to_string()),
        );
        assert!(!result.verified());
        let violation = result.violation.expect("root violation must be reported");
        assert!(violation.schedule.is_empty());
    }

    #[test]
    fn exact_state_budget_is_exhausted_not_truncated() {
        let exec = writers(2);
        let space = parallel_explore(
            &exec,
            ParallelExploreConfig::default(),
            agreement_predicate(2),
        );
        assert!(space.verified());
        let exact = ParallelExploreConfig {
            max_states: space.states_visited,
            ..ParallelExploreConfig::default()
        };
        let result = parallel_explore(&exec, exact, agreement_predicate(2));
        assert!(result.verified(), "{result:?}");
        assert_eq!(result.states_visited, space.states_visited);
    }

    #[test]
    fn depth_bound_truncates_deterministically() {
        let exec = writers(2);
        let config = ParallelExploreConfig {
            max_depth: 1,
            ..ParallelExploreConfig::default()
        };
        let a = parallel_explore(&exec, config, agreement_predicate(2));
        let b = parallel_explore(&exec, config, agreement_predicate(2));
        assert!(a.truncated && !a.verified());
        assert_eq!(a.max_depth_reached, 1);
        assert_eq!(a.states_visited, b.states_visited);
        assert_eq!(a.paths, b.paths);
    }

    #[test]
    fn state_budget_truncates_at_level_granularity() {
        let exec = writers(3);
        let config = ParallelExploreConfig {
            max_states: 2,
            ..ParallelExploreConfig::default()
        };
        let result = parallel_explore(&exec, config, agreement_predicate(3));
        assert!(result.truncated);
        assert!(!result.verified());
        // The level in flight is finished, so the count can overshoot the
        // budget, but only by that level.
        assert!(result.states_visited >= 2);
    }

    #[test]
    fn memory_statistics_reflect_the_widest_level() {
        let exec = writers(3);
        let result = parallel_explore(
            &exec,
            ParallelExploreConfig::default(),
            agreement_predicate(3),
        );
        assert!(result.verified());
        assert!(result.frontier_peak > 1, "BFS levels must widen");
        assert_eq!(result.seen_entries, result.states_visited);
        assert!(result.approx_bytes > 0);
    }

    #[test]
    fn symmetry_reduction_matches_serial_and_is_thread_count_invariant() {
        let exec = Executor::new(vec![
            ToyWriter::new(0, 7),
            ToyWriter::new(0, 7),
            ToyWriter::new(1, 9),
        ]);
        let serial_off = explore(&exec, ExploreConfig::default(), agreement_predicate(3));
        let serial_sym = explore(
            &exec,
            ExploreConfig {
                symmetry: SymmetryMode::ProcessIds,
                ..ExploreConfig::default()
            },
            agreement_predicate(3),
        );
        assert!(serial_sym.symmetry_applied);
        assert!(serial_sym.states_visited < serial_off.states_visited);
        let mut previous: Option<Exploration> = None;
        for threads in [1, 2, 8] {
            let parallel = parallel_explore(
                &exec,
                ParallelExploreConfig {
                    threads,
                    symmetry: SymmetryMode::ProcessIds,
                    ..ParallelExploreConfig::default()
                },
                agreement_predicate(3),
            );
            assert!(parallel.symmetry_applied, "threads={threads}");
            assert!(parallel.verified(), "threads={threads}");
            // The two explorers share one canonical key function, so the
            // quotient they exhaust is the identical state set.
            assert_eq!(parallel.states_visited, serial_sym.states_visited);
            assert_eq!(parallel.seen_entries, serial_sym.seen_entries);
            assert_eq!(
                parallel.full_states_lower_bound,
                serial_sym.full_states_lower_bound
            );
            assert_eq!(parallel.full_states_lower_bound, serial_off.states_visited);
            if let Some(previous) = &previous {
                assert_eq!(parallel.paths, previous.paths);
                assert_eq!(parallel.frontier_peak, previous.frontier_peak);
                assert_eq!(parallel.max_depth_reached, previous.max_depth_reached);
                assert_eq!(parallel.approx_bytes, previous.approx_bytes);
            }
            previous = Some(parallel);
        }
    }

    #[test]
    fn symmetric_witnesses_are_deterministic_and_replay() {
        // Two racy processes with the same input value are one orbit; the
        // third carries a distinct value, so 1-agreement is violated. The
        // witness must be identical at any thread count (and between runs)
        // and must replay on the ORIGINAL (un-relabeled) process ids.
        let exec = Executor::new(vec![
            RacyConsensus::new(ProcessId(0), 5),
            RacyConsensus::new(ProcessId(1), 5),
            RacyConsensus::new(ProcessId(2), 9),
        ]);
        let config = |threads| ParallelExploreConfig {
            threads,
            symmetry: SymmetryMode::ProcessIds,
            ..ParallelExploreConfig::default()
        };
        let reference = parallel_explore(&exec, config(1), agreement_predicate(1));
        assert!(reference.symmetry_applied);
        let witness = reference.violation.clone().expect("the race must be found");
        for threads in [2, 8] {
            let other = parallel_explore(&exec, config(threads), agreement_predicate(1));
            assert_eq!(
                other.violation.as_ref(),
                Some(&witness),
                "threads={threads}"
            );
            assert_eq!(other.states_visited, reference.states_visited);
        }
        let mut replay = Executor::new(vec![
            RacyConsensus::new(ProcessId(0), 5),
            RacyConsensus::new(ProcessId(1), 5),
            RacyConsensus::new(ProcessId(2), 9),
        ]);
        for &process in &witness.schedule {
            assert!(replay.step(process).is_some(), "witness must be steppable");
        }
        assert!(
            agreement_predicate(1)(&replay).is_some(),
            "the witness schedule must reproduce the violation"
        );
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        assert!(ParallelExploreConfig::default().effective_threads() >= 1);
        assert_eq!(
            ParallelExploreConfig::with_threads(3).effective_threads(),
            3
        );
    }
}
